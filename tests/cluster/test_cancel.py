"""Mid-service cancellation semantics: CPU, disk, and the web server.

The hedging layer cancels the losing copy of a cloned request while it
may be half-way through a CPU burst or a disk I/O.  These tests pin the
accounting contract: work already executed stays charged to the owning
process (the §3.5 accounting walk must see resources actually
consumed), the remainder is dropped, and the waiting process resumes
immediately without completing.
"""

import pytest

from repro.cluster import CPU, Disk, Machine, ProcessTable, WebServer
from repro.core.hedge import ServiceHandle
from repro.sim import Environment
from repro.workload import WebRequest


# -- CPU ----------------------------------------------------------------


def test_cpu_cancel_mid_burst_charges_partial():
    """Cancelling the sole (bursting) task charges exactly the elapsed
    time — whole boundaries via replay plus the in-flight fraction."""
    env = Environment()
    cpu = CPU(env, quantum_s=0.001)
    proc = ProcessTable().spawn("p")
    resumed_at = []

    def runner(env):
        yield cpu.execute(proc, 0.050)
        resumed_at.append(env.now)

    def canceller(env, done_holder):
        yield env.timeout(0.0205)
        assert cpu.cancel(done_holder[0]) is True

    holder = []

    def submit(env):
        done = cpu.execute(proc, 0.050)
        holder.append(done)
        yield done
        resumed_at.append(env.now)

    env.process(submit(env))
    env.process(canceller(env, holder))
    env.run()
    # 20 whole 1 ms slices replayed + 0.5 ms of the 21st slice.
    assert resumed_at == [pytest.approx(0.0205)]
    assert proc.cpu_s == pytest.approx(0.0205)
    assert cpu.busy_s == pytest.approx(0.0205)
    assert cpu.runnable == 0


def test_cpu_cancel_queued_task_charges_nothing():
    env = Environment()
    cpu = CPU(env, quantum_s=0.001)
    table = ProcessTable()
    pa, pb = table.spawn("a"), table.spawn("b")
    finish = {}
    holder = {}

    def submit(env, name, proc):
        done = cpu.execute(proc, 0.050)
        holder[name] = done
        yield done
        finish[name] = env.now

    def canceller(env):
        # b is queued behind a's first slice; cancel before it ever runs.
        yield env.timeout(0.0005)
        assert cpu.cancel(holder["b"]) is True

    env.process(submit(env, "a", pa))
    env.process(submit(env, "b", pb))
    env.process(canceller(env))
    env.run()
    assert pb.cpu_s == 0.0
    assert finish["b"] == pytest.approx(0.0005)
    # a never shared a slice with b, so it runs solo to completion.
    assert finish["a"] == pytest.approx(0.050)
    assert pa.cpu_s == pytest.approx(0.050)


def test_cpu_cancel_stepped_current_promotes_next():
    """Cancelling the in-service task mid-slice charges the consumed
    fraction and hands the CPU to the queued task at once."""
    env = Environment()
    cpu = CPU(env, quantum_s=0.001)
    table = ProcessTable()
    pa, pb = table.spawn("a"), table.spawn("b")
    finish = {}
    holder = {}

    def submit(env, name, proc):
        done = cpu.execute(proc, 0.050)
        holder[name] = done
        yield done
        finish[name] = env.now

    def canceller(env):
        yield env.timeout(0.0005)
        assert cpu.cancel(holder["a"]) is True

    env.process(submit(env, "a", pa))
    env.process(submit(env, "b", pb))
    env.process(canceller(env))
    env.run()
    assert pa.cpu_s == pytest.approx(0.0005)
    assert finish["a"] == pytest.approx(0.0005)
    # b becomes the sole runnable task and bursts to completion.
    assert finish["b"] == pytest.approx(0.0505)
    assert pb.cpu_s == pytest.approx(0.050)


def test_cpu_cancel_unknown_or_completed_is_false():
    env = Environment()
    cpu = CPU(env, quantum_s=0.001)
    proc = ProcessTable().spawn("p")
    from repro.sim.events import Event

    assert cpu.cancel(Event(env)) is False
    done = cpu.execute(proc, 0.002)
    env.run()
    assert cpu.cancel(done) is False
    assert proc.cpu_s == pytest.approx(0.002)


# -- Disk ---------------------------------------------------------------


def test_disk_cancel_pending_charges_nothing():
    env = Environment()
    disk = Disk(env, seek_s=0.005, transfer_bps=1e6)
    table = ProcessTable()
    pa, pb = table.spawn("a"), table.spawn("b")
    finish = {}
    holder = {}

    def submit(env, name, proc, nbytes):
        done = disk.read(proc, nbytes)
        holder[name] = done
        yield done
        finish[name] = env.now

    def canceller(env):
        yield env.timeout(0.001)
        assert disk.cancel(holder["b"]) is True

    env.process(submit(env, "a", pa, 10_000))
    env.process(submit(env, "b", pb, 10_000))
    env.process(canceller(env))
    env.run()
    assert pb.disk_s == 0.0
    assert finish["b"] == pytest.approx(0.001)
    assert finish["a"] == pytest.approx(disk.io_time(10_000))
    assert disk.io_count == 1


def test_disk_cancel_in_service_charges_elapsed_and_starts_next():
    env = Environment()
    disk = Disk(env, seek_s=0.005, transfer_bps=1e6)
    table = ProcessTable()
    pa, pb = table.spawn("a"), table.spawn("b")
    finish = {}
    holder = {}

    def submit(env, name, proc, nbytes):
        done = disk.read(proc, nbytes)
        holder[name] = done
        yield done
        finish[name] = env.now

    def canceller(env):
        yield env.timeout(0.003)
        assert disk.cancel(holder["a"]) is True

    env.process(submit(env, "a", pa, 10_000))
    env.process(submit(env, "b", pb, 10_000))
    env.process(canceller(env))
    env.run()
    # Elapsed channel time stays charged; a cancelled I/O never counts.
    assert pa.disk_s == pytest.approx(0.003)
    assert finish["a"] == pytest.approx(0.003)
    # b seizes the channel the instant a is cancelled.
    assert finish["b"] == pytest.approx(0.003 + disk.io_time(10_000))
    assert pb.disk_s == pytest.approx(disk.io_time(10_000))
    assert disk.io_count == 1
    assert disk.busy_s == pytest.approx(0.003 + disk.io_time(10_000))


def test_disk_cancel_unknown_or_completed_is_false():
    env = Environment()
    disk = Disk(env)
    proc = ProcessTable().spawn("p")
    from repro.sim.events import Event

    assert disk.cancel(Event(env)) is False
    done = disk.read(proc, 1000)
    env.run()
    assert disk.cancel(done) is False
    assert disk.io_count == 1


# -- ServiceHandle ------------------------------------------------------


def test_service_handle_cancel_fires_armed_abort_once():
    fired = []
    handle = ServiceHandle()
    handle.arm(lambda: fired.append(True) or True)
    assert handle.cancel() is True
    assert fired == [True]
    # Idempotent: a second cancel is a no-op.
    assert handle.cancel() is False
    assert handle.cancelled is True


def test_service_handle_refuses_after_finish():
    handle = ServiceHandle()
    handle.finished = True
    assert handle.cancel() is False
    assert handle.cancelled is False


def test_service_handle_disarm_reports_cancellation():
    handle = ServiceHandle()
    handle.arm(lambda: True)
    assert handle.disarm() is False
    handle.cancelled = True
    assert handle.disarm() is True


# -- WebServer ----------------------------------------------------------


def make_server(env, **kwargs):
    machine = Machine(env, "rpn1")
    server = WebServer(machine, **kwargs)
    server.host_site("site1.example.com", files={"index.html": 6000})
    return machine, server


def request(path="/index.html", host="site1.example.com", size=6000):
    return WebRequest(host=host, path=path, size_bytes=size)


def test_webserver_cancel_mid_service_abandons_request():
    env = Environment()
    machine, server = make_server(env)
    completions = []
    server.on_complete.append(lambda *a: completions.append(a))
    handle = ServiceHandle()
    outcome = []

    def serve(env):
        result = yield env.process(server.service_request(request(), handle=handle))
        outcome.append(result)

    def canceller(env):
        yield env.timeout(0.0001)  # mid first CPU phase
        assert handle.cancel() is True

    env.process(serve(env))
    env.process(canceller(env))
    env.run()
    site = server.sites["site1.example.com"]
    assert outcome == [None]
    assert site.completed == 0
    assert site.busy == 0
    assert completions == []
    # The CPU already burned stays charged to the site's subtree.
    subtree = site.master.subtree_usage()
    assert subtree.cpu_s == pytest.approx(0.0001)
    assert subtree.net_bytes == 0


def test_webserver_cancel_during_disk_read_skips_cache_insert():
    env = Environment()
    machine, server = make_server(env)
    handle = ServiceHandle()
    outcome = []

    def serve(env):
        result = yield env.process(server.service_request(request(), handle=handle))
        outcome.append(result)

    def canceller(env):
        # Past the 60% CPU phase and into the disk read: the read's
        # io_time dominates, so any instant shortly after the CPU phase
        # lands inside it.
        cpu_phase = server.cost_model.cpu_seconds(request()) * 0.6
        yield env.timeout(cpu_phase + machine.disk.io_time(6000) * 0.5)
        assert handle.cancel() is True

    env.process(serve(env))
    env.process(canceller(env))
    env.run()
    assert outcome == [None]
    # The read never finished: nothing cached, no completed I/O.
    assert not machine.cache.lookup("/sites/site1.example.com/index.html")
    assert machine.disk.io_count == 0
    assert server.sites["site1.example.com"].busy == 0


def test_webserver_cancel_while_queued_for_worker_consumes_nothing():
    env = Environment()
    machine = Machine(env, "rpn1")
    server = WebServer(machine, workers_per_site=1)
    server.host_site("s.example.com", files={"f.html": 200_000})
    handle = ServiceHandle()
    outcome = []

    def first(env):
        yield env.process(
            server.service_request(WebRequest("s.example.com", "/f.html", 200_000))
        )

    def second(env):
        result = yield env.process(
            server.service_request(
                WebRequest("s.example.com", "/f.html", 200_000), handle=handle
            )
        )
        outcome.append(result)

    def canceller(env):
        yield env.timeout(1e-6)  # second is still waiting for the slot
        handle.cancelled = True

    env.process(first(env))
    env.process(second(env))
    env.process(canceller(env))
    env.run()
    site = server.sites["s.example.com"]
    assert outcome == [None]
    assert site.completed == 1
    assert site.busy == 0


def test_webserver_uncancelled_handle_completes_normally():
    env = Environment()
    machine, server = make_server(env)
    handle = ServiceHandle()
    result = env.run(
        until=env.process(server.service_request(request(), handle=handle))
    )
    assert result.status == 200
    assert handle.finished is True
    # Too late to cancel: the response is committed.
    assert handle.cancel() is False
    assert server.sites["site1.example.com"].completed == 1
