"""Tests for the time-sliced CPU model."""

import pytest

from repro.cluster import CPU, ProcessTable
from repro.sim import Environment


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        CPU(env, speed=0)
    with pytest.raises(ValueError):
        CPU(env, quantum_s=0)


def test_single_task_takes_its_duration():
    env = Environment()
    cpu = CPU(env)
    proc = ProcessTable().spawn("p")
    done_at = []

    def runner(env):
        yield cpu.execute(proc, 0.050)
        done_at.append(env.now)

    env.process(runner(env))
    env.run()
    assert done_at == [pytest.approx(0.050)]
    assert proc.cpu_s == pytest.approx(0.050)


def test_speed_scales_duration():
    env = Environment()
    cpu = CPU(env, speed=2.0)
    proc = ProcessTable().spawn("p")
    done_at = []

    def runner(env):
        yield cpu.execute(proc, 0.050)
        done_at.append(env.now)

    env.process(runner(env))
    env.run()
    assert done_at == [pytest.approx(0.025)]


def test_two_tasks_timeshare():
    """Two equal tasks submitted together finish at (nearly) the same time,
    both around 2x their solo duration: round-robin, not FIFO."""
    env = Environment()
    cpu = CPU(env, quantum_s=0.001)
    table = ProcessTable()
    pa, pb = table.spawn("a"), table.spawn("b")
    finish = {}

    def runner(env, name, proc):
        yield cpu.execute(proc, 0.050)
        finish[name] = env.now

    env.process(runner(env, "a", pa))
    env.process(runner(env, "b", pb))
    env.run()
    assert finish["a"] == pytest.approx(0.100, rel=0.05)
    assert finish["b"] == pytest.approx(0.100, rel=0.05)
    assert abs(finish["a"] - finish["b"]) <= 0.001 + 1e-9


def test_per_process_accounting_is_exact():
    env = Environment()
    cpu = CPU(env)
    table = ProcessTable()
    pa, pb = table.spawn("a"), table.spawn("b")

    def runner(env, proc, duration):
        yield cpu.execute(proc, duration)

    env.process(runner(env, pa, 0.030))
    env.process(runner(env, pb, 0.070))
    env.run()
    assert pa.cpu_s == pytest.approx(0.030)
    assert pb.cpu_s == pytest.approx(0.070)


def test_zero_duration_completes_immediately():
    env = Environment()
    cpu = CPU(env)
    proc = ProcessTable().spawn("p")
    event = cpu.execute(proc, 0.0)
    assert event.triggered


def test_negative_duration_rejected():
    env = Environment()
    cpu = CPU(env)
    proc = ProcessTable().spawn("p")
    with pytest.raises(ValueError):
        cpu.execute(proc, -0.1)


def test_utilization_tracking():
    env = Environment()
    cpu = CPU(env)
    proc = ProcessTable().spawn("p")

    def runner(env):
        yield cpu.execute(proc, 0.5)
        yield env.timeout(0.5)  # idle second half

    env.process(runner(env))
    env.run()
    assert cpu.utilization() == pytest.approx(0.5, rel=0.01)
    cpu.reset_utilization()
    assert cpu.utilization() == 0.0


def test_cpu_wakes_after_idle_period():
    env = Environment()
    cpu = CPU(env)
    proc = ProcessTable().spawn("p")
    done_at = []

    def runner(env):
        yield cpu.execute(proc, 0.010)
        yield env.timeout(1.0)  # CPU idles
        yield cpu.execute(proc, 0.010)
        done_at.append(env.now)

    env.process(runner(env))
    env.run()
    assert done_at == [pytest.approx(1.020)]
