"""Tests for IP and MAC address value types."""

import pytest

from repro.net import IPAddress, MACAddress


def test_ip_parse_and_format():
    ip = IPAddress("192.168.1.200")
    assert str(ip) == "192.168.1.200"
    assert int(ip) == (192 << 24) | (168 << 16) | (1 << 8) | 200


def test_ip_from_int():
    assert str(IPAddress(0x0A000001)) == "10.0.0.1"


def test_ip_copy_constructor():
    ip = IPAddress("10.1.2.3")
    assert IPAddress(ip) == ip


def test_ip_rejects_malformed():
    for bad in ["10.0.0", "10.0.0.256", "a.b.c.d", "10..0.1", ""]:
        with pytest.raises(ValueError):
            IPAddress(bad)
    with pytest.raises(ValueError):
        IPAddress(-1)
    with pytest.raises(ValueError):
        IPAddress(2**32)


def test_ip_equality_and_hash():
    assert IPAddress("10.0.0.1") == IPAddress(0x0A000001)
    assert hash(IPAddress("10.0.0.1")) == hash(IPAddress("10.0.0.1"))
    assert IPAddress("10.0.0.1") != IPAddress("10.0.0.2")
    assert IPAddress("10.0.0.1") != "10.0.0.1"


def test_ip_packed_roundtrip():
    ip = IPAddress("172.16.254.9")
    assert IPAddress.from_packed(ip.packed()) == ip
    with pytest.raises(ValueError):
        IPAddress.from_packed(b"\x01\x02")


def test_mac_parse_and_format():
    mac = MACAddress("02:00:5e:10:00:ff")
    assert str(mac) == "02:00:5e:10:00:ff"


def test_mac_from_int_roundtrip():
    mac = MACAddress(0x0200000000AB)
    assert MACAddress(str(mac)) == mac


def test_mac_rejects_malformed():
    for bad in ["02:00:00:00:00", "zz:00:00:00:00:00", "020000000000"]:
        with pytest.raises(ValueError):
            MACAddress(bad)
    with pytest.raises(ValueError):
        MACAddress(2**48)


def test_mac_broadcast():
    assert MACAddress.broadcast().is_broadcast
    assert str(MACAddress.broadcast()) == "ff:ff:ff:ff:ff:ff"
    assert not MACAddress("02:00:00:00:00:01").is_broadcast


def test_mac_packed_roundtrip():
    mac = MACAddress("0a:1b:2c:3d:4e:5f")
    assert MACAddress.from_packed(mac.packed()) == mac
    with pytest.raises(ValueError):
        MACAddress.from_packed(b"\x01")


def test_mac_equality_and_hash():
    assert MACAddress(5) == MACAddress(5)
    assert hash(MACAddress(5)) == hash(MACAddress(5))
    assert MACAddress(5) != MACAddress(6)
