"""Tests for packet structure and wire-format encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import ETH_IP_TCP_HEADER_LEN, IPAddress, MACAddress, Packet, TCPFlags
from repro.net.conn import Quadruple


def make_packet(**overrides):
    fields = dict(
        src_mac=MACAddress("02:00:00:00:00:01"),
        dst_mac=MACAddress("02:00:00:00:00:02"),
        src_ip=IPAddress("10.0.0.1"),
        dst_ip=IPAddress("10.0.0.2"),
        src_port=12345,
        dst_port=80,
        seq=1000,
        ack=2000,
        flags=TCPFlags.ACK,
        payload_len=100,
    )
    fields.update(overrides)
    return Packet(**fields)


def test_total_len_includes_headers():
    packet = make_packet(payload_len=100)
    assert packet.total_len == ETH_IP_TCP_HEADER_LEN + 100


def test_quadruple():
    packet = make_packet()
    quad = packet.quadruple()
    assert quad == Quadruple(
        IPAddress("10.0.0.1"), 12345, IPAddress("10.0.0.2"), 80
    )
    assert quad.reversed() == Quadruple(
        IPAddress("10.0.0.2"), 80, IPAddress("10.0.0.1"), 12345
    )


def test_seq_ack_wrap_mod_2_32():
    packet = make_packet(seq=2**32 + 5, ack=2**33 + 7)
    assert packet.seq == 5
    assert packet.ack == 7


def test_port_validation():
    with pytest.raises(ValueError):
        make_packet(src_port=65536)
    with pytest.raises(ValueError):
        make_packet(dst_port=-1)


def test_negative_payload_len_rejected():
    with pytest.raises(ValueError):
        make_packet(payload_len=-1)


def test_copy_gets_fresh_pid():
    packet = make_packet()
    clone = packet.copy(seq=9999)
    assert clone.pid != packet.pid
    assert clone.seq == 9999
    assert clone.src_ip == packet.src_ip
    assert packet.seq == 1000  # original untouched


def test_pack_unpack_roundtrip_basic():
    packet = make_packet(flags=TCPFlags.SYN | TCPFlags.ACK, payload_len=0)
    wire = packet.pack()
    assert len(wire) == ETH_IP_TCP_HEADER_LEN
    decoded = Packet.unpack(wire)
    assert decoded.src_mac == packet.src_mac
    assert decoded.dst_mac == packet.dst_mac
    assert decoded.src_ip == packet.src_ip
    assert decoded.dst_ip == packet.dst_ip
    assert decoded.src_port == packet.src_port
    assert decoded.dst_port == packet.dst_port
    assert decoded.seq == packet.seq
    assert decoded.ack == packet.ack
    assert decoded.flags == packet.flags


def test_pack_with_payload_bytes():
    packet = make_packet(payload_len=11)
    wire = packet.pack(b"hello world")
    decoded = Packet.unpack(wire)
    assert decoded.payload == b"hello world"
    assert decoded.payload_len == 11


def test_pack_rejects_mismatched_payload():
    packet = make_packet(payload_len=5)
    with pytest.raises(ValueError):
        packet.pack(b"toolongpayload")


def test_unpack_rejects_corrupted_ip_checksum():
    wire = bytearray(make_packet().pack())
    wire[16] ^= 0xFF  # flip a bit inside the IP header
    with pytest.raises(ValueError):
        Packet.unpack(bytes(wire))


def test_unpack_rejects_corrupted_tcp_checksum():
    wire = bytearray(make_packet(payload_len=4).pack(b"abcd"))
    wire[-1] ^= 0xFF  # corrupt payload; TCP checksum covers it
    with pytest.raises(ValueError):
        Packet.unpack(bytes(wire))


def test_unpack_rejects_short_frame():
    with pytest.raises(ValueError):
        Packet.unpack(b"\x00" * 10)


@settings(max_examples=200, deadline=None)
@given(
    src_port=st.integers(0, 65535),
    dst_port=st.integers(0, 65535),
    seq=st.integers(0, 2**32 - 1),
    ack=st.integers(0, 2**32 - 1),
    flags=st.integers(0, 0x1F),
    payload=st.binary(max_size=256),
    src_ip=st.integers(0, 2**32 - 1),
    dst_ip=st.integers(0, 2**32 - 1),
    src_mac=st.integers(0, 2**48 - 1),
    dst_mac=st.integers(0, 2**48 - 1),
)
def test_pack_unpack_roundtrip_property(
    src_port, dst_port, seq, ack, flags, payload, src_ip, dst_ip, src_mac, dst_mac
):
    packet = Packet(
        src_mac=MACAddress(src_mac),
        dst_mac=MACAddress(dst_mac),
        src_ip=IPAddress(src_ip),
        dst_ip=IPAddress(dst_ip),
        src_port=src_port,
        dst_port=dst_port,
        seq=seq,
        ack=ack,
        flags=TCPFlags(flags),
        payload_len=len(payload),
    )
    decoded = Packet.unpack(packet.pack(payload if payload else None))
    assert decoded.quadruple() == packet.quadruple()
    assert decoded.seq == seq
    assert decoded.ack == ack
    assert int(decoded.flags) == flags
    assert decoded.payload_len == len(payload)


def test_repr_contains_flags():
    packet = make_packet(flags=TCPFlags.SYN)
    assert "SYN" in repr(packet)
