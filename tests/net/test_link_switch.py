"""Tests for interfaces, links, NIC filtering, and the learning switch."""

import pytest

from repro.net import NIC, IPAddress, Interface, MACAddress, Packet, Switch, TCPFlags
from repro.sim import Environment


def frame(src_mac, dst_mac, payload_len=0):
    return Packet(
        src_mac=MACAddress(src_mac),
        dst_mac=MACAddress(dst_mac),
        src_ip=IPAddress("10.0.0.1"),
        dst_ip=IPAddress("10.0.0.2"),
        src_port=1,
        dst_port=2,
        flags=TCPFlags.ACK,
        payload_len=payload_len,
    )


def test_interface_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Interface(env, "x", bandwidth_bps=0)
    with pytest.raises(ValueError):
        Interface(env, "x", latency_s=-1)
    with pytest.raises(ValueError):
        Interface(env, "x", loss_rate=1.0)


def test_point_to_point_delivery_timing():
    env = Environment()
    a = Interface(env, "a", bandwidth_bps=100e6, latency_s=10e-6)
    b = Interface(env, "b", bandwidth_bps=100e6, latency_s=10e-6)
    a.connect(b)
    arrivals = []
    b.on_receive = lambda pkt, iface: arrivals.append(env.now)
    pkt = frame("02:00:00:00:00:01", "02:00:00:00:00:02", payload_len=946)
    # 946 + 54 headers = 1000 bytes = 8000 bits at 100 Mbit/s = 80 us + 10 us.
    a.send(pkt)
    env.run()
    assert arrivals == [pytest.approx(90e-6)]


def test_serialization_is_sequential():
    env = Environment()
    a = Interface(env, "a", bandwidth_bps=100e6, latency_s=0.0)
    b = Interface(env, "b")
    a.connect(b)
    arrivals = []
    b.on_receive = lambda pkt, iface: arrivals.append(env.now)
    for _ in range(3):
        a.send(frame("02:00:00:00:00:01", "02:00:00:00:00:02", payload_len=946))
    env.run()
    # Each frame takes 80 us to serialize; back-to-back arrivals.
    assert arrivals == [
        pytest.approx(80e-6),
        pytest.approx(160e-6),
        pytest.approx(240e-6),
    ]


def test_queue_overflow_drops():
    env = Environment()
    a = Interface(env, "a", queue_frames=2)
    b = Interface(env, "b")
    a.connect(b)
    accepted = [a.send(frame("02:00:00:00:00:01", "02:00:00:00:00:02")) for _ in range(5)]
    assert accepted.count(True) <= 3  # 2 queued + possibly 1 in flight
    assert a.dropped_full >= 2


def test_double_connect_rejected():
    env = Environment()
    a = Interface(env, "a")
    b = Interface(env, "b")
    c = Interface(env, "c")
    a.connect(b)
    with pytest.raises(RuntimeError):
        a.connect(c)


def test_loss_rate_drops_frames():
    import random

    env = Environment()
    a = Interface(env, "a", loss_rate=0.5, loss_rng=random.Random(42))
    b = Interface(env, "b")
    a.connect(b)
    received = []
    b.on_receive = lambda pkt, iface: received.append(pkt)
    for _ in range(200):
        a.send(frame("02:00:00:00:00:01", "02:00:00:00:00:02"))
    env.run()
    assert 60 < len(received) < 140
    assert a.dropped_loss == 200 - len(received)


def test_nic_mac_filtering():
    env = Environment()
    a = Interface(env, "a")
    nic = NIC(env, MACAddress("02:00:00:00:00:02"), name="b")
    a.connect(nic.iface)
    seen = []
    nic.receive_handler = seen.append
    a.send(frame("02:00:00:00:00:01", "02:00:00:00:00:02"))  # for us
    a.send(frame("02:00:00:00:00:01", "02:00:00:00:00:99"))  # not for us
    a.send(frame("02:00:00:00:00:01", "ff:ff:ff:ff:ff:ff"))  # broadcast
    env.run()
    assert len(seen) == 2
    assert nic.rx_filtered == 1


def test_nic_promiscuous_mode():
    env = Environment()
    a = Interface(env, "a")
    nic = NIC(env, MACAddress("02:00:00:00:00:02"), name="b", promiscuous=True)
    a.connect(nic.iface)
    seen = []
    nic.receive_handler = seen.append
    a.send(frame("02:00:00:00:00:01", "02:00:00:00:00:99"))
    env.run()
    assert len(seen) == 1


def test_nic_interrupt_sink_charged():
    env = Environment()
    a = Interface(env, "a")
    costs = []
    nic = NIC(
        env,
        MACAddress("02:00:00:00:00:02"),
        name="b",
        interrupt_cost_s=5e-6,
        interrupt_sink=costs.append,
    )
    a.connect(nic.iface)
    for _ in range(3):
        a.send(frame("02:00:00:00:00:01", "02:00:00:00:00:02"))
    env.run()
    assert costs == [5e-6, 5e-6, 5e-6]


def test_switch_learning_and_forwarding():
    env = Environment()
    switch = Switch(env, ports=4)
    macs = ["02:00:00:00:00:0{}".format(i) for i in range(1, 4)]
    nics = [NIC(env, MACAddress(mac), name=mac) for mac in macs]
    inboxes = {mac: [] for mac in macs}
    for mac, nic in zip(macs, nics):
        nic.receive_handler = inboxes[mac].append
        switch.attach(nic.iface)

    # First frame to an unlearned MAC floods everywhere except ingress.
    nics[0].transmit(frame(macs[0], macs[1]))
    env.run()
    assert len(inboxes[macs[1]]) == 1
    assert len(inboxes[macs[2]]) == 0  # NIC filtered the flooded copy
    assert switch.flooded == 1

    # Reply: now both MACs are learned, so unicast forwarding.
    nics[1].transmit(frame(macs[1], macs[0]))
    env.run()
    assert len(inboxes[macs[0]]) == 1
    assert switch.forwarded == 1
    assert switch.lookup(MACAddress(macs[0])) is not None


def test_switch_broadcast_floods():
    env = Environment()
    switch = Switch(env, ports=4)
    macs = ["02:00:00:00:00:0{}".format(i) for i in range(1, 4)]
    nics = [NIC(env, MACAddress(mac), name=mac) for mac in macs]
    counts = {mac: [] for mac in macs}
    for mac, nic in zip(macs, nics):
        nic.receive_handler = counts[mac].append
        switch.attach(nic.iface)
    nics[0].transmit(frame(macs[0], "ff:ff:ff:ff:ff:ff"))
    env.run()
    assert len(counts[macs[1]]) == 1
    assert len(counts[macs[2]]) == 1
    assert len(counts[macs[0]]) == 0


def test_switch_port_exhaustion():
    env = Environment()
    switch = Switch(env, ports=2)
    switch.attach(Interface(env, "h1"))
    switch.attach(Interface(env, "h2"))
    with pytest.raises(RuntimeError):
        switch.attach(Interface(env, "h3"))


def test_switch_min_ports():
    env = Environment()
    with pytest.raises(ValueError):
        Switch(env, ports=1)


def test_switch_mac_aging():
    """Entries expire after the aging time; traffic floods again until
    the address is relearned."""
    env = Environment()
    switch = Switch(env, ports=4, mac_aging_s=10.0)
    macs = ["02:00:00:00:00:0{}".format(i) for i in range(1, 3)]
    nics = [NIC(env, MACAddress(mac), name=mac) for mac in macs]
    for nic in nics:
        switch.attach(nic.iface)

    nics[0].transmit(frame(macs[0], macs[1]))
    env.run()
    assert switch.lookup(MACAddress(macs[0])) is not None

    # Advance beyond the aging horizon: the entry expires lazily.
    env.timeout(20.0)
    env.run()
    assert switch.lookup(MACAddress(macs[0])) is None

    # Relearn on the next frame.
    nics[0].transmit(frame(macs[0], macs[1]))
    env.run()
    assert switch.lookup(MACAddress(macs[0])) is not None


def test_switch_aging_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Switch(env, ports=4, mac_aging_s=0)
