"""Shared fixtures for network-layer tests."""

import pytest

from repro.net import NIC, HostStack, IPAddress, MACAddress, Switch
from repro.sim import Environment


class Host:
    """A simulated host: NIC + TCP stack, for tests."""

    def __init__(self, env, ip, mac, switch, **stack_kwargs):
        self.ip = IPAddress(ip)
        self.mac = MACAddress(mac)
        self.nic = NIC(env, self.mac, name="nic-{}".format(ip))
        switch.attach(self.nic.iface)
        self.stack = HostStack(env, self.ip, self.nic, **stack_kwargs)


class TwoHostNet:
    """Two hosts on one switch with static ARP entries."""

    def __init__(self, env, **stack_kwargs):
        self.env = env
        self.switch = Switch(env, ports=4)
        self.a = Host(env, "10.0.0.1", "02:00:00:00:00:01", self.switch, **stack_kwargs)
        self.b = Host(env, "10.0.0.2", "02:00:00:00:00:02", self.switch, **stack_kwargs)
        self.a.stack.arp[self.b.ip] = self.b.mac
        self.b.stack.arp[self.a.ip] = self.a.mac


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def net(env):
    return TwoHostNet(env)
