"""Tests for the packet tracer and interface failure injection."""

import pytest

from repro.net import NIC, IPAddress, MACAddress, Packet, TCPFlags
from repro.net.tracer import PacketTracer
from repro.sim import Environment


def test_tracer_captures_delivered_frames(env, net):
    received = []

    def serve(conn):
        def server(env):
            received.append((yield conn.receive()))
        env.process(server(env))

    net.b.stack.listen(80, serve)
    all_ifaces = [net.a.nic.iface, net.b.nic.iface]
    with PacketTracer(env, all_ifaces) as tracer:
        def client(env):
            conn = net.a.stack.connect(net.b.ip, 80)
            yield conn.established
            yield conn.send(100, payload="req")

        env.run(until=env.process(client(env)))
        env.run()
    # SYN-ACK to a; SYN, ACK, data, and an ACK of the data at/from b.
    assert len(tracer) >= 4
    syns = tracer.matching(lambda p: TCPFlags.SYN in p.flags)
    assert len(syns) == 2  # SYN at b, SYN-ACK at a
    b_frames = tracer.on_interface(net.b.nic.iface.name)
    assert all(entry.packet.dst_ip == net.b.ip for entry in b_frames)


def test_tracer_filter_and_limit(env, net):
    tracer = PacketTracer(
        env,
        [net.b.nic.iface],
        packet_filter=lambda p: p.payload_len > 0,
        max_packets=1,
    )
    net.b.stack.listen(80, lambda conn: None)
    tracer.attach()

    def client(env):
        conn = net.a.stack.connect(net.b.ip, 80)
        yield conn.established
        yield conn.send(3000, payload="big")  # 3 segments, limit is 1

    env.run(until=env.process(client(env)))
    env.run()
    tracer.detach()
    assert len(tracer) == 1
    assert tracer.dropped_over_limit >= 1
    tracer.clear()
    assert len(tracer) == 0


def test_tracer_detach_restores_hooks(env, net):
    iface = net.b.nic.iface
    original = iface.on_receive
    tracer = PacketTracer(env, [iface])
    tracer.attach()
    assert iface.on_receive is not original
    tracer.detach()
    assert iface.on_receive is original
    tracer.detach()  # idempotent


def test_tracer_double_attach_rejected(env, net):
    tracer = PacketTracer(env, [net.a.nic.iface])
    tracer.attach()
    with pytest.raises(RuntimeError):
        tracer.attach()


def test_tracer_validation(env, net):
    with pytest.raises(ValueError):
        PacketTracer(env, [], max_packets=0)


def test_interface_down_drops_frames(env, net):
    """A downed NIC blackholes traffic; TCP recovers after it comes up."""
    received = []

    def serve(conn):
        def server(env):
            total = 0
            while total < 2000:
                _p, length = yield conn.receive()
                total += length
            received.append(total)
        env.process(server(env))

    net.b.stack.listen(80, serve)

    def client(env):
        conn = net.a.stack.connect(net.b.ip, 80)
        yield conn.established
        net.b.nic.iface.up = False  # outage begins
        yield conn.send(2000, payload="data")

    def repair(env):
        yield env.timeout(0.5)
        net.b.nic.iface.up = True

    env.process(repair(env))
    env.run(until=env.process(client(env)))
    env.run()
    assert received == [2000]
    assert net.b.nic.iface.dropped_loss > 0


def test_interface_down_stops_transmit_too():
    env = Environment()
    from repro.net import Interface

    a = Interface(env, "a")
    b = Interface(env, "b")
    a.connect(b)
    hits = []
    b.on_receive = lambda p, i: hits.append(p)
    a.up = False
    a.send(Packet(
        src_mac=MACAddress(1), dst_mac=MACAddress(2),
        src_ip=IPAddress("10.0.0.1"), dst_ip=IPAddress("10.0.0.2"),
        src_port=1, dst_port=2,
    ))
    env.run()
    assert hits == []
    assert a.dropped_loss == 1
