"""Tests for the ARP implementation."""

import pytest

from repro.net import NIC, IPAddress, MACAddress, Switch
from repro.net.arp import ArpError, ArpService
from repro.sim import Environment


def host(env, switch, ip, mac, **kw):
    nic = NIC(env, MACAddress(mac), name="h-{}".format(ip))
    switch.attach(nic.iface)
    return ArpService(env, nic, IPAddress(ip), **kw)


def test_resolution_between_two_hosts():
    env = Environment()
    switch = Switch(env, ports=4)
    a = host(env, switch, "10.0.0.1", "02:00:00:00:00:01")
    b = host(env, switch, "10.0.0.2", "02:00:00:00:00:02")

    def run(env):
        mac = yield a.resolve(IPAddress("10.0.0.2"))
        assert mac == b.nic.mac

    env.run(until=env.process(run(env)))
    assert a.lookup(IPAddress("10.0.0.2")) == b.nic.mac
    assert a.requests_sent == 1
    assert b.replies_sent == 1
    # The responder learned the requester's address from the request.
    assert b.lookup(IPAddress("10.0.0.1")) == a.nic.mac


def test_cached_resolution_is_immediate():
    env = Environment()
    switch = Switch(env, ports=4)
    a = host(env, switch, "10.0.0.1", "02:00:00:00:00:01")
    host(env, switch, "10.0.0.2", "02:00:00:00:00:02")

    def run(env):
        yield a.resolve(IPAddress("10.0.0.2"))
        before = a.requests_sent
        yield a.resolve(IPAddress("10.0.0.2"))
        assert a.requests_sent == before  # served from cache

    env.run(until=env.process(run(env)))


def test_concurrent_resolutions_share_one_request():
    env = Environment()
    switch = Switch(env, ports=4)
    a = host(env, switch, "10.0.0.1", "02:00:00:00:00:01")
    host(env, switch, "10.0.0.2", "02:00:00:00:00:02")
    results = []

    def run(env):
        first = a.resolve(IPAddress("10.0.0.2"))
        second = a.resolve(IPAddress("10.0.0.2"))
        results.append((yield first))
        results.append((yield second))

    env.run(until=env.process(run(env)))
    assert len(results) == 2
    assert a.requests_sent == 1


def test_resolution_fails_after_retries():
    env = Environment()
    switch = Switch(env, ports=4)
    a = host(env, switch, "10.0.0.1", "02:00:00:00:00:01", timeout_s=0.05, retries=2)

    def run(env):
        with pytest.raises(ArpError):
            yield a.resolve(IPAddress("10.0.0.99"))

    env.run(until=env.process(run(env)))
    assert a.requests_sent == 2
    assert a.failures == 1


def test_send_resolved_holds_then_delivers():
    env = Environment()
    switch = Switch(env, ports=4)
    a = host(env, switch, "10.0.0.1", "02:00:00:00:00:01")
    b = host(env, switch, "10.0.0.2", "02:00:00:00:00:02")
    got = []
    b._passthrough = got.append

    from repro.net.packet import Packet, TCPFlags

    frame = Packet(
        src_mac=a.nic.mac, dst_mac=MACAddress.broadcast(),
        src_ip=IPAddress("10.0.0.1"), dst_ip=IPAddress("10.0.0.2"),
        src_port=1, dst_port=2, flags=TCPFlags.SYN,
    )
    a.send_resolved(frame)
    env.run(until=0.5)
    assert len(got) == 1
    assert got[0].dst_mac == b.nic.mac  # rewritten after resolution


def test_send_resolved_drops_on_failure():
    env = Environment()
    switch = Switch(env, ports=4)
    a = host(env, switch, "10.0.0.1", "02:00:00:00:00:01", timeout_s=0.05, retries=1)

    from repro.net.packet import Packet, TCPFlags

    frame = Packet(
        src_mac=a.nic.mac, dst_mac=MACAddress.broadcast(),
        src_ip=IPAddress("10.0.0.1"), dst_ip=IPAddress("10.0.0.99"),
        src_port=1, dst_port=2, flags=TCPFlags.SYN,
    )
    a.send_resolved(frame)
    env.run(until=1.0)  # must not crash; frame silently dropped
    assert a.failures == 1


def test_non_arp_traffic_passes_through():
    env = Environment()
    switch = Switch(env, ports=4)
    a = host(env, switch, "10.0.0.1", "02:00:00:00:00:01")
    b = host(env, switch, "10.0.0.2", "02:00:00:00:00:02")
    got = []
    b._passthrough = got.append

    from repro.net.packet import Packet, TCPFlags

    a.nic.transmit(Packet(
        src_mac=a.nic.mac, dst_mac=b.nic.mac,
        src_ip=IPAddress("10.0.0.1"), dst_ip=IPAddress("10.0.0.2"),
        src_port=1, dst_port=2, flags=TCPFlags.ACK,
    ))
    env.run()
    assert len(got) == 1


def test_validation():
    env = Environment()
    switch = Switch(env, ports=4)
    nic = NIC(env, MACAddress(1), name="x")
    switch.attach(nic.iface)
    with pytest.raises(ValueError):
        ArpService(env, nic, IPAddress("10.0.0.1"), timeout_s=0)
    with pytest.raises(ValueError):
        ArpService(env, nic, IPAddress("10.0.0.1"), retries=0)


def test_cluster_end_to_end_with_dynamic_arp():
    """Clients discover the cluster VIP via ARP; requests still complete."""
    from repro.core import GageCluster, Subscriber
    from repro.workload import SyntheticWorkload

    env = Environment()
    subs = [Subscriber("a", 100)]
    workload = SyntheticWorkload(rates={"a": 20.0}, duration_s=2.0, file_bytes=2000)
    cluster = GageCluster(
        env,
        subs,
        {"a": workload.site_files("a")},
        num_rpns=2,
        fidelity="packet",
        dynamic_arp=True,
    )
    cluster.load_trace(workload.generate())
    cluster.run(4.0)
    stats = cluster.fleet.stats
    assert stats.completed == stats.issued
    assert stats.failed == 0
    for stack in cluster.fleet.stacks:
        assert stack.arp_service.lookup(cluster.cluster_ip) == cluster.rdn.nic.mac
