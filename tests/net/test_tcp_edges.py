"""Edge-case tests for the TCP state machine."""

import pytest

from repro.net import TCPState
from repro.net.packet import SEQ_SPACE
from repro.net.tcp import ConnectionError_

from .conftest import TwoHostNet


def test_simultaneous_close(env, net):
    """Both ends send FIN before seeing the other's; both reach CLOSED."""
    conns = {}

    def serve(conn):
        conns["server"] = conn

        def server(env):
            yield conn.receive()  # the request
            conn.close()  # close immediately, concurrent with the client

        env.process(server(env))

    net.b.stack.listen(80, serve)

    def client(env):
        conn = net.a.stack.connect(net.b.ip, 80)
        conns["client"] = conn
        yield conn.established
        yield conn.send(100, payload="req")
        conn.close()

    env.run(until=env.process(client(env)))
    env.run()
    assert conns["client"].state is TCPState.CLOSED
    assert conns["server"].state is TCPState.CLOSED


def test_sequence_number_wraparound():
    """Data transfer across the 2**32 sequence boundary."""
    from repro.sim import Environment

    env = Environment()
    wrap_isn = SEQ_SPACE - 1000  # wraps within the first few segments

    def isn():
        return wrap_isn

    net = TwoHostNet(env, isn_rng=isn)
    received = []

    def serve(conn):
        def server(env):
            total = 0
            while total < 8000:
                _p, length = yield conn.receive()
                total += length
            received.append(total)
        env.process(server(env))

    net.b.stack.listen(80, serve)

    def client(env):
        conn = net.a.stack.connect(net.b.ip, 80)
        yield conn.established
        yield conn.send(8000, payload="wrapping")
        assert conn.snd_nxt < wrap_isn  # the sender's space wrapped

    env.run(until=env.process(client(env)))
    env.run()
    assert received == [8000]


def test_syn_lost_then_retransmitted(env):
    """A lost SYN is retried; the connection still establishes."""
    import random

    from .conftest import TwoHostNet as Net

    env2 = env
    net = Net(env2, rto_s=0.05)
    # Drop the first few frames deterministically.
    drops = {"left": 1}
    original = net.a.nic.iface._tx_loop  # noqa: F841 (documentation)
    net.a.nic.iface.loss_rate = 0.999
    net.a.nic.iface._loss_rng = random.Random(0)

    def heal(env):
        yield env.timeout(0.06)  # after the first SYN is lost
        net.a.nic.iface.loss_rate = 0.0

    env2.process(heal(env2))
    established = []

    def client(env):
        conn = net.a.stack.connect(net.b.ip, 80)
        yield conn.established
        established.append(env.now)

    net.b.stack.listen(80, lambda conn: None)
    env2.run(until=env2.process(client(env2)))
    assert established and established[0] > 0.05  # needed a retransmit


def test_abort_half_open_connection(env, net):
    net.b.stack.listen(80, lambda conn: None)

    def client(env):
        conn = net.a.stack.connect(net.b.ip, 80)
        conn.abort()  # give up before the SYN-ACK arrives
        with pytest.raises(ConnectionError_):
            yield conn.established

    env.run(until=env.process(client(env)))
    env.run()


def test_connect_with_explicit_source_port(env, net):
    net.b.stack.listen(80, lambda conn: None)

    def client(env):
        conn = net.a.stack.connect(net.b.ip, 80, src_port=5555)
        assert conn.quad.src_port == 5555
        yield conn.established
        # A second connect on the same quadruple is rejected.
        with pytest.raises(RuntimeError):
            net.a.stack.connect(net.b.ip, 80, src_port=5555)

    env.run(until=env.process(client(env)))


def test_packet_for_foreign_ip_ignored(env, net):
    from repro.net import IPAddress, Packet, TCPFlags

    stray = Packet(
        src_mac=net.a.mac, dst_mac=net.b.mac,
        src_ip=net.a.ip, dst_ip=IPAddress("10.9.9.9"),
        src_port=1, dst_port=2, flags=TCPFlags.SYN,
    )
    net.b.stack.receive(stray)
    assert net.b.stack.rx_no_connection == 0  # not even counted: not ours


def test_time_wait_delays_removal():
    from repro.sim import Environment

    env = Environment()
    net = TwoHostNet(env, time_wait_s=0.5)

    def serve(conn):
        def server(env):
            chunk, _l = yield conn.receive()
            yield conn.close()
        env.process(server(env))

    net.b.stack.listen(80, serve)

    def client(env):
        conn = net.a.stack.connect(net.b.ip, 80)
        yield conn.established
        conn.close()
        return conn

    conn = env.run(until=env.process(client(env)))
    env.run(until=0.3)
    # The closing side sits in TIME_WAIT, still registered.
    assert conn.state is TCPState.TIME_WAIT
    assert conn.quad in net.a.stack.connections
    env.run(until=1.0)
    assert conn.state is TCPState.CLOSED
    assert conn.quad not in net.a.stack.connections


def test_send_zero_length_rejected(env, net):
    def serve(conn):
        pass

    net.b.stack.listen(80, serve)

    def client(env):
        conn = net.a.stack.connect(net.b.ip, 80)
        yield conn.established
        with pytest.raises(ValueError):
            conn.send(0)

    env.run(until=env.process(client(env)))
