"""Tests for TCP splicing sequence/address remapping."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import IPAddress, MACAddress, Packet, SpliceRule, TCPFlags
from repro.net.conn import Quadruple
from repro.net.packet import SEQ_SPACE

CLIENT_IP = IPAddress("10.0.0.1")
CLUSTER_IP = IPAddress("10.0.0.100")
RPN_IP = IPAddress("10.0.1.4")
CLIENT_MAC = MACAddress("02:00:00:00:00:01")
RPN_MAC = MACAddress("02:00:00:00:01:04")


def make_rule(rdn_isn=5000, rpn_isn=1000):
    return SpliceRule(
        client_quad=Quadruple(CLIENT_IP, 30000, CLUSTER_IP, 80),
        cluster_ip=CLUSTER_IP,
        rpn_ip=RPN_IP,
        rdn_isn=rdn_isn,
        rpn_isn=rpn_isn,
        client_mac=CLIENT_MAC,
        rpn_mac=RPN_MAC,
    )


def incoming_packet(ack=1001, flags=TCPFlags.ACK):
    """A client -> cluster packet as seen on the wire."""
    return Packet(
        src_mac=CLIENT_MAC,
        dst_mac=MACAddress("02:00:00:00:00:64"),
        src_ip=CLIENT_IP,
        dst_ip=CLUSTER_IP,
        src_port=30000,
        dst_port=80,
        seq=777,
        ack=ack,
        flags=flags,
    )


def outgoing_packet(seq=1001):
    """An RPN -> client packet as the RPN's stack emits it."""
    return Packet(
        src_mac=RPN_MAC,
        dst_mac=CLIENT_MAC,
        src_ip=RPN_IP,
        dst_ip=CLIENT_IP,
        src_port=80,
        dst_port=30000,
        seq=seq,
        ack=778,
        flags=TCPFlags.ACK,
        payload_len=100,
    )


def test_seq_delta():
    assert make_rule(rdn_isn=5000, rpn_isn=1000).seq_delta == 4000
    # Delta wraps when the RPN ISN is numerically larger.
    assert make_rule(rdn_isn=10, rpn_isn=20).seq_delta == SEQ_SPACE - 10


def test_outgoing_remap_impersonates_cluster():
    rule = make_rule()
    out = rule.remap_outgoing(outgoing_packet(seq=1001))
    assert out.src_ip == CLUSTER_IP
    assert out.seq == 5001  # 1001 + delta(4000)
    assert out.ack == 778  # client-side numbers untouched
    assert out.dst_mac == CLIENT_MAC
    assert rule.outgoing_remapped == 1


def test_incoming_remap_redirects_to_rpn():
    rule = make_rule()
    inp = rule.remap_incoming(incoming_packet(ack=5001))
    assert inp.dst_ip == RPN_IP
    assert inp.dst_mac == RPN_MAC
    assert inp.ack == 1001  # 5001 - delta(4000)
    assert inp.seq == 777  # client sequence unchanged
    assert rule.incoming_remapped == 1


def test_incoming_without_ack_flag_keeps_ack_field():
    rule = make_rule()
    inp = rule.remap_incoming(incoming_packet(ack=0, flags=TCPFlags.NONE))
    assert inp.ack == 0


def test_match_predicates():
    rule = make_rule()
    assert rule.matches_incoming(incoming_packet())
    assert not rule.matches_incoming(outgoing_packet())
    assert rule.matches_outgoing(outgoing_packet())
    assert not rule.matches_outgoing(incoming_packet())


def test_remap_does_not_mutate_original():
    rule = make_rule()
    original = outgoing_packet(seq=1001)
    rule.remap_outgoing(original)
    assert original.seq == 1001
    assert original.src_ip == RPN_IP


@settings(max_examples=200, deadline=None)
@given(
    rdn_isn=st.integers(0, SEQ_SPACE - 1),
    rpn_isn=st.integers(0, SEQ_SPACE - 1),
    seq=st.integers(0, SEQ_SPACE - 1),
)
def test_remap_roundtrip_property(rdn_isn, rpn_isn, seq):
    """Outgoing seq shift and incoming ack shift are exact inverses:
    if the RPN sends seq S, the client ACKs S' = S + delta, and the
    incoming remap returns exactly S for the RPN's stack."""
    rule = make_rule(rdn_isn=rdn_isn, rpn_isn=rpn_isn)
    out = rule.remap_outgoing(outgoing_packet(seq=seq))
    client_ack = out.seq  # client echoes what it saw
    back = rule.remap_incoming(incoming_packet(ack=client_ack))
    assert back.ack == seq
