"""ARP behaviour when the network eats every frame (total link loss).

The loss model (`Interface.loss_rate`) deliberately forbids 1.0, so a
100%-lossy link is expressed the way it happens in practice: the
interface goes *down* (``iface.up = False``).  A downed interface
neither transmits nor delivers — exactly a dead cable.
"""

from repro.net import NIC, IPAddress, MACAddress, Switch
from repro.net.arp import ArpError, ArpService
from repro.net.packet import Packet
from repro.sim import Environment


def host(env, switch, ip, mac, **kw):
    nic = NIC(env, MACAddress(mac), name="h-{}".format(ip))
    switch.attach(nic.iface)
    return ArpService(env, nic, IPAddress(ip), **kw)


def build(env, **kw):
    switch = Switch(env, ports=4)
    a = host(env, switch, "10.0.0.1", "02:00:00:00:00:01", **kw)
    b = host(env, switch, "10.0.0.2", "02:00:00:00:00:02", **kw)
    return a, b


def test_resolution_fails_after_retries_when_link_dead():
    env = Environment()
    a, _b = build(env, timeout_s=0.05, retries=3)
    a.nic.iface.up = False  # our side of the cable is dead
    failures = []

    def run(env):
        try:
            yield a.resolve(IPAddress("10.0.0.2"))
        except ArpError as exc:
            failures.append(exc)

    env.run(until=env.process(run(env)))
    assert len(failures) == 1
    assert a.requests_sent == 3  # every retry was attempted
    assert a.failures == 1
    assert a.lookup(IPAddress("10.0.0.2")) is None


def test_queued_packets_dropped_and_counted_not_leaked():
    env = Environment()
    a, b = build(env, timeout_s=0.05, retries=2)
    b.nic.iface.up = False  # the target is unreachable: requests vanish

    data = Packet(
        src_mac=a.nic.mac,
        dst_mac=MACAddress.broadcast(),
        src_ip=IPAddress("10.0.0.1"),
        dst_ip=IPAddress("10.0.0.2"),
        src_port=1234,
        dst_port=80,
        payload=b"payload",
        payload_len=7,
    )
    for _ in range(3):
        a.send_resolved(data)
    env.run(until=1.0)
    # All three held frames were discarded once resolution failed...
    assert a.dropped_unresolved == 3
    assert a.failures == 1  # one shared resolution attempt for the IP
    # ...and no waiter or queue state leaked behind them.
    assert a._waiters == {}
    assert b.replies_sent == 0


def test_recovery_after_link_heals():
    env = Environment()
    a, b = build(env, timeout_s=0.05, retries=2)
    a.nic.iface.up = False
    outcomes = []

    def attempt(env):
        try:
            yield a.resolve(IPAddress("10.0.0.2"))
            outcomes.append("ok")
        except ArpError:
            outcomes.append("fail")

    env.run(until=env.process(attempt(env)))
    a.nic.iface.up = True  # cable replaced
    env.run(until=env.process(attempt(env)))
    assert outcomes == ["fail", "ok"]
    assert a.lookup(IPAddress("10.0.0.2")) == b.nic.mac
