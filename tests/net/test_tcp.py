"""End-to-end tests for the simulated TCP stack."""

import pytest

from repro.net import Connection, TCPState
from repro.net.tcp import ConnectionError_, seq_add, seq_leq, seq_lt

from .conftest import TwoHostNet


def test_seq_arithmetic_wraps():
    assert seq_add(2**32 - 1, 2) == 1
    assert seq_lt(2**32 - 10, 5)  # wrapped: just before vs just after zero
    assert not seq_lt(5, 2**32 - 10)
    assert seq_leq(7, 7)
    assert seq_leq(6, 7)
    assert not seq_lt(7, 7)


def test_handshake_establishes_both_ends(env, net):
    accepted = []
    net.b.stack.listen(80, accepted.append)

    def client(env):
        conn = net.a.stack.connect(net.b.ip, 80)
        yield conn.established
        assert conn.state is TCPState.ESTABLISHED

    env.run(until=env.process(client(env)))
    env.run()  # let the final handshake ACK reach the server
    assert len(accepted) == 1
    assert accepted[0].state is TCPState.ESTABLISHED
    assert accepted[0].quad.src_ip == net.b.ip


def test_data_transfer_single_segment(env, net):
    received = []

    def serve(conn):
        def server(env):
            chunk = yield conn.receive()
            received.append(chunk)
        env.process(server(env))

    net.b.stack.listen(80, serve)

    def client(env):
        conn = net.a.stack.connect(net.b.ip, 80)
        yield conn.established
        yield conn.send(100, payload="GET /index.html")

    env.run(until=env.process(client(env)))
    env.run()
    assert received == [("GET /index.html", 100)]


def test_data_transfer_multi_segment(env, net):
    """A payload larger than the MSS is segmented and reassembled."""
    received = []

    def serve(conn):
        def server(env):
            total = 0
            while total < 5000:
                payload, length = yield conn.receive()
                total += length
                received.append((payload, length))
        env.process(server(env))

    net.b.stack.listen(80, serve)

    def client(env):
        conn = net.a.stack.connect(net.b.ip, 80)
        yield conn.established
        yield conn.send(5000, payload="big-response")

    env.run(until=env.process(client(env)))
    env.run()
    assert sum(length for _p, length in received) == 5000
    # payload object rides only on the final segment
    assert [p for p, _l in received if p is not None] == ["big-response"]
    assert len(received) == 4  # ceil(5000 / 1460)


def test_bidirectional_transfer(env, net):
    log = []

    def serve(conn):
        def server(env):
            payload, length = yield conn.receive()
            log.append(("server-got", payload, length))
            yield conn.send(2000, payload="response")
        env.process(server(env))

    net.b.stack.listen(80, serve)

    def client(env):
        conn = net.a.stack.connect(net.b.ip, 80)
        yield conn.established
        yield conn.send(300, payload="request")
        got = 0
        while got < 2000:
            payload, length = yield conn.receive()
            got += length
            if payload is not None:
                log.append(("client-got", payload, got))

    env.run(until=env.process(client(env)))
    assert ("server-got", "request", 300) in log
    assert ("client-got", "response", 2000) in log


def test_graceful_close_four_way(env, net):
    server_conns = []

    def serve(conn):
        server_conns.append(conn)

        def server(env):
            chunk, _ = yield conn.receive()
            assert chunk is Connection.EOF
            yield conn.close()
        env.process(server(env))

    net.b.stack.listen(80, serve)

    def client(env):
        conn = net.a.stack.connect(net.b.ip, 80)
        yield conn.established
        yield conn.close()
        assert conn.state is TCPState.CLOSED
        return conn

    client_conn = env.run(until=env.process(client(env)))
    env.run()
    assert server_conns[0].state is TCPState.CLOSED
    assert client_conn.quad not in net.a.stack.connections
    assert server_conns[0].quad not in net.b.stack.connections


def test_send_after_close_rejected(env, net):
    net.b.stack.listen(80, lambda conn: None)

    def client(env):
        conn = net.a.stack.connect(net.b.ip, 80)
        yield conn.established
        conn.close()  # FIN sent; connection is now in FIN_WAIT_1
        with pytest.raises(ConnectionError_):
            conn.send(10)

    env.run(until=env.process(client(env)))


def test_connect_to_closed_port_resets(env, net):
    def client(env):
        conn = net.a.stack.connect(net.b.ip, 9999)
        with pytest.raises(ConnectionError_):
            yield conn.established

    env.run(until=env.process(client(env)))
    assert net.b.stack.rx_no_connection == 1


def test_abort_sends_rst(env, net):
    failures = []

    def serve(conn):
        def server(env):
            try:
                yield conn.receive()
            except ConnectionError_ as exc:
                failures.append(str(exc))
        env.process(server(env))

    net.b.stack.listen(80, serve)

    def client(env):
        conn = net.a.stack.connect(net.b.ip, 80)
        yield conn.established
        conn.abort()
        yield env.timeout(0.01)

    env.run(until=env.process(client(env)))
    env.run()
    assert failures and "reset" in failures[0]


def test_retransmission_recovers_from_loss(env):
    """With 20% loss on the client's uplink, data still arrives."""
    import random

    net = TwoHostNet(env, rto_s=0.05)
    net.a.nic.iface.loss_rate = 0.2
    net.a.nic.iface._loss_rng = random.Random(7)
    received = []

    def serve(conn):
        def server(env):
            total = 0
            while total < 4000:
                _p, length = yield conn.receive()
                total += length
            received.append(total)
        env.process(server(env))

    net.b.stack.listen(80, serve)

    def client(env):
        conn = net.a.stack.connect(net.b.ip, 80)
        yield conn.established
        yield conn.send(4000, payload="data")

    env.run(until=env.process(client(env)))
    env.run()
    assert received == [4000]


def test_retransmission_gives_up_eventually(env):
    net = TwoHostNet(env, rto_s=0.01, max_retries=3)
    net.a.nic.iface.loss_rate = 0.999999
    failures = []

    def client(env):
        conn = net.a.stack.connect(net.b.ip, 80)
        try:
            yield conn.established
        except ConnectionError_ as exc:
            failures.append(str(exc))

    net.b.stack.listen(80, lambda conn: None)
    env.run(until=env.process(client(env)))
    assert failures and "retransmission" in failures[0]


def test_out_of_order_segments_reassembled(env, net):
    """Deliver segments to the stack out of order; rcv_nxt still advances."""
    received = []

    def serve(conn):
        def server(env):
            total = 0
            while total < 3000:
                _p, length = yield conn.receive()
                total += length
            received.append(total)
        env.process(server(env))

    net.b.stack.listen(80, serve)

    # Establish, then handcraft out-of-order data injection.
    def client(env):
        conn = net.a.stack.connect(net.b.ip, 80)
        yield conn.established
        # Let the final handshake ACK reach the server before injecting.
        yield env.timeout(0.001)
        base = conn.snd_nxt
        stack = net.a.stack
        from repro.net import TCPFlags

        seg2 = stack._make_packet(
            conn.quad, flags=TCPFlags.NONE, seq=seq_add(base, 1500),
            ack=conn.rcv_nxt, payload=None, payload_len=1500,
        )
        seg1 = stack._make_packet(
            conn.quad, flags=TCPFlags.NONE, seq=base, ack=conn.rcv_nxt,
            payload=None, payload_len=1500,
        )
        net.b.stack.receive(seg2)  # arrives first: out of order
        net.b.stack.receive(seg1)
        yield env.timeout(0.01)

    env.run(until=env.process(client(env)))
    env.run()
    assert received == [3000]


def test_ephemeral_ports_unique(env, net):
    ports = {net.a.stack.ephemeral_port() for _ in range(100)}
    assert len(ports) == 100


def test_listen_twice_rejected(env, net):
    net.b.stack.listen(80, lambda conn: None)
    with pytest.raises(RuntimeError):
        net.b.stack.listen(80, lambda conn: None)


def test_connection_byte_counters(env, net):
    def serve(conn):
        def server(env):
            yield conn.receive()
            yield conn.send(500, payload="resp")
        env.process(server(env))

    net.b.stack.listen(80, serve)

    def client(env):
        conn = net.a.stack.connect(net.b.ip, 80)
        yield conn.established
        yield conn.send(100, payload="req")
        yield conn.receive()
        return conn

    conn = env.run(until=env.process(client(env)))
    env.run()
    assert conn.bytes_sent == 100
    assert conn.bytes_received == 500
