"""The adversarial workload suite: shapes, determinism, misbehavers."""

import pytest

from repro.workload.adversarial import (
    SCENARIOS,
    PopularityShiftWorkload,
    build_trace,
    diurnal_profiles,
    flash_crowd_profiles,
    misbehaving_profiles,
    site_files_for,
)

RATES = {"site1": 40.0, "site2": 40.0, "site3": 40.0}


def rate_of(records, host, start, end):
    count = sum(1 for r in records if r.host == host and start <= r.at_s < end)
    return count / (end - start)


def test_every_scenario_builds_a_sorted_trace():
    for scenario in SCENARIOS:
        records, misbehavers = build_trace(scenario, RATES, duration_s=4.0, seed=1)
        assert records, scenario
        assert all(
            a.at_s <= b.at_s for a, b in zip(records, records[1:])
        ), scenario
        assert {r.host for r in records} <= set(RATES)
        if scenario == "misbehave":
            assert misbehavers == ("site3",)
        else:
            assert misbehavers == ()


def test_build_trace_rejects_unknown_scenario():
    with pytest.raises(ValueError):
        build_trace("chaos", RATES, duration_s=1.0)


def test_traces_are_seed_deterministic():
    for scenario in SCENARIOS:
        a, _ = build_trace(scenario, RATES, duration_s=5.0, seed=7)
        b, _ = build_trace(scenario, RATES, duration_s=5.0, seed=7)
        assert a == b, scenario
        c, _ = build_trace(scenario, RATES, duration_s=5.0, seed=8)
        assert a != c, scenario


def test_misbehaver_offers_the_overdrive_multiple():
    records, misbehavers = build_trace(
        "misbehave", RATES, duration_s=30.0, seed=2, misbehave_overdrive=4.0
    )
    assert misbehavers == ("site3",)
    conforming = rate_of(records, "site1", 0.0, 30.0)
    hostile = rate_of(records, "site3", 0.0, 30.0)
    assert hostile / conforming == pytest.approx(4.0, rel=0.2)


def test_misbehaving_profiles_validate():
    with pytest.raises(ValueError):
        misbehaving_profiles(RATES, ["ghost"])
    with pytest.raises(ValueError):
        misbehaving_profiles(RATES, ["site1"], overdrive=0.5)


def test_diurnal_wave_oscillates_around_the_mean():
    profiles = diurnal_profiles(RATES, amplitude_fraction=0.5, period_s=20.0)
    profile = profiles["site1"]
    assert profile.rate_fn(5.0) == pytest.approx(60.0)  # peak of the sine
    assert profile.rate_fn(15.0) == pytest.approx(20.0)  # trough
    assert profile.peak_rate == pytest.approx(60.0)
    with pytest.raises(ValueError):
        diurnal_profiles(RATES, amplitude_fraction=2.0)


def test_flash_crowd_spikes_only_the_crowd_host():
    records, _ = build_trace(
        "flash_crowd", RATES, duration_s=20.0, seed=3, flash_peak_multiplier=6.0
    )
    # The crowd host (last) spikes during the hold window [7, 12]; the
    # others stay near their constant rate.
    assert rate_of(records, "site3", 8.0, 12.0) > 3 * rate_of(
        records, "site3", 0.0, 4.0
    )
    assert rate_of(records, "site1", 8.0, 12.0) == pytest.approx(40.0, rel=0.5)
    with pytest.raises(ValueError):
        flash_crowd_profiles(RATES, crowd_host="ghost")


def test_popularity_shift_rotates_the_hot_set():
    workload = PopularityShiftWorkload(
        {"site1": 200.0}, duration_s=20.0, files_per_site=16, seed=4
    )
    records = workload.generate()
    before = [r.path for r in records if r.at_s < 10.0]
    after = [r.path for r in records if r.at_s >= 10.0]
    # Zipf head: rank 0 dominates before the shift; afterwards the same
    # draws map to the rotated file, so the old head goes cold.
    hot_before = max(set(before), key=before.count)
    assert hot_before == "/page0000.html"
    hot_after = max(set(after), key=after.count)
    assert hot_after == "/page0008.html"  # rotated by files//2
    assert before.count(hot_before) / len(before) > 3 * after.count(
        hot_before
    ) / len(after)


def test_popularity_shift_validation():
    with pytest.raises(ValueError):
        PopularityShiftWorkload(RATES, duration_s=0.0)
    with pytest.raises(ValueError):
        PopularityShiftWorkload(RATES, duration_s=1.0, files_per_site=0)
    with pytest.raises(ValueError):
        PopularityShiftWorkload(RATES, duration_s=1.0, alpha=0.0)


def test_site_files_match_the_trace_paths():
    trees = site_files_for(["site1"], files_per_site=4, file_bytes=1234)
    assert trees["site1"] == {
        "page0000.html": 1234,
        "page0001.html": 1234,
        "page0002.html": 1234,
        "page0003.html": 1234,
    }
    workload = PopularityShiftWorkload(
        {"site1": 50.0}, duration_s=2.0, files_per_site=4
    )
    files = workload.site_files("site1")
    for record in workload.generate():
        assert record.path.lstrip("/") in files
