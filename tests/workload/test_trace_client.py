"""Tests for trace file I/O and the open-loop client fleet."""

import pytest

from repro.workload import SyntheticWorkload, load_trace, save_trace
from repro.workload.request import RequestRecord


def test_trace_roundtrip(tmp_path):
    workload = SyntheticWorkload(rates={"a": 25.0, "b": 10.0}, duration_s=2.0)
    records = workload.generate()
    path = tmp_path / "trace.tsv"
    written = save_trace(records, path)
    assert written == len(records)
    loaded = load_trace(path)
    assert len(loaded) == len(records)
    for original, back in zip(records, loaded):
        assert back.at_s == pytest.approx(original.at_s, abs=1e-6)
        assert back.host == original.host
        assert back.path == original.path
        assert back.size_bytes == original.size_bytes


def test_trace_skips_comments_and_blank_lines(tmp_path):
    path = tmp_path / "trace.tsv"
    path.write_text("# a comment\n\n1.5\thost\t/x\t100\t0.0\n")
    records = load_trace(path)
    assert len(records) == 1
    assert records[0].host == "host"


def test_trace_rejects_malformed_lines(tmp_path):
    path = tmp_path / "trace.tsv"
    path.write_text("not\tenough\tfields\n")
    with pytest.raises(ValueError):
        load_trace(path)


def test_client_fleet_requires_stacks():
    from repro.net import IPAddress
    from repro.sim import Environment
    from repro.workload import ClientFleet

    with pytest.raises(ValueError):
        ClientFleet(Environment(), [], IPAddress("10.0.0.100"))


def test_client_fleet_round_robins_stacks():
    """Records are spread across client hosts in rotation."""
    from repro.core import GageCluster, Subscriber
    from repro.sim import Environment

    env = Environment()
    workload = SyntheticWorkload(rates={"a": 20.0}, duration_s=1.0, file_bytes=2000)
    cluster = GageCluster(
        env,
        [Subscriber("a", 100)],
        {"a": workload.site_files("a")},
        num_rpns=1,
        fidelity="packet",
        num_clients=2,
    )
    cluster.load_trace(workload.generate())
    cluster.run(2.0)
    per_stack = [len(s._conns) + s._next_port - 10000 for s in cluster.fleet.stacks]
    # Each stack issued about half of the 19 requests.
    assert abs(per_stack[0] - per_stack[1]) <= 1
    assert cluster.fleet.stats.completed == cluster.fleet.stats.issued


def test_client_stats_latency_math():
    from repro.workload.client import ClientStats

    stats = ClientStats()
    assert stats.mean_latency_s == 0.0
    stats.latencies_s.extend([0.1, 0.3])
    assert stats.mean_latency_s == pytest.approx(0.2)
    stats.completed = 10
    assert stats.completed_rate(5.0) == pytest.approx(2.0)
    assert stats.completed_rate(0.0) == 0.0


def test_client_fleet_timeout_aborts_unanswered_connects():
    """A SYN into the void times out and counts as failed."""
    from repro.net import IPAddress, MACAddress, NIC, Switch
    from repro.net.tcp import HostStack
    from repro.sim import Environment
    from repro.workload import ClientFleet

    env = Environment()
    switch = Switch(env, ports=4)
    nic = NIC(env, MACAddress("02:00:00:00:00:01"), name="c0")
    switch.attach(nic.iface)
    stack = HostStack(env, IPAddress("10.0.0.1"), nic, retransmit=False)
    fleet = ClientFleet(
        env, [stack], IPAddress("10.0.0.99"), request_timeout_s=0.5
    )
    fleet.run_trace([RequestRecord(0.1, "a", "/x", 100)])
    env.run(until=2.0)
    assert fleet.stats.failed == 1
    assert fleet.stats.completed == 0
