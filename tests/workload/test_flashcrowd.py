"""Tests for time-varying load profiles."""

import pytest

from repro.workload.flashcrowd import LoadProfile, ProfiledWorkload


def test_constant_profile():
    profile = LoadProfile.constant(50.0)
    assert profile.rate_at(0.0) == 50.0
    assert profile.rate_at(100.0) == 50.0
    assert profile.peak_rate == 50.0
    with pytest.raises(ValueError):
        LoadProfile.constant(-1)


def test_flash_crowd_phases():
    profile = LoadProfile.flash_crowd(
        base_rate=10.0, peak_rate=110.0, start_s=5.0, ramp_s=2.0, hold_s=3.0, decay_s=4.0
    )
    assert profile.rate_at(0.0) == 10.0
    assert profile.rate_at(4.99) == 10.0
    assert profile.rate_at(6.0) == pytest.approx(60.0)  # mid-ramp
    assert profile.rate_at(8.0) == 110.0  # holding
    assert profile.rate_at(12.0) == pytest.approx(60.0)  # mid-decay
    assert profile.rate_at(20.0) == 10.0  # back to base
    with pytest.raises(ValueError):
        LoadProfile.flash_crowd(10, 5, 0, 1, 1, 1)
    with pytest.raises(ValueError):
        LoadProfile.flash_crowd(10, 20, 0, -1, 1, 1)


def test_diurnal_profile():
    profile = LoadProfile.diurnal(mean_rate=100.0, amplitude=50.0, period_s=20.0)
    assert profile.rate_at(0.0) == pytest.approx(100.0)
    assert profile.rate_at(5.0) == pytest.approx(150.0)  # quarter period
    assert profile.rate_at(15.0) == pytest.approx(50.0)
    assert profile.peak_rate == 150.0
    with pytest.raises(ValueError):
        LoadProfile.diurnal(100, 200, 20)
    with pytest.raises(ValueError):
        LoadProfile.diurnal(100, 50, 0)


def test_profiled_workload_matches_rate_windows():
    profile = LoadProfile.flash_crowd(
        base_rate=20.0, peak_rate=200.0, start_s=10.0, ramp_s=0.0, hold_s=10.0, decay_s=0.0
    )
    workload = ProfiledWorkload({"a": profile}, duration_s=30.0, seed=1)
    records = workload.generate()
    before = sum(1 for r in records if r.at_s < 10.0)
    during = sum(1 for r in records if 10.0 <= r.at_s < 20.0)
    after = sum(1 for r in records if r.at_s >= 20.0)
    assert before == pytest.approx(200, rel=0.25)
    assert during == pytest.approx(2000, rel=0.1)
    assert after == pytest.approx(200, rel=0.25)
    # Sorted and referencing real files.
    times = [r.at_s for r in records]
    assert times == sorted(times)
    files = workload.site_files("a")
    assert all(r.path.lstrip("/") in files for r in records[:50])


def test_profiled_workload_deterministic():
    profile = LoadProfile.constant(100.0)
    a = ProfiledWorkload({"a": profile}, duration_s=5.0, seed=9).generate()
    b = ProfiledWorkload({"a": profile}, duration_s=5.0, seed=9).generate()
    assert [r.at_s for r in a] == [r.at_s for r in b]


def test_profiled_workload_validation():
    with pytest.raises(ValueError):
        ProfiledWorkload({}, duration_s=0)
    with pytest.raises(ValueError):
        ProfiledWorkload({}, duration_s=1, files_per_site=0)
    empty = ProfiledWorkload({"a": LoadProfile.constant(0.0)}, duration_s=1)
    assert empty.generate() == []


def test_flash_crowd_against_cluster():
    """End-to-end: the victim's flash crowd never dents the neighbour."""
    from repro.core import GageCluster, Subscriber
    from repro.sim import Environment

    env = Environment()
    profiles = {
        "steady": LoadProfile.constant(90.0),
        "victim": LoadProfile.flash_crowd(
            base_rate=20.0, peak_rate=400.0, start_s=4.0,
            ramp_s=1.0, hold_s=4.0, decay_s=1.0,
        ),
    }
    workload = ProfiledWorkload(profiles, duration_s=12.0, seed=3)
    subs = [
        Subscriber("steady", 100, queue_capacity=128),
        Subscriber("victim", 50, queue_capacity=128),
    ]
    cluster = GageCluster(
        env, subs, {n: workload.site_files(n) for n in profiles}, num_rpns=2
    )
    cluster.prewarm_caches()
    cluster.load_trace(workload.generate())
    cluster.run(12.0)
    # During the crowd, steady still gets its full offered load...
    steady = cluster.service_report("steady", 5.0, 9.0)
    assert steady.served_rate == pytest.approx(90.0, rel=0.12)
    # ...while the victim is throttled to reservation + spare and drops.
    victim = cluster.service_report("victim", 5.0, 9.0)
    assert victim.served_rate < 180.0
    assert victim.dropped > 0
