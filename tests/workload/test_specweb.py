"""Tests for the SPECWeb99-shaped workload generator."""

import pytest

from repro.workload import SpecWeb99Config, SpecWeb99Workload
from repro.workload.specweb import FILES_PER_CLASS, zipf_weights


def test_zipf_weights_normalized_and_decreasing():
    weights = zipf_weights(9)
    assert sum(weights) == pytest.approx(1.0)
    assert all(a > b for a, b in zip(weights, weights[1:]))
    with pytest.raises(ValueError):
        zipf_weights(0)


def test_file_sizes_match_specweb_classes():
    config = SpecWeb99Config()
    # class 0: 0.1-0.9 KB, class 3: 100-900 KB.
    assert config.file_size(0, 0) == pytest.approx(102, abs=1)
    assert config.file_size(0, 8) == pytest.approx(921, abs=1)
    assert config.file_size(3, 0) == pytest.approx(102_400, abs=1)
    assert config.file_size(3, 8) == pytest.approx(921_600, abs=1)
    with pytest.raises(ValueError):
        config.file_size(4, 0)
    with pytest.raises(ValueError):
        config.file_size(0, 9)


def test_config_validation():
    with pytest.raises(ValueError):
        SpecWeb99Config(directories=0)
    with pytest.raises(ValueError):
        SpecWeb99Config(class_probabilities=(0.5, 0.5, 0.5, 0.5))


def test_site_files_structure():
    workload = SpecWeb99Workload(SpecWeb99Config(directories=3))
    files = workload.site_files()
    assert len(files) == 3 * 4 * FILES_PER_CLASS
    assert "dir00000/class0_0" in files
    assert files["dir00002/class3_8"] == SpecWeb99Config.file_size(3, 8)


def test_class_mix_approximates_probabilities():
    workload = SpecWeb99Workload(SpecWeb99Config(directories=5), seed=1)
    records = workload.generate("site", rate=1000.0, duration_s=10.0)
    counts = [0, 0, 0, 0]
    for record in records:
        class_index = int(record.path.split("class")[1][0])
        counts[class_index] += 1
    total = sum(counts)
    assert counts[0] / total == pytest.approx(0.35, abs=0.03)
    assert counts[1] / total == pytest.approx(0.50, abs=0.03)
    assert counts[2] / total == pytest.approx(0.14, abs=0.02)
    assert counts[3] / total == pytest.approx(0.01, abs=0.01)


def test_requests_reference_existing_files():
    workload = SpecWeb99Workload(SpecWeb99Config(directories=2), seed=0)
    files = workload.site_files()
    for record in workload.generate("site", 100.0, 1.0):
        assert record.path.lstrip("/") in files
        assert record.size_bytes == files[record.path.lstrip("/")]


def test_mean_request_bytes_consistent_with_sample():
    workload = SpecWeb99Workload(SpecWeb99Config(directories=5), seed=2)
    analytic = workload.mean_request_bytes()
    records = workload.generate("site", rate=3000.0, duration_s=10.0)
    empirical = sum(r.size_bytes for r in records) / len(records)
    assert empirical == pytest.approx(analytic, rel=0.15)


def test_generation_deterministic_per_seed():
    a = SpecWeb99Workload(seed=7).generate("s", 100.0, 2.0)
    b = SpecWeb99Workload(seed=7).generate("s", 100.0, 2.0)
    assert [(r.at_s, r.path) for r in a] == [(r.at_s, r.path) for r in b]


def test_generate_validation():
    workload = SpecWeb99Workload()
    with pytest.raises(ValueError):
        workload.generate("s", -1.0, 1.0)
    with pytest.raises(ValueError):
        workload.generate("s", 1.0, 0.0)
    with pytest.raises(ValueError):
        workload.generate("s", 1.0, 1.0, arrival="bogus")
    assert workload.generate("s", 0.0, 1.0) == []
