"""Tests for the synthetic constant-rate workload generator."""

import pytest

from repro.workload import SyntheticWorkload
from repro.workload.request import CostModel, WebRequest


def test_constant_rate_spacing():
    workload = SyntheticWorkload(rates={"a": 10.0}, duration_s=2.0)
    records = workload.generate()
    assert len(records) == 19  # first at 0.1, last at 1.9
    gaps = [b.at_s - a.at_s for a, b in zip(records, records[1:])]
    assert all(gap == pytest.approx(0.1) for gap in gaps)


def test_multiple_hosts_merged_sorted():
    workload = SyntheticWorkload(rates={"a": 5.0, "b": 20.0}, duration_s=2.0)
    records = workload.generate()
    times = [r.at_s for r in records]
    assert times == sorted(times)
    hosts = {r.host for r in records}
    assert hosts == {"a", "b"}
    a_count = sum(1 for r in records if r.host == "a")
    b_count = sum(1 for r in records if r.host == "b")
    assert b_count == pytest.approx(4 * a_count, abs=4)


def test_poisson_arrivals_reproducible():
    a = SyntheticWorkload(rates={"a": 50.0}, duration_s=5.0, arrival="poisson", seed=3)
    b = SyntheticWorkload(rates={"a": 50.0}, duration_s=5.0, arrival="poisson", seed=3)
    assert [r.at_s for r in a.generate()] == [r.at_s for r in b.generate()]
    c = SyntheticWorkload(rates={"a": 50.0}, duration_s=5.0, arrival="poisson", seed=4)
    assert [r.at_s for r in a.generate()] != [r.at_s for r in c.generate()]


def test_poisson_rate_approximately_met():
    workload = SyntheticWorkload(
        rates={"a": 100.0}, duration_s=20.0, arrival="poisson", seed=1
    )
    records = workload.generate()
    assert len(records) == pytest.approx(2000, rel=0.1)


def test_paths_cycle_over_file_set():
    workload = SyntheticWorkload(rates={"a": 10.0}, duration_s=1.0, files_per_site=3)
    records = workload.generate()
    paths = [r.path for r in records[:6]]
    assert paths == [
        "/page0000.html", "/page0001.html", "/page0002.html",
        "/page0000.html", "/page0001.html", "/page0002.html",
    ]


def test_site_files_match_requests():
    workload = SyntheticWorkload(rates={"a": 10.0}, duration_s=1.0, files_per_site=4)
    files = workload.site_files("a")
    assert len(files) == 4
    for record in workload.generate():
        assert record.path.lstrip("/") in files


def test_zero_rate_host():
    workload = SyntheticWorkload(rates={"a": 0.0}, duration_s=5.0)
    assert workload.generate() == []


def test_validation():
    with pytest.raises(ValueError):
        SyntheticWorkload(rates={"a": 1.0}, duration_s=0)
    with pytest.raises(ValueError):
        SyntheticWorkload(rates={"a": -1.0}, duration_s=1)
    with pytest.raises(ValueError):
        SyntheticWorkload(rates={"a": 1.0}, duration_s=1, arrival="bursty")
    with pytest.raises(ValueError):
        SyntheticWorkload(rates={"a": 1.0}, duration_s=1, files_per_site=0)
    with pytest.raises(ValueError):
        SyntheticWorkload(rates={"a": 1.0}, duration_s=1, file_bytes=-1)


def test_cost_model_generic_request_identity():
    """A 2000-byte cache-missing page costs exactly one generic request."""
    model = CostModel()
    request = WebRequest("a", "/x", 2000)
    assert model.cpu_seconds(request) == pytest.approx(0.010, rel=0.01)
    assert model.disk_seconds(request) == pytest.approx(0.010, rel=0.02)


def test_cost_model_cpu_extra():
    model = CostModel()
    plain = WebRequest("a", "/x", 2000)
    cgi = WebRequest("a", "/cgi", 2000, cpu_extra_s=0.050)
    assert model.cpu_seconds(cgi) == pytest.approx(model.cpu_seconds(plain) + 0.050)


def test_request_record_roundtrip():
    workload = SyntheticWorkload(rates={"a": 10.0}, duration_s=1.0)
    record = workload.generate()[0]
    request = record.to_request()
    assert request.host == record.host
    assert request.size_bytes == record.size_bytes
    assert request.issued_at == record.at_s
