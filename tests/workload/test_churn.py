"""Tests for the join/leave churn workload generator."""

import pytest

from repro.workload import ChurnEvent, ChurnWorkload
from repro.workload.churn import JOIN, LEAVE


def workload(**overrides):
    params = dict(
        initial=10, joins_per_s=5.0, leaves_per_s=3.0, duration_s=20.0, seed=42
    )
    params.update(overrides)
    return ChurnWorkload(**params)


def test_initial_population_is_deterministic():
    subs = workload().initial_subscribers()
    assert len(subs) == 10
    assert subs[0].name == "sub000000"
    assert subs[9].name == "sub000009"
    assert all(s.reservation_grps == 1.0 for s in subs)


def test_generate_is_seed_deterministic():
    first = workload(seed=7).generate()
    second = workload(seed=7).generate()
    assert first == second
    assert first != workload(seed=8).generate()


def test_events_sorted_and_within_duration():
    events = workload().generate()
    assert events
    times = [e.at_s for e in events]
    assert times == sorted(times)
    assert all(0 <= t < 20.0 for t in times)


def test_replay_in_order_is_always_applicable():
    """Every leave names a subscriber that is live at that moment."""
    events = workload().generate()
    live = {s.name for s in workload().initial_subscribers()}
    for event in events:
        if event.kind == JOIN:
            assert event.name not in live
            assert event.subscriber is not None
            assert event.subscriber.name == event.name
            live.add(event.name)
        else:
            assert event.kind == LEAVE
            assert event.subscriber is None
            assert event.name in live
            live.remove(event.name)


def test_protect_initial_pins_time_zero_population():
    initial = {s.name for s in workload().initial_subscribers()}
    leaves = {e.name for e in workload().generate() if e.kind == LEAVE}
    assert not leaves & initial


def test_unprotected_initial_population_can_leave():
    wl = workload(
        protect_initial=False, joins_per_s=0.0, leaves_per_s=5.0, seed=3
    )
    leaves = {e.name for e in wl.generate() if e.kind == LEAVE}
    initial = {s.name for s in wl.initial_subscribers()}
    assert leaves and leaves <= initial


def test_leaves_without_churnable_targets_are_dropped():
    wl = workload(joins_per_s=0.0, leaves_per_s=10.0)  # protect_initial=True
    assert wl.generate() == []


def test_join_names_never_collide_with_initial():
    events = workload().generate()
    joined = {e.name for e in events if e.kind == JOIN}
    initial = {s.name for s in workload().initial_subscribers()}
    assert not joined & initial
    assert len(joined) == len([e for e in events if e.kind == JOIN])


def test_validation():
    with pytest.raises(ValueError):
        workload(initial=-1)
    with pytest.raises(ValueError):
        workload(joins_per_s=-0.1)
    with pytest.raises(ValueError):
        workload(duration_s=0.0)
    with pytest.raises(ValueError):
        workload(reservation_grps=-1.0)


def test_rates_shape_the_stream():
    busy = workload(joins_per_s=50.0, duration_s=10.0)
    quiet = workload(joins_per_s=1.0, duration_s=10.0)
    busy_joins = sum(1 for e in busy.generate() if e.kind == JOIN)
    quiet_joins = sum(1 for e in quiet.generate() if e.kind == JOIN)
    assert busy_joins > 5 * quiet_joins
