"""The seeded topology generator: mixes, determinism, reproduction."""

import pytest

from repro.core.topology import LinkSpec
from repro.workload.topology import (
    DEFAULT_NODE_CLASSES,
    NodeClass,
    TopologyGenerator,
    _largest_remainder,
)


def test_largest_remainder_apportionment():
    assert _largest_remainder([1.0], 5) == [5]
    assert _largest_remainder([25.0, 50.0, 25.0], 8) == [2, 4, 2]
    # 1/3 each of 10: quotas 3.33.. -> 3+3+3 with one remainder seat,
    # ties broken by position.
    assert _largest_remainder([1.0, 1.0, 1.0], 10) == [4, 3, 3]
    assert sum(_largest_remainder([0.1, 0.7, 0.2], 7)) == 7


def test_node_class_validation():
    with pytest.raises(ValueError):
        NodeClass("x", cpu_speed=0.0)
    with pytest.raises(ValueError):
        NodeClass("", cpu_speed=1.0)


def test_default_generation_is_homogeneous():
    topo = TopologyGenerator().generate(seed=1)
    assert topo.num_rpns == 8
    assert topo.is_homogeneous()
    assert len(topo.switches) == 1
    for node in topo.nodes:
        assert node.kind == "standard"
        assert node.link == LinkSpec()


def test_mix_respects_percentages():
    gen = TopologyGenerator()
    gen.set_node_statistics(
        num_rpns=8,
        node_type_percentage={"fast": 25, "standard": 50, "slow": 25},
        classes={cls.kind: cls for cls in DEFAULT_NODE_CLASSES},
    )
    topo = gen.generate(seed=3)
    kinds = [node.kind for node in topo.nodes]
    assert kinds.count("fast") == 2
    assert kinds.count("standard") == 4
    assert kinds.count("slow") == 2
    for node in topo.nodes:
        if node.kind == "fast":
            assert node.cpu_speed == 2.0
        elif node.kind == "slow":
            assert node.cpu_speed == 0.5


def test_unknown_mix_class_raises():
    gen = TopologyGenerator()
    with pytest.raises(ValueError):
        gen.set_node_statistics(num_rpns=4, node_type_percentage={"warp": 100})


def test_seed_determinism_and_divergence():
    gen = TopologyGenerator()
    gen.set_node_statistics(
        num_rpns=16, node_type_percentage={"fast": 50, "slow": 50}
    )
    gen.set_link_statistics(
        avg_bandwidth_bps=100e6, var_bandwidth_bps=20e6, slow_link_fraction=0.25
    )
    assert gen.generate(seed=11) == gen.generate(seed=11)
    assert gen.generate(seed=11) != gen.generate(seed=12)


def test_generate_to_file_is_byte_for_byte(tmp_path):
    gen = TopologyGenerator()
    gen.set_node_statistics(num_rpns=12, node_type_percentage={"fast": 1, "slow": 2})
    gen.set_link_statistics(
        avg_bandwidth_bps=100e6,
        var_bandwidth_bps=25e6,
        var_latency_s=5e-6,
        slow_link_fraction=0.25,
    )
    gen.set_fabric(num_switches=3, uplink=LinkSpec(bandwidth_bps=1e9))
    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    topo_a = gen.generate_to_file(first, seed=42)
    topo_b = gen.generate_to_file(second, seed=42)
    assert topo_a == topo_b
    assert first.read_bytes() == second.read_bytes()


def test_slow_links_and_fabric_striping():
    gen = TopologyGenerator()
    gen.set_node_statistics(num_rpns=8)
    gen.set_link_statistics(
        avg_bandwidth_bps=100e6,
        slow_link_fraction=0.25,
        slow_link_bandwidth_bps=10e6,
        slow_link_latency_s=1e-4,
    )
    gen.set_fabric(num_switches=2, uplink=LinkSpec(bandwidth_bps=1e9))
    topo = gen.generate(seed=5)
    slow = [n for n in topo.nodes if n.link.bandwidth_bps == 10e6]
    assert len(slow) == 2  # 25% of 8
    assert len(topo.switches) == 2
    assert topo.switches[1].uplink == LinkSpec(bandwidth_bps=1e9)
    # Nodes are striped round-robin across the fabric.
    assert [n.switch for n in topo.nodes] == [0, 1, 0, 1, 0, 1, 0, 1]


def test_generated_links_are_drawn_not_negative():
    gen = TopologyGenerator()
    gen.set_link_statistics(avg_bandwidth_bps=5e6, var_bandwidth_bps=50e6)
    topo = gen.generate(seed=9)
    for node in topo.nodes:
        assert node.link.bandwidth_bps >= 1e6
        assert node.link.latency_s >= 0.0
