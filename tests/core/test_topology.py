"""The declarative cluster topology: validation, capacity, round-trip."""

import pytest

from repro.core.grps import GENERIC_REQUEST, ResourceVector
from repro.core.simulation import default_rpn_capacity
from repro.core.topology import (
    ClusterTopology,
    LinkSpec,
    NodeSpec,
    SwitchSpec,
    grps_capacity,
)


def test_grps_capacity_is_the_bottleneck():
    # 1 CPU-second/s sustains 100 generic requests; a link worth only
    # 50 generic requests of bytes is the bottleneck.
    capacity = ResourceVector(cpu_s=1.0, disk_s=1.0, net_bytes=100_000.0)
    assert grps_capacity(capacity) == pytest.approx(50.0)
    assert grps_capacity(ResourceVector.ZERO) == 0.0
    # The dual relationship: usage is the max-norm, capacity the min.
    assert capacity.in_generic_requests(GENERIC_REQUEST) == pytest.approx(100.0)


def test_default_node_capacity_matches_historic_default():
    for speed in (0.5, 1.0, 2.0):
        node = NodeSpec(cpu_speed=speed)
        assert node.capacity_per_s() == default_rpn_capacity(speed)


def test_capacity_override_wins():
    node = NodeSpec(cpu_speed=2.0, capacity_grps=40.0)
    assert grps_capacity(node.capacity_per_s()) == pytest.approx(40.0)


def test_link_capacity_feeds_the_net_dimension():
    node = NodeSpec(link=LinkSpec(bandwidth_bps=8e6))
    assert node.capacity_per_s().net_bytes == pytest.approx(1e6)


def test_spec_validation():
    with pytest.raises(ValueError):
        LinkSpec(bandwidth_bps=0.0)
    with pytest.raises(ValueError):
        LinkSpec(latency_s=-1.0)
    with pytest.raises(ValueError):
        NodeSpec(cpu_speed=0.0)
    with pytest.raises(ValueError):
        NodeSpec(kind="")
    with pytest.raises(ValueError):
        NodeSpec(capacity_grps=-1.0)
    with pytest.raises(ValueError):
        NodeSpec(switch=-1)
    with pytest.raises(ValueError):
        SwitchSpec(ports=0)
    with pytest.raises(ValueError):
        ClusterTopology(nodes=())
    with pytest.raises(ValueError):
        # Node references switch 1 but only one switch exists.
        ClusterTopology(nodes=(NodeSpec(switch=1),))


def test_homogeneous_factory_is_degenerate():
    topo = ClusterTopology.homogeneous(4)
    assert topo.num_rpns == 4
    assert topo.is_homogeneous()
    assert len(topo.switches) == 1
    assert topo.nodes_on_switch(0) == [0, 1, 2, 3]
    assert topo.total_capacity_grps() == pytest.approx(400.0)
    for capacity in topo.capacities():
        assert capacity == default_rpn_capacity(1.0)


def test_mixed_topology_is_not_homogeneous():
    topo = ClusterTopology(
        nodes=(NodeSpec(cpu_speed=2.0), NodeSpec(cpu_speed=0.5))
    )
    assert not topo.is_homogeneous()


def test_json_round_trip(tmp_path):
    topo = ClusterTopology(
        nodes=(
            NodeSpec(kind="fast", cpu_speed=2.0, cache_bytes=1 << 26),
            NodeSpec(
                kind="slow",
                cpu_speed=0.5,
                disk_seek_s=0.02,
                disk_transfer_bps=1e8,
                link=LinkSpec(bandwidth_bps=10e6, latency_s=1e-4),
                switch=1,
                capacity_grps=25.0,
            ),
        ),
        switches=(
            SwitchSpec(ports=32),
            SwitchSpec(uplink=LinkSpec(bandwidth_bps=1e9, latency_s=5e-6)),
        ),
    )
    assert ClusterTopology.from_json(topo.to_json()) == topo
    path = tmp_path / "topo.json"
    topo.save(path)
    assert ClusterTopology.load(path) == topo
    # The canonical form is stable: serializing the loaded copy is
    # byte-identical.
    assert ClusterTopology.load(path).to_json() == topo.to_json()


def test_from_json_rejects_unknown_format():
    topo = ClusterTopology.homogeneous(1)
    data = topo.to_json().replace('"format": 1', '"format": 99')
    with pytest.raises(ValueError):
        ClusterTopology.from_json(data)
