"""Tests for the interned subscriber-id table."""

import pytest

from repro.core.subscriber import SubscriberTable


def test_intern_assigns_dense_sequential_ids():
    table = SubscriberTable()
    assert [table.intern("a"), table.intern("b"), table.intern("c")] == [0, 1, 2]
    assert len(table) == 3
    assert table.capacity() == 3


def test_intern_is_idempotent_per_name():
    table = SubscriberTable()
    first = table.intern("a")
    assert table.intern("a") == first
    assert len(table) == 1


def test_id_and_name_round_trip():
    table = SubscriberTable()
    sid = table.intern("site-42")
    assert table.id_of("site-42") == sid
    assert table.get_id("site-42") == sid
    assert table.name_of(sid) == "site-42"
    assert "site-42" in table


def test_unknown_lookups():
    table = SubscriberTable()
    table.intern("a")
    assert table.get_id("nope") is None
    with pytest.raises(KeyError):
        table.id_of("nope")
    with pytest.raises(KeyError):
        table.name_of(99)


def test_release_frees_slot_for_reuse():
    table = SubscriberTable()
    table.intern("a")
    sid_b = table.intern("b")
    table.intern("c")
    assert table.release("b") == sid_b
    assert "b" not in table
    assert table.get_id("b") is None
    with pytest.raises(KeyError):
        table.name_of(sid_b)
    # LIFO reuse: the freed slot goes to the next registration, so the
    # id space stays dense under churn instead of growing unboundedly.
    assert table.intern("d") == sid_b
    assert table.capacity() == 3


def test_release_is_idempotent():
    table = SubscriberTable()
    table.intern("a")
    assert table.release("a") == 0
    assert table.release("a") is None
    assert table.release("never-registered") is None


def test_ids_and_names_iterate_live_entries_only():
    table = SubscriberTable()
    table.intern("a")
    table.intern("b")
    table.intern("c")
    table.release("b")
    assert sorted(table.names()) == ["a", "c"]
    assert sorted(table.ids()) == [0, 2]


def test_scale_many_names():
    table = SubscriberTable()
    names = ["sub{:05d}".format(i) for i in range(10_000)]
    ids = [table.intern(name) for name in names]
    assert ids == list(range(10_000))
    assert table.name_of(9_999) == "sub09999"
