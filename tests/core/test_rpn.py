"""Unit tests for the local service manager and accounting agent."""

import pytest

from repro.cluster import Machine, WebServer
from repro.core import LocalServiceManager, RPNAccountingAgent
from repro.core.control import DispatchOrder
from repro.net import IPAddress, MACAddress, NIC, Packet, Switch, TCPFlags
from repro.net.conn import Quadruple
from repro.net.tcp import HostStack, TCPState
from repro.sim import Environment
from repro.workload import WebRequest

CLIENT_IP = IPAddress("10.0.0.1")
CLIENT_MAC = MACAddress("02:00:00:00:00:01")
CLUSTER_IP = IPAddress("10.0.0.100")
RPN_IP = IPAddress("10.0.1.1")
RPN_MAC = MACAddress("02:00:00:00:01:01")


def build_rpn(env):
    """One RPN with LSM + webserver, plus a client-side capture host.

    The capture host owns the client MAC and behaves as a dumb client:
    it records every frame and acknowledges in-order data/FIN segments,
    so server-side sends complete as they would against a real client.
    """
    switch = Switch(env, ports=4)
    machine = Machine(env, "rpn0")
    nic = machine.add_nic(RPN_MAC)
    switch.attach(nic.iface)
    stack = HostStack(env, RPN_IP, nic)
    lsm = LocalServiceManager(env, stack, RPN_IP, RPN_MAC, CLUSTER_IP)
    server = WebServer(machine)
    server.host_site("site1", files={"x.html": 2000})
    stack.listen(80, server.acceptor)
    captured = []
    capture = NIC(env, CLIENT_MAC, name="client", promiscuous=True)
    switch.attach(capture.iface)

    def ack_back(packet):
        captured.append(packet)
        if packet.dst_mac != CLIENT_MAC:
            return
        consumed = packet.payload_len + (1 if TCPFlags.FIN in packet.flags else 0)
        if consumed == 0:
            return
        ack = Packet(
            src_mac=CLIENT_MAC, dst_mac=RPN_MAC,
            src_ip=packet.dst_ip, dst_ip=CLUSTER_IP,
            src_port=packet.dst_port, dst_port=packet.src_port,
            seq=packet.ack, ack=(packet.seq + consumed) % (2 ** 32),
            flags=TCPFlags.ACK,
        )
        capture.transmit(ack)

    capture.receive_handler = ack_back
    return machine, stack, lsm, server, captured


def order(port=30000, client_isn=1000, rdn_isn=50000):
    return DispatchOrder(
        subscriber="site1",
        request=WebRequest("site1", "/x.html", 2000),
        request_bytes=200,
        quad=Quadruple(CLIENT_IP, port, CLUSTER_IP, 80),
        client_isn=client_isn,
        rdn_isn=rdn_isn,
        client_mac=CLIENT_MAC,
    )


def test_dispatch_order_establishes_splice_locally():
    env = Environment()
    _machine, stack, lsm, _server, captured = build_rpn(env)
    lsm._start_second_leg(order())
    # The local handshake happens synchronously: connection established,
    # splice rule installed, SYN-ACK suppressed from the wire.
    assert lsm.splices_established == 1
    quad = Quadruple(CLIENT_IP, 30000, CLUSTER_IP, 80)
    rule = lsm.rule_for(quad)
    assert rule is not None
    assert rule.rdn_isn == 50000
    conn = stack.connections[Quadruple(RPN_IP, 80, CLIENT_IP, 30000)]
    assert conn.state is TCPState.ESTABLISHED
    env.run(until=0.01)
    synacks = [
        p for p in captured if TCPFlags.SYN in p.flags and TCPFlags.ACK in p.flags
    ]
    assert synacks == []  # the second-leg SYN-ACK never hits the wire


def test_response_packets_remapped_to_cluster_ip():
    env = Environment()
    _machine, _stack, lsm, server, captured = build_rpn(env)
    lsm._start_second_leg(order())
    env.run(until=0.5)
    assert server.sites["site1"].completed == 1
    responses = [p for p in captured if p.payload_len > 0 and p.dst_ip == CLIENT_IP]
    assert responses
    for packet in responses:
        assert packet.src_ip == CLUSTER_IP  # the splice illusion
        assert packet.dst_mac == CLIENT_MAC
    rule = lsm.rule_for(Quadruple(CLIENT_IP, 30000, CLUSTER_IP, 80))
    assert rule.outgoing_remapped > 0


def test_incoming_client_packets_remapped_to_rpn():
    env = Environment()
    _machine, stack, lsm, _server, _captured = build_rpn(env)
    lsm._start_second_leg(order(rdn_isn=50000))
    env.run(until=0.2)
    conn = stack.connections.get(Quadruple(RPN_IP, 80, CLIENT_IP, 30000))
    snd_before = conn.snd_una
    # A client ACK arrives addressed to the cluster IP with ACK numbers
    # in the RDN's sequence space.
    rule = lsm.rule_for(Quadruple(CLIENT_IP, 30000, CLUSTER_IP, 80))
    client_ack = Packet(
        src_mac=CLIENT_MAC, dst_mac=RPN_MAC, src_ip=CLIENT_IP, dst_ip=CLUSTER_IP,
        src_port=30000, dst_port=80, seq=1201,
        ack=(conn.snd_nxt + rule.seq_delta) % (2**32),
        flags=TCPFlags.ACK,
    )
    remapped = lsm.inbound(client_ack)
    assert remapped.dst_ip == RPN_IP
    assert remapped.ack == conn.snd_nxt


def test_forget_removes_rules():
    env = Environment()
    _machine, _stack, lsm, _server, _captured = build_rpn(env)
    lsm._start_second_leg(order())
    quad = Quadruple(CLIENT_IP, 30000, CLUSTER_IP, 80)
    assert lsm.rule_for(quad) is not None
    lsm.forget(quad)
    assert lsm.rule_for(quad) is None


def test_non_splice_traffic_passes_through():
    env = Environment()
    _machine, _stack, lsm, _server, _captured = build_rpn(env)
    other = Packet(
        src_mac=CLIENT_MAC, dst_mac=RPN_MAC, src_ip=CLIENT_IP, dst_ip=RPN_IP,
        src_port=9999, dst_port=22, flags=TCPFlags.SYN,
    )
    assert lsm.inbound(other) is other
    assert lsm.outbound(other) is other


def test_accounting_agent_reports_deltas():
    env = Environment()
    machine, _stack, lsm, server, _captured = build_rpn(env)
    messages = []
    agent = RPNAccountingAgent(env, "rpn0", server, cycle_s=0.1, send_fn=messages.append)
    lsm._start_second_leg(order())
    env.run(until=0.35)
    assert agent.messages_sent == 3
    completed = sum(
        m.per_subscriber["site1"].completed
        for m in messages
        if "site1" in m.per_subscriber
    )
    assert completed == 1
    usage = sum(
        m.per_subscriber["site1"].usage.net_bytes
        for m in messages
        if "site1" in m.per_subscriber
    )
    assert usage == 2000  # deltas never double-count


def test_accounting_agent_validation():
    env = Environment()
    machine = Machine(env, "m")
    server = WebServer(machine)
    with pytest.raises(ValueError):
        RPNAccountingAgent(env, "r", server, cycle_s=0, send_fn=lambda m: None)
    with pytest.raises(ValueError):
        RPNAccountingAgent(
            env, "r", server, cycle_s=1, send_fn=lambda m: None, phase_offset_s=-1
        )


def test_agent_quiet_cycles_have_no_subscriber_entries():
    env = Environment()
    _machine, _stack, _lsm, server, _captured = build_rpn(env)
    messages = []
    RPNAccountingAgent(env, "rpn0", server, cycle_s=0.05, send_fn=messages.append)
    env.run(until=0.2)
    assert messages
    assert all(not m.per_subscriber for m in messages)
