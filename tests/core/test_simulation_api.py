"""Unit tests for the GageCluster assembly and reporting API."""

import pytest

from repro.core import GageCluster, GageConfig, Subscriber, default_rpn_capacity
from repro.resources import ResourceVector
from repro.sim import Environment
from repro.workload import SyntheticWorkload


def small_cluster(env, fidelity="flow", **kw):
    subs = [Subscriber("a", 100)]
    return GageCluster(env, subs, {"a": {"x.html": 2000}}, num_rpns=2,
                       fidelity=fidelity, **kw)


def traffic_cluster(env, rate=20.0, duration=2.0):
    """A cluster whose site files match the workload's request paths."""
    subs = [Subscriber("a", 100)]
    workload = SyntheticWorkload(rates={"a": rate}, duration_s=duration, file_bytes=2000)
    cluster = GageCluster(
        env, subs, {"a": workload.site_files("a")}, num_rpns=2, fidelity="flow"
    )
    cluster.load_trace(workload.generate())
    return cluster


def test_default_rpn_capacity_vector():
    capacity = default_rpn_capacity()
    assert capacity == ResourceVector(1.0, 1.0, 12_500_000.0)
    assert default_rpn_capacity(cpu_speed=2.0).cpu_s == 2.0


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        GageCluster(env, [Subscriber("a", 1)], {"a": {}}, num_rpns=0)
    with pytest.raises(ValueError):
        GageCluster(env, [Subscriber("a", 1)], {"a": {}}, fidelity="quantum")


def test_flow_mode_builds_no_network():
    env = Environment()
    cluster = small_cluster(env)
    assert cluster.switch is None
    assert cluster.fleet is None
    assert cluster.lsms == []
    assert len(cluster.machines) == 2
    assert len(cluster.agents) == 2


def test_packet_mode_builds_full_network():
    env = Environment()
    cluster = small_cluster(env, fidelity="packet")
    assert cluster.switch is not None
    assert cluster.fleet is not None
    assert len(cluster.lsms) == 2
    assert cluster.rdn.nic is not None


def test_prewarm_caches_fills_every_machine():
    env = Environment()
    cluster = small_cluster(env)
    cluster.prewarm_caches()
    for machine in cluster.machines:
        assert machine.cache.used_bytes == 2000


def test_service_report_windows():
    env = Environment()
    cluster = traffic_cluster(env)
    cluster.run(3.0)
    full = cluster.service_report("a", 0.0, 3.0)
    assert full.arrived == 39
    assert full.served == 39
    empty = cluster.service_report("a", 2.5, 3.0)
    assert empty.arrived == 0
    with pytest.raises(StopIteration):
        cluster.service_report("missing", 0.0, 1.0)


def test_latency_tracking_in_flow_mode():
    env = Environment()
    cluster = traffic_cluster(env, rate=10.0, duration=1.0)
    cluster.run(2.0)
    assert len(cluster.latencies) in (9, 10)
    for _at, host, latency in cluster.latencies:
        assert host == "a"
        assert 0 < latency < 1.0


def test_completion_events_grouping():
    env = Environment()
    cluster = traffic_cluster(env, rate=10.0, duration=1.0)
    cluster.run(2.0)
    events = cluster.completion_events_by_subscriber()
    assert set(events) == {"a"}
    assert len(events["a"]) in (9, 10)
    for _at, weight in events["a"]:
        assert weight > 0


def test_stagger_accounting_offsets_agents():
    env = Environment()
    config = GageConfig(accounting_cycle_s=0.2)
    cluster = GageCluster(
        env,
        [Subscriber("a", 100)],
        {"a": {}},
        num_rpns=4,
        config=config,
        stagger_accounting=True,
    )
    offsets = [agent.phase_offset_s for agent in cluster.agents]
    assert offsets == pytest.approx([0.0, 0.05, 0.10, 0.15])

    synced = GageCluster(
        Environment(),
        [Subscriber("a", 100)],
        {"a": {}},
        num_rpns=4,
        config=GageConfig(accounting_cycle_s=0.2),
    )
    assert all(agent.phase_offset_s == 0.0 for agent in synced.agents)


def test_subscribers_hosted_on_every_rpn():
    env = Environment()
    subs = [Subscriber("a", 50), Subscriber("b", 50)]
    cluster = GageCluster(
        env, subs, {"a": {"x": 1}, "b": {"y": 2}}, num_rpns=3, fidelity="flow"
    )
    for server in cluster.webservers:
        assert set(server.sites) == {"a", "b"}
