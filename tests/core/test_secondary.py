"""Unit tests for the secondary RDN (asymmetric front-end cluster)."""

from repro.core import SecondaryRDN
from repro.core.control import DelegateHandshake, HandshakeComplete
from repro.net import NIC, IPAddress, MACAddress, Packet, Switch, TCPFlags
from repro.net.conn import Quadruple
from repro.sim import Environment

CLUSTER_IP = IPAddress("10.0.0.100")
CLIENT_IP = IPAddress("10.0.0.1")
CLIENT_MAC = MACAddress("02:00:00:00:00:01")
PRIMARY_MAC = MACAddress("02:00:00:00:00:64")
SEC_MAC = MACAddress("02:00:00:00:02:01")


def build(env):
    switch = Switch(env, ports=4)
    nic = NIC(env, SEC_MAC, name="sec.eth0")
    switch.attach(nic.iface)
    secondary = SecondaryRDN(env, "sec0", CLUSTER_IP, PRIMARY_MAC, isn_base=7_000_000)
    secondary.attach_nic(nic)
    sent = []
    capture = NIC(env, MACAddress("02:00:00:00:00:FE"), name="cap", promiscuous=True)
    capture.receive_handler = sent.append
    switch.attach(capture.iface)
    return secondary, sent


def quad(port=30000):
    return Quadruple(CLIENT_IP, port, CLUSTER_IP, 80)


def delegate(port=30000, client_isn=1000):
    return DelegateHandshake(quad=quad(port), client_isn=client_isn, client_mac=CLIENT_MAC)


def control_packet(payload):
    return Packet(
        src_mac=PRIMARY_MAC, dst_mac=SEC_MAC, src_ip=CLUSTER_IP, dst_ip=CLUSTER_IP,
        src_port=7777, dst_port=7777, payload=payload, payload_len=64,
    )


def client_ack(port=30000, seq=1001, ack=0):
    return Packet(
        src_mac=PRIMARY_MAC,  # relayed by the primary
        dst_mac=SEC_MAC, src_ip=CLIENT_IP, dst_ip=CLUSTER_IP,
        src_port=port, dst_port=80, seq=seq, ack=ack, flags=TCPFlags.ACK,
    )


def test_delegation_sends_synack_to_client():
    env = Environment()
    secondary, sent = build(env)
    secondary.handle_packet(control_packet(delegate(client_isn=1234)))
    env.run(until=0.01)
    synacks = [p for p in sent if TCPFlags.SYN in p.flags and TCPFlags.ACK in p.flags]
    assert len(synacks) == 1
    assert synacks[0].src_ip == CLUSTER_IP  # impersonates the cluster
    assert synacks[0].ack == 1235
    assert synacks[0].dst_mac == CLIENT_MAC
    assert secondary.handshakes_started == 1


def test_duplicate_delegation_resends_same_isn():
    env = Environment()
    secondary, sent = build(env)
    secondary.handle_packet(control_packet(delegate()))
    secondary.handle_packet(control_packet(delegate()))
    env.run(until=0.01)
    synacks = [p for p in sent if TCPFlags.SYN in p.flags]
    assert len(synacks) == 2
    assert synacks[0].seq == synacks[1].seq
    assert secondary.handshakes_started == 1


def test_client_ack_completes_and_reports_to_primary():
    env = Environment()
    secondary, sent = build(env)
    secondary.handle_packet(control_packet(delegate(client_isn=1000)))
    env.run(until=0.01)
    synack = next(p for p in sent if TCPFlags.SYN in p.flags)
    secondary.handle_packet(client_ack(ack=(synack.seq + 1)))
    env.run(until=0.02)
    completions = [p for p in sent if isinstance(p.payload, HandshakeComplete)]
    assert len(completions) == 1
    done = completions[0].payload
    assert done.quad == quad()
    assert done.client_isn == 1000
    assert done.rdn_isn == synack.seq
    assert completions[0].dst_mac == PRIMARY_MAC
    assert secondary.handshakes_completed == 1
    # State is cleaned up; a stray second ACK is ignored.
    secondary.handle_packet(client_ack())
    assert secondary.handshakes_completed == 1


def test_unrelated_packets_ignored():
    env = Environment()
    secondary, sent = build(env)
    secondary.handle_packet(client_ack())  # no pending handshake
    env.run(until=0.01)
    assert sent == []
    assert secondary.handshakes_completed == 0


def test_distinct_connections_get_distinct_isns():
    env = Environment()
    secondary, sent = build(env)
    secondary.handle_packet(control_packet(delegate(port=30000)))
    secondary.handle_packet(control_packet(delegate(port=30001)))
    env.run(until=0.01)
    synacks = [p for p in sent if TCPFlags.SYN in p.flags]
    assert len(synacks) == 2
    assert synacks[0].seq != synacks[1].seq
