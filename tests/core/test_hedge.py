"""Unit tests for the hedging layer and its credit-conservation math.

The :class:`HedgeManager` is exercised against plain-lambda hooks (no
RDN), and :class:`RDNAccounting` against randomized operation sequences:
whatever mix of dispatches, completions, cancellations, and node deaths
occurs, the conservation ledger must balance exactly —

    Σcharged == Σbacked_out + Σrefunded + Σforgotten + Σpending
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accounting import RDNAccounting
from repro.core.config import GageConfig
from repro.core.feedback import AccountingMessage, RPNUsageReport
from repro.core.hedge import HedgeHooks, HedgeManager
from repro.core.node_scheduler import NodeScheduler
from repro.core.subscriber import Subscriber
from repro.resources import ResourceVector
from repro.sim import Environment

PREDICTED = ResourceVector(cpu_s=0.010, disk_s=0.010, net_bytes=2000.0)


class HookLog:
    """Recording hooks whose behavior the test scripts per-call."""

    def __init__(self, clone_target="rpn2", cancel_result=True, refund_result=True):
        self.calls = []
        self.clone_target = clone_target
        self.cancel_result = cancel_result
        self.refund_result = refund_result

    def hooks(self) -> HedgeHooks:
        return HedgeHooks(
            pick_clone=self._pick_clone,
            charge=lambda sub, rpn, pred: self.calls.append(("charge", sub, rpn)),
            refund=self._refund,
            dispatch_clone=lambda item, rpn, sub: self.calls.append(
                ("dispatch", rpn, sub)
            ),
            cancel_service=self._cancel,
            discard_in_flight=lambda item, rpn, sub: self.calls.append(
                ("discard", rpn, sub)
            ),
        )

    def _pick_clone(self, item, predicted, exclude):
        self.calls.append(("pick", frozenset(exclude)))
        return None if self.clone_target in exclude else self.clone_target

    def _cancel(self, item, rpn):
        self.calls.append(("cancel", rpn))
        return self.cancel_result

    def _refund(self, sub, rpn, predicted):
        self.calls.append(("refund", sub, rpn))
        return self.refund_result

    def named(self, kind):
        return [c for c in self.calls if c[0] == kind]


def make_manager(env, log, **config_kwargs):
    config_kwargs.setdefault("hedge_policy", "fixed")
    config = GageConfig(**config_kwargs)
    return HedgeManager(env, config, log.hooks())


# -- delay policy -------------------------------------------------------


def test_fixed_policy_uses_configured_delay():
    env = Environment()
    manager = make_manager(env, HookLog(), hedge_delay_s=0.123)
    assert manager.hedge_delay() == pytest.approx(0.123)


def test_p95_policy_falls_back_until_enough_samples():
    env = Environment()
    manager = make_manager(
        env, HookLog(), hedge_policy="p95", hedge_delay_s=0.123
    )
    for _ in range(9):
        manager.latency.observe(0.020)
    assert manager.hedge_delay() == pytest.approx(0.123)
    manager.latency.observe(0.020)
    assert manager.hedge_delay() == pytest.approx(
        manager.latency.quantile(0.95)
    )


# -- clone lifecycle ----------------------------------------------------


def test_clone_fires_after_delay_and_excludes_primary():
    env = Environment()
    log = HookLog(clone_target="rpn2")
    manager = make_manager(env, log, hedge_delay_s=0.050)
    item = object()
    manager.on_primary_dispatch(item, "rpn1", "site1", PREDICTED)
    env.run(until=env.timeout(0.049))
    assert log.named("pick") == []
    env.run(until=env.timeout(0.002))
    assert log.named("pick") == [("pick", frozenset({"rpn1"}))]
    assert log.named("charge") == [("charge", "site1", "rpn2")]
    assert log.named("dispatch") == [("dispatch", "rpn2", "site1")]


def test_completion_before_delay_suppresses_clone():
    env = Environment()
    log = HookLog()
    manager = make_manager(env, log, hedge_delay_s=0.050)
    item = object()
    manager.on_primary_dispatch(item, "rpn1", "site1", PREDICTED)
    env.run(until=env.timeout(0.010))
    assert manager.on_completion(item, "rpn1") is True
    env.run(until=env.timeout(0.100))
    assert log.named("charge") == []
    assert log.named("dispatch") == []


def test_winner_cancels_refunds_and_discards_loser():
    env = Environment()
    log = HookLog(clone_target="rpn2", cancel_result=True, refund_result=True)
    manager = make_manager(env, log, hedge_delay_s=0.050)
    item = object()
    manager.on_primary_dispatch(item, "rpn1", "site1", PREDICTED)
    env.run(until=env.timeout(0.060))  # the clone has fired
    # The clone wins; the primary becomes the loser and is torn down.
    assert manager.on_completion(item, "rpn2") is True
    assert log.named("cancel") == [("cancel", "rpn1")]
    assert log.named("refund") == [("refund", "site1", "rpn1")]
    assert log.named("discard") == [("discard", "rpn1", "site1")]
    # Fully resolved: nothing tracked, nothing further fires.
    assert manager._entries == {}


def test_uncancellable_loser_completion_is_suppressed():
    env = Environment()
    log = HookLog(clone_target="rpn2", cancel_result=False)
    manager = make_manager(env, log, hedge_delay_s=0.050)
    item = object()
    manager.on_primary_dispatch(item, "rpn1", "site1", PREDICTED)
    env.run(until=env.timeout(0.060))
    assert manager.on_completion(item, "rpn2") is True
    # Cancellation missed: no refund, no discard; the loser will finish
    # on its own and its completion must not count a second time.
    assert log.named("refund") == []
    assert log.named("discard") == []
    assert manager.on_completion(item, "rpn1") is False
    assert manager._entries == {}


def test_untracked_completion_counts():
    env = Environment()
    manager = make_manager(env, HookLog())
    assert manager.on_completion(object(), "rpn1") is True


def test_no_alternate_leaves_request_unhedged():
    env = Environment()
    log = HookLog(clone_target="rpn1")  # the only node is the primary
    manager = make_manager(env, log, hedge_delay_s=0.050)
    item = object()
    manager.on_primary_dispatch(item, "rpn1", "site1", PREDICTED)
    env.run(until=env.timeout(0.060))
    assert log.named("pick") == [("pick", frozenset({"rpn1"}))]
    assert log.named("charge") == []
    assert manager.on_completion(item, "rpn1") is True


def test_max_clones_bounds_extra_copies():
    env = Environment()
    log = HookLog(clone_target="rpn2")
    manager = make_manager(env, log, hedge_delay_s=0.010, hedge_max_clones=1)

    # Make every pick return a fresh node so cloning could in principle
    # continue forever; the cap must stop it at one extra copy.
    targets = iter(["rpn2", "rpn3", "rpn4", "rpn5"])
    manager.hooks.pick_clone = lambda item, pred, excl: next(targets)
    item = object()
    manager.on_primary_dispatch(item, "rpn1", "site1", PREDICTED)
    env.run(until=env.timeout(0.200))
    assert len(log.named("charge")) == 1


def test_filter_requeue_node_death_triage():
    env = Environment()
    log = HookLog(clone_target="rpn2")
    manager = make_manager(env, log, hedge_delay_s=0.050)
    hedged = object()
    sole = object()
    stranger = object()
    manager.on_primary_dispatch(hedged, "rpn1", "site1", PREDICTED)
    manager.on_primary_dispatch(sole, "rpn1", "site1", PREDICTED)
    env.run(until=env.timeout(0.060))  # both earn a clone on rpn2
    # rpn1 dies: both lose their rpn1 copy, but each still has a live
    # sibling on rpn2 — neither deserves a requeue.  The untracked
    # request always does.
    requeue = manager.filter_requeue("rpn1", [hedged, sole, stranger])
    assert requeue == [stranger]
    # rpn2 dies too: now each tracked request lost its last copy.
    requeue = manager.filter_requeue("rpn2", [hedged, sole])
    assert requeue == [hedged, sole]
    assert manager._entries == {}


# -- NodeScheduler exclude ----------------------------------------------


def test_pick_exclude_skips_nodes_holding_a_copy():
    scheduler = NodeScheduler(window_s=10.0)
    capacity = ResourceVector(cpu_s=1.0, disk_s=1.0, net_bytes=1e9)
    scheduler.add_node("rpn1", capacity)
    scheduler.add_node("rpn2", capacity)
    assert scheduler.pick(PREDICTED) == "rpn1"
    assert scheduler.pick(PREDICTED, exclude=frozenset({"rpn1"})) == "rpn2"
    assert (
        scheduler.pick(PREDICTED, exclude=frozenset({"rpn1", "rpn2"})) is None
    )


# -- accounting refunds -------------------------------------------------


def make_accounting():
    accounting = RDNAccounting()
    accounting.register(Subscriber("site1", 100))
    return accounting


def test_on_cancel_refunds_newest_matching_prediction():
    accounting = make_accounting()
    small = ResourceVector(0.001, 0.0, 100.0)
    accounting.on_dispatch("site1", "rpn1", small)
    accounting.on_dispatch("site1", "rpn1", PREDICTED)
    balance_before = accounting.account("site1").balance
    assert accounting.on_cancel("site1", "rpn1", PREDICTED) is True
    account = accounting.account("site1")
    assert account.balance == balance_before + PREDICTED
    # The older prediction is untouched and still pending.
    assert list(account.pending["rpn1"]) == [small]
    assert accounting.conservation_delta() == ResourceVector.ZERO


def test_on_cancel_falls_back_to_newest_when_vector_is_gone():
    accounting = make_accounting()
    small = ResourceVector(0.001, 0.0, 100.0)
    accounting.on_dispatch("site1", "rpn1", small)
    # The exact vector was never charged: drop the newest instead so
    # count-based feedback alignment survives.
    assert accounting.on_cancel("site1", "rpn1", PREDICTED) is True
    assert not accounting.account("site1").pending["rpn1"]
    assert accounting.conservation_delta() == ResourceVector.ZERO


def test_on_cancel_with_nothing_pending_is_false():
    accounting = make_accounting()
    assert accounting.on_cancel("site1", "rpn1", PREDICTED) is False
    assert accounting.on_cancel("nosuch", "rpn1", PREDICTED) is False
    # Refund after forget_rpn restored everything: nothing to refund.
    accounting.on_dispatch("site1", "rpn1", PREDICTED)
    accounting.forget_rpn("rpn1")
    assert accounting.on_cancel("site1", "rpn1", PREDICTED) is False
    assert accounting.conservation_delta() == ResourceVector.ZERO


def test_cancel_then_feedback_backs_out_remaining_completions():
    accounting = make_accounting()
    accounting.on_dispatch("site1", "rpn1", PREDICTED)
    accounting.on_dispatch("site1", "rpn1", PREDICTED)
    accounting.on_cancel("site1", "rpn1", PREDICTED)
    message = AccountingMessage(
        rpn_id="rpn1",
        cycle_start_s=0.0,
        cycle_end_s=0.1,
        total_usage=PREDICTED,
        per_subscriber={"site1": RPNUsageReport(usage=PREDICTED, completed=1)},
    )
    accounting.apply_message(message)
    assert not accounting.account("site1").pending["rpn1"]
    assert accounting.pending_total() == ResourceVector.ZERO
    assert accounting.conservation_delta() == ResourceVector.ZERO


# -- conservation property ----------------------------------------------

OPS = st.lists(
    st.tuples(
        st.sampled_from(["dispatch", "complete", "cancel", "forget"]),
        st.sampled_from(["rpn1", "rpn2", "rpn3"]),
        st.floats(min_value=0.001, max_value=0.1),
    ),
    min_size=1,
    max_size=60,
)


@settings(max_examples=40, deadline=None)
@given(ops=OPS)
def test_conservation_holds_under_any_operation_mix(ops):
    """Charges are conserved no matter how dispatches, completions,
    hedge-cancellations, and node deaths interleave."""
    accounting = RDNAccounting()
    accounting.keep_usage_log = False
    accounting.register(Subscriber("site1", 100))
    in_flight = {"rpn1": [], "rpn2": [], "rpn3": []}
    for op, rpn, magnitude in ops:
        if op == "dispatch":
            predicted = ResourceVector(magnitude, magnitude / 2, magnitude * 1e4)
            accounting.on_dispatch("site1", rpn, predicted)
            in_flight[rpn].append(predicted)
        elif op == "complete" and in_flight[rpn]:
            in_flight[rpn].pop(0)
            usage = ResourceVector(magnitude, 0.0, magnitude * 1e3)
            accounting.apply_message(
                AccountingMessage(
                    rpn_id=rpn,
                    cycle_start_s=0.0,
                    cycle_end_s=0.1,
                    total_usage=usage,
                    per_subscriber={
                        "site1": RPNUsageReport(usage=usage, completed=1)
                    },
                )
            )
        elif op == "cancel" and in_flight[rpn]:
            predicted = in_flight[rpn].pop()
            accounting.on_cancel("site1", rpn, predicted)
        elif op == "forget":
            accounting.forget_rpn(rpn)
            in_flight[rpn] = []
        delta = accounting.conservation_delta()
        assert delta.cpu_s == pytest.approx(0.0, abs=1e-9)
        assert delta.disk_s == pytest.approx(0.0, abs=1e-9)
        assert delta.net_bytes == pytest.approx(0.0, abs=1e-3)
