"""Tests for the extracted credit ledger (repro.core.credit)."""

import pytest

from repro.core import CreditLedger, GageConfig, Subscriber, SubscriberQueues
from repro.core.grps import GENERIC_REQUEST, ResourceVector


def make_ledger(**config_kwargs):
    return CreditLedger(GageConfig(**config_kwargs))


def test_cycle_credit_is_one_cycles_reservation():
    ledger = make_ledger(scheduling_cycle_s=0.010, credit_cap_cycles=4.0)
    sub = Subscriber("a", reservation_grps=100)
    credit, capped = ledger.cycle_credit(sub)
    # 100 GRPS * 10 ms = 1 generic request per cycle.
    assert credit == GENERIC_REQUEST
    assert capped == GENERIC_REQUEST.scaled(4.0)


def test_cycle_credit_memo_tracks_reservation_changes():
    ledger = make_ledger()
    first, _ = ledger.cycle_credit(Subscriber("a", reservation_grps=100))
    again, _ = ledger.cycle_credit(Subscriber("a", reservation_grps=100))
    assert again == first
    changed, _ = ledger.cycle_credit(Subscriber("a", reservation_grps=200))
    assert changed == first.scaled(2.0)


def test_refill_cap_never_below_predicted_request():
    capped = GENERIC_REQUEST.scaled(4.0)
    huge = GENERIC_REQUEST.scaled(10.0)
    cap = CreditLedger.refill_cap(capped, huge)
    # A heavy-tailed subscriber (requests > cap) still fits 1.5 requests.
    assert cap == huge.scaled(1.5)
    small = GENERIC_REQUEST.scaled(0.5)
    assert CreditLedger.refill_cap(capped, small) == capped


def test_spare_pool_is_capacity_minus_reservations():
    ledger = make_ledger(scheduling_cycle_s=0.010)
    subs = [Subscriber("a", 100), Subscriber("b", 50)]
    capacity = ResourceVector(1.0, 1.0, 12_500_000.0)  # 100 GRPS-ish
    pool = ledger.spare_pool(capacity, subs)
    reserved = GENERIC_REQUEST.scaled(1.5)  # 150 GRPS * 10 ms
    expect = (capacity.scaled(0.010) - reserved).clamped_min(0.0)
    assert pool == expect
    # Memoized path returns the same answer.
    assert ledger.spare_pool(capacity, subs) == expect


def test_spare_pool_clamps_overbooked_cluster_to_zero():
    ledger = make_ledger(scheduling_cycle_s=0.010)
    subs = [Subscriber("a", 10_000)]
    assert ledger.spare_pool(ResourceVector(1.0, 1.0, 12_500_000.0), subs) == (
        ResourceVector.ZERO
    )


def test_spare_weights_follow_reservations():
    ledger = make_ledger(spare_policy="reservation")
    queues = SubscriberQueues()
    for sub in [Subscriber("a", 200), Subscriber("b", 100)]:
        queues.register(sub).offer("req")
    weights = ledger.spare_weights(queues.backlogged())
    assert weights["a"] == pytest.approx(2.0 / 3.0)
    assert weights["b"] == pytest.approx(1.0 / 3.0)


def test_spare_weights_equal_split_when_all_zero():
    ledger = make_ledger(spare_policy="reservation")
    queues = SubscriberQueues()
    for name in ("a", "b"):
        queues.register(Subscriber(name, 0)).offer("req")
    weights = ledger.spare_weights(queues.backlogged())
    assert weights == {"a": 0.5, "b": 0.5}


def test_spare_weights_empty_when_policy_is_none():
    ledger = make_ledger(spare_policy="none")
    queues = SubscriberQueues()
    queues.register(Subscriber("a", 100)).offer("req")
    assert ledger.spare_weights(queues.backlogged()) == {}


def test_deficit_rolls_over_capped_and_goes_stale():
    ledger = make_ledger()
    share = GENERIC_REQUEST.scaled(1.0)
    predicted = GENERIC_REQUEST
    # Nothing stored yet: roll-in returns the share untouched.
    assert ledger.roll_in_deficit("a", share, predicted) == share
    # Store a huge remainder; roll-in caps it at 2x share (>1.5 predicted).
    ledger.store_deficit("a", GENERIC_REQUEST.scaled(50.0))
    rolled = ledger.roll_in_deficit("a", share, predicted)
    assert rolled == share + share.scaled(2.0)
    # A queue idle this cycle forfeits its stored deficit.
    ledger.drop_stale_deficits({"b"})
    assert ledger.roll_in_deficit("a", share, predicted) == share


def test_store_deficit_clamps_negative_remainder():
    ledger = make_ledger()
    ledger.store_deficit("a", ResourceVector(-1.0, 0.5, -3.0))
    share = ResourceVector.ZERO
    rolled = ledger.roll_in_deficit("a", share, ResourceVector.ZERO)
    assert rolled == ResourceVector.ZERO + ResourceVector(0.0, 0.0, 0.0)
    # Only the positive component survives under a permissive cap.
    big_share = ResourceVector(1.0, 1.0, 1.0)
    ledger2 = make_ledger()
    ledger2.store_deficit("a", ResourceVector(-1.0, 0.5, -3.0))
    rolled2 = ledger2.roll_in_deficit("a", big_share, ResourceVector.ZERO)
    assert rolled2 == big_share + ResourceVector(0.0, 0.5, 0.0)
