"""Edge-case tests for the request scheduler."""

import pytest

from repro.core import (
    GageConfig,
    NodeScheduler,
    RDNAccounting,
    RequestScheduler,
    Subscriber,
    SubscriberQueues,
)
from repro.core.feedback import AccountingMessage, RPNUsageReport
from repro.core.grps import GENERIC_REQUEST, ResourceVector

CAPACITY = ResourceVector(1.0, 1.0, 12_500_000)


def build(subscribers, rpns=2, config=None):
    config = config or GageConfig()
    queues = SubscriberQueues()
    accounting = RDNAccounting()
    nodes = NodeScheduler(policy=config.node_policy, window_s=config.dispatch_window_s)
    for sub in subscribers:
        queues.register(sub)
        accounting.register(sub)
    for index in range(rpns):
        nodes.add_node("rpn{}".format(index), CAPACITY)
    dispatched = []
    scheduler = RequestScheduler(
        config, queues, accounting, nodes,
        dispatch_fn=lambda req, rpn, name, predicted: dispatched.append((req, rpn, name)),
    )
    return scheduler, queues, dispatched


def test_cycle_with_no_subscribers():
    scheduler, _queues, dispatched = build([])
    assert scheduler.run_cycle() == []
    assert dispatched == []


def test_cycle_with_empty_queues_accumulates_credit_only():
    scheduler, queues, dispatched = build([Subscriber("a", 100)])
    for _ in range(5):
        assert scheduler.run_cycle() == []
    assert dispatched == []


def test_all_zero_reservations_spare_splits_equally():
    """Degenerate weights: every subscriber has reservation zero, so the
    spare pass falls back to equal shares."""
    subs = [Subscriber("a", 0.0), Subscriber("b", 0.0)]
    scheduler, queues, dispatched = build(subs, rpns=4)
    for name in ("a", "b"):
        queue = queues.get(name)
        for i in range(500):
            queue.offer("{}-{}".format(name, i))
    for _ in range(50):
        scheduler.run_cycle()
    a_count = sum(1 for _r, _p, n in dispatched if n == "a")
    b_count = sum(1 for _r, _p, n in dispatched if n == "b")
    assert a_count > 0
    assert b_count > 0
    assert a_count == pytest.approx(b_count, rel=0.2)


def test_feedback_for_unregistered_subscriber_ignored():
    scheduler, _queues, _dispatched = build([Subscriber("a", 100)])
    message = AccountingMessage(
        rpn_id="rpn0",
        cycle_start_s=0.0,
        cycle_end_s=0.1,
        total_usage=ResourceVector.ZERO,
        per_subscriber={"ghost": RPNUsageReport(GENERIC_REQUEST, 1)},
    )
    scheduler.apply_feedback(message)  # must not raise


def test_visit_order_rotates_across_cycles():
    """With room for exactly one dispatch per cycle, the rotation ensures
    both subscribers eventually dispatch first."""
    subs = [Subscriber("a", 100), Subscriber("b", 100)]
    config = GageConfig(spare_policy="none")
    scheduler, queues, dispatched = build(subs, rpns=1, config=config)
    for name in ("a", "b"):
        queue = queues.get(name)
        for i in range(100):
            queue.offer("{}-{}".format(name, i))
    firsts = []
    for _ in range(6):
        before = len(dispatched)
        scheduler.run_cycle()
        if len(dispatched) > before:
            firsts.append(dispatched[before][2])
    assert "a" in firsts and "b" in firsts


def test_decisions_report_spare_flag():
    subs = [Subscriber("a", 100)]
    scheduler, queues, _dispatched = build(subs, rpns=4)
    queue = queues.get("a")
    for i in range(100):
        queue.offer(i)
    decisions = scheduler.run_cycle()
    reserved = [d for d in decisions if not d.spare]
    spare = [d for d in decisions if d.spare]
    assert len(reserved) == 1  # 100 GRPS x 10ms
    assert spare  # 3 idle RPNs' worth of spare flows to the only queue
    for decision in decisions:
        assert decision.subscriber == "a"
        assert decision.predicted == GENERIC_REQUEST


def test_spare_disabled_entirely():
    subs = [Subscriber("a", 100)]
    config = GageConfig(spare_policy="none")
    scheduler, queues, dispatched = build(subs, rpns=4, config=config)
    queue = queues.get("a")
    for i in range(100):
        queue.offer(i)
    decisions = scheduler.run_cycle()
    assert all(not d.spare for d in decisions)
    assert scheduler.spare_dispatches == 0


def test_counters_track_cycles_and_dispatches():
    subs = [Subscriber("a", 200)]
    scheduler, queues, _dispatched = build(subs)
    queue = queues.get("a")
    for i in range(1000):
        queue.offer(i)
    for _ in range(10):
        scheduler.run_cycle()
    assert scheduler.cycles == 10
    assert scheduler.reserved_dispatches == pytest.approx(20, abs=2)
