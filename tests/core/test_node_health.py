"""Node-health state and the locality policy's behaviour around it.

The §3.6 locality policy hashes each request's (host, directory) to a
preferred node.  These tests pin the degraded behaviour: when the
preferred node is down or out of headroom, the pick falls back to the
deterministic least-load choice and never lands on a down node.
"""

import pytest

from repro.core.config import NODES_LOCALITY
from repro.core.grps import ResourceVector
from repro.core.node_scheduler import NodeScheduler
from repro.core.simulation import default_rpn_capacity
from repro.workload import WebRequest

PREDICTED = ResourceVector(0.010, 0.010, 2000.0)


def make_scheduler(num_nodes=4):
    scheduler = NodeScheduler(policy=NODES_LOCALITY, window_s=0.25)
    for index in range(num_nodes):
        scheduler.add_node("rpn{}".format(index), default_rpn_capacity())
    return scheduler


REQUEST = WebRequest("site1", "/images/logo.png", 2000)


def preferred_of(scheduler):
    """On an idle cluster the locality pick IS the hash-preferred node."""
    return scheduler.pick(PREDICTED, request=REQUEST)


def test_idle_pick_is_stable_hash_preference():
    scheduler = make_scheduler()
    first = preferred_of(scheduler)
    assert first is not None
    for _ in range(10):
        assert scheduler.pick(PREDICTED, request=REQUEST) == first


def test_down_preferred_node_falls_back_to_least_load():
    scheduler = make_scheduler()
    preferred = preferred_of(scheduler)
    scheduler.mark_down(preferred, at_s=1.0)
    # Give every survivor a distinct load so least-load is unambiguous.
    survivors = [s.rpn_id for s in scheduler.up_nodes()]
    for weight, rpn_id in enumerate(survivors):
        for _ in range(weight + 2):
            scheduler.on_dispatch(rpn_id, PREDICTED)
    lightest = min(scheduler.up_nodes(), key=lambda s: s.load_seconds()).rpn_id
    for _ in range(20):
        choice = scheduler.pick(PREDICTED, request=REQUEST)
        assert choice == lightest  # deterministic fallback
        assert choice != preferred  # never the dead node
        scheduler.on_feedback(choice, ResourceVector.ZERO)  # keep loads fixed


def test_preferred_node_out_of_headroom_falls_back():
    scheduler = make_scheduler()
    preferred = preferred_of(scheduler)
    # Saturate the preferred node past the dispatch window (0.25 s of
    # work at 1 cpu_s/s capacity).
    scheduler.on_dispatch(preferred, ResourceVector(0.30, 0.0, 0.0))
    choice = scheduler.pick(PREDICTED, request=REQUEST)
    assert choice is not None
    assert choice != preferred
    others = [s for s in scheduler.up_nodes() if s.rpn_id != preferred]
    lightest = min(others, key=lambda s: s.load_seconds()).rpn_id
    assert choice == lightest


def test_pick_never_selects_down_node_even_without_locality_key():
    scheduler = make_scheduler(num_nodes=2)
    scheduler.mark_down("rpn0", at_s=0.0)
    for _ in range(10):
        assert scheduler.pick(PREDICTED, request=None) == "rpn1"


def test_all_nodes_down_returns_none():
    scheduler = make_scheduler(num_nodes=2)
    scheduler.mark_down("rpn0")
    scheduler.mark_down("rpn1")
    assert scheduler.pick(PREDICTED, request=REQUEST) is None


def test_mark_down_removes_capacity_and_load():
    scheduler = make_scheduler(num_nodes=3)
    scheduler.on_dispatch("rpn0", PREDICTED)
    full = scheduler.total_capacity_per_s()
    scheduler.mark_down("rpn0", at_s=2.5)
    status = scheduler.node("rpn0")
    assert not status.up
    assert status.down_since == 2.5
    assert status.failures == 1
    assert status.outstanding == ResourceVector.ZERO
    shrunk = scheduler.total_capacity_per_s()
    assert shrunk.cpu_s == pytest.approx(full.cpu_s * 2 / 3)
    # Idempotent: a second mark_down changes nothing.
    scheduler.mark_down("rpn0", at_s=9.9)
    assert scheduler.node("rpn0").failures == 1
    assert scheduler.node("rpn0").down_since == 2.5


def test_mark_up_readmits_with_drained_state():
    scheduler = make_scheduler(num_nodes=2)
    scheduler.on_dispatch("rpn0", PREDICTED)
    scheduler.mark_down("rpn0", at_s=1.0)
    scheduler.mark_up("rpn0")
    status = scheduler.node("rpn0")
    assert status.up
    assert status.down_since is None
    assert status.outstanding == ResourceVector.ZERO
    assert status.failures == 1  # history survives re-admission
    assert scheduler.total_capacity_per_s() == scheduler.node(
        "rpn0"
    ).capacity_per_s + scheduler.node("rpn1").capacity_per_s
