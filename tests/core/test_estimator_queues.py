"""Tests for the usage estimator and per-subscriber queues."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Subscriber, SubscriberQueues, UsageEstimator
from repro.core.grps import GENERIC_REQUEST, ResourceVector


def test_estimator_initial_is_generic():
    estimator = UsageEstimator()
    assert estimator.predict() == GENERIC_REQUEST


def test_estimator_ewma_moves_towards_samples():
    estimator = UsageEstimator(policy="ewma", alpha=0.5)
    sample = ResourceVector(0.002, 0.0, 500)
    for _ in range(20):
        estimator.observe(sample)
    predicted = estimator.predict()
    assert predicted.cpu_s == pytest.approx(0.002, rel=0.01)
    assert predicted.net_bytes == pytest.approx(500, rel=0.01)


def test_estimator_last_policy():
    estimator = UsageEstimator(policy="last")
    estimator.observe(ResourceVector(1, 1, 1))
    estimator.observe(ResourceVector(2, 2, 2))
    assert estimator.predict() == ResourceVector(2, 2, 2)


def test_estimator_static_policy_never_moves():
    estimator = UsageEstimator(policy="static")
    estimator.observe(ResourceVector(99, 99, 99))
    assert estimator.predict() == GENERIC_REQUEST


def test_estimator_reset():
    estimator = UsageEstimator(policy="last")
    estimator.observe(ResourceVector(5, 5, 5))
    estimator.reset()
    assert estimator.predict() == GENERIC_REQUEST
    assert estimator.samples == 0


def test_estimator_validation():
    with pytest.raises(ValueError):
        UsageEstimator(policy="nope")
    with pytest.raises(ValueError):
        UsageEstimator(alpha=0)


@settings(max_examples=100, deadline=None)
@given(
    samples=st.lists(
        st.tuples(st.floats(0, 0.1), st.floats(0, 0.1), st.floats(0, 1e5)),
        min_size=1,
        max_size=30,
    ),
    alpha=st.floats(0.01, 1.0),
)
def test_estimator_stays_within_sample_hull(samples, alpha):
    """An EWMA estimate never escapes [min, max] of initial+samples."""
    estimator = UsageEstimator(policy="ewma", alpha=alpha)
    cpu_values = [GENERIC_REQUEST.cpu_s]
    for cpu, disk, net in samples:
        estimator.observe(ResourceVector(cpu, disk, net))
        cpu_values.append(cpu)
    predicted = estimator.predict()
    assert min(cpu_values) - 1e-9 <= predicted.cpu_s <= max(cpu_values) + 1e-9


def sub(name, grps=100, cap=3):
    return Subscriber(name, reservation_grps=grps, queue_capacity=cap)


def test_queue_fifo_and_counters():
    queues = SubscriberQueues()
    queue = queues.register(sub("a"))
    assert queue.offer("r1")
    assert queue.offer("r2")
    assert queue.peek() == "r1"
    assert queue.take() == "r1"
    assert queue.take() == "r2"
    assert queue.arrived == 2
    assert queue.dispatched == 2
    assert not queue.backlogged


def test_queue_overflow_drops():
    queues = SubscriberQueues()
    queue = queues.register(sub("a", cap=2))
    assert queue.offer("r1")
    assert queue.offer("r2")
    assert not queue.offer("r3")
    assert queue.dropped == 1
    assert len(queue) == 2


def test_queue_take_empty_raises():
    queues = SubscriberQueues()
    queue = queues.register(sub("a"))
    with pytest.raises(IndexError):
        queue.take()
    assert queue.peek() is None


def test_queues_registration_order_and_duplicates():
    queues = SubscriberQueues()
    queues.register(sub("a"))
    queues.register(sub("b"))
    assert [q.subscriber.name for q in queues] == ["a", "b"]
    assert "a" in queues
    with pytest.raises(RuntimeError):
        queues.register(sub("a"))


def test_queues_backlogged_filter():
    queues = SubscriberQueues()
    qa = queues.register(sub("a"))
    queues.register(sub("b"))
    qa.offer("r")
    assert [q.subscriber.name for q in queues.backlogged()] == ["a"]


def test_queues_get_and_subscribers():
    queues = SubscriberQueues()
    queues.register(sub("a"))
    assert queues.get("a").subscriber.name == "a"
    assert queues.get("missing") is None
    assert [s.name for s in queues.subscribers()] == ["a"]
