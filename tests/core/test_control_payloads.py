"""Tests for intra-cluster control payloads and request models."""

import pytest

from repro.core.control import (
    CONTROL_PAYLOAD_LEN,
    CONTROL_PORT,
    DelegateHandshake,
    DispatchOrder,
    HandshakeComplete,
)
from repro.net import IPAddress, MACAddress
from repro.net.conn import Quadruple
from repro.workload import WebRequest, WebResponse


def quad():
    return Quadruple(IPAddress("10.0.0.1"), 30000, IPAddress("10.0.0.100"), 80)


def test_dispatch_order_is_immutable():
    order = DispatchOrder(
        subscriber="s",
        request=WebRequest("s", "/x", 100),
        request_bytes=200,
        quad=quad(),
        client_isn=1,
        rdn_isn=2,
        client_mac=MACAddress(1),
    )
    with pytest.raises(AttributeError):
        order.subscriber = "other"
    assert order.quad.src_port == 30000


def test_handshake_payloads_roundtrip_fields():
    delegate = DelegateHandshake(quad=quad(), client_isn=7, client_mac=MACAddress(3))
    done = HandshakeComplete(
        quad=delegate.quad,
        client_isn=delegate.client_isn,
        rdn_isn=99,
        client_mac=delegate.client_mac,
    )
    assert done.quad == delegate.quad
    assert done.client_isn == 7
    assert done.rdn_isn == 99


def test_control_constants_sane():
    assert 0 < CONTROL_PORT <= 0xFFFF
    assert CONTROL_PAYLOAD_LEN > 0


def test_web_request_wire_size_model():
    small = WebRequest("h", "/a", 100)
    long_path = WebRequest("h", "/" + "x" * 1000, 100)
    assert small.request_bytes < long_path.request_bytes
    assert long_path.request_bytes <= 512  # capped header size
    assert small.request_bytes >= 160


def test_web_request_repr_and_ids_unique():
    a = WebRequest("h", "/a", 100)
    b = WebRequest("h", "/a", 100)
    assert a.rid != b.rid
    assert "/a" in repr(a)


def test_web_response_defaults():
    request = WebRequest("h", "/a", 100)
    response = WebResponse(request, size_bytes=100)
    assert response.status == 200
    assert "200" in repr(response)
    error = WebResponse(request, size_bytes=0, status=404)
    assert error.status == 404


def test_quadruple_reversal_is_involution():
    q = quad()
    assert q.reversed().reversed() == q
    assert "10.0.0.1:30000" in str(q)
