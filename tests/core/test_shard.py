"""Tests for the sharded control plane (repro.core.shard)."""

import random

import pytest

from repro.core import (
    GageConfig,
    GlobalAllocator,
    NodeScheduler,
    RDNAccounting,
    RequestScheduler,
    ShardCreditReport,
    ShardedScheduler,
    ShardMap,
    Subscriber,
    SubscriberQueues,
)
from repro.core.feedback import AccountingMessage, RPNUsageReport
from repro.core.grps import ResourceVector

#: An RPN that can deliver 100 generic requests per second.
RPN_CAPACITY = ResourceVector(1.0, 1.0, 12_500_000)


# -- ShardMap ---------------------------------------------------------------


def test_shard_map_is_stable_across_instances():
    names = ["site{}".format(i) for i in range(50)]
    first = ShardMap(4)
    second = ShardMap(4)
    assert first.assignments(names) == second.assignments(names)
    for name in names:
        assert 0 <= first.shard_of(name) < 4


def test_shard_map_partition_covers_every_name_once():
    names = ["s{}".format(i) for i in range(40)]
    groups = ShardMap(3).partition(names)
    assert len(groups) == 3
    flat = [name for group in groups for name in group]
    assert sorted(flat) == sorted(names)


def test_shard_map_single_shard_takes_everything():
    names = ["a", "b", "c"]
    assert ShardMap(1).partition(names) == [names]


def test_shard_map_rejects_zero_shards():
    with pytest.raises(ValueError):
        ShardMap(0)


def test_shard_map_is_independent_of_registration_order():
    shuffled = ["x{}".format(i) for i in range(20)]
    rng = random.Random(3)
    rng.shuffle(shuffled)
    by_order = ShardMap(4).assignments(shuffled)
    by_sorted = ShardMap(4).assignments(sorted(shuffled))
    assert by_order == by_sorted


# -- GlobalAllocator --------------------------------------------------------


def vec(grps_amount):
    """grps_amount generic requests worth of resource."""
    return ResourceVector(0.010, 0.010, 2000.0).scaled(grps_amount)


def total(mapping):
    out = ResourceVector.ZERO
    for v in mapping.values():
        out = out + v
    return out


def assert_conserved(reports, answers, carry_used=ResourceVector.ZERO):
    """Sum of grants equals sum of reclaims plus consumed carry."""
    reclaimed = ResourceVector.ZERO
    granted = ResourceVector.ZERO
    for answer in answers.values():
        reclaimed = reclaimed + total(answer.reclaims)
        granted = granted + total(answer.grants)
    expect = reclaimed + carry_used
    assert granted.cpu_s == pytest.approx(expect.cpu_s)
    assert granted.disk_s == pytest.approx(expect.disk_s)
    assert granted.net_bytes == pytest.approx(expect.net_bytes)


def test_rebalance_with_no_backlog_is_a_net_noop():
    allocator = GlobalAllocator({"a": 100.0, "b": 50.0})
    reports = [
        ShardCreditReport(0, unused={"a": vec(3)}),
        ShardCreditReport(1, unused={"b": vec(1)}),
    ]
    answers = allocator.rebalance(reports)
    assert answers[0].grants == answers[0].reclaims == {"a": vec(3)}
    assert answers[1].grants == answers[1].reclaims == {"b": vec(1)}
    assert_conserved(reports, answers)


def test_same_subscriber_credit_chases_its_backlog():
    """A subscriber's idle-shard credit moves to its backlogged shards."""
    allocator = GlobalAllocator({"a": 100.0})
    reports = [
        ShardCreditReport(0, unused={"a": vec(6)}),
        ShardCreditReport(1, backlog={"a": 2}),
        ShardCreditReport(2, backlog={"a": 1}),
    ]
    answers = allocator.rebalance(reports)
    # Backlog-weighted: shard 1 (depth 2) gets 2/3, shard 2 gets 1/3.
    assert answers[1].grants["a"].cpu_s == pytest.approx(vec(4).cpu_s)
    assert answers[2].grants["a"].cpu_s == pytest.approx(vec(2).cpu_s)
    assert answers[0].reclaims == {"a": vec(6)}
    assert answers[0].grants == {}
    assert_conserved(reports, answers)


def test_globally_idle_credit_becomes_grps_proportional_spare():
    """Credit of an everywhere-idle subscriber is re-granted by reservation."""
    allocator = GlobalAllocator({"idle": 300.0, "gold": 200.0, "bronze": 100.0})
    reports = [
        ShardCreditReport(0, unused={"idle": vec(9)}),
        ShardCreditReport(1, backlog={"gold": 5}),
        ShardCreditReport(2, backlog={"bronze": 5}),
    ]
    answers = allocator.rebalance(reports)
    gold = answers[1].grants["gold"]
    bronze = answers[2].grants["bronze"]
    assert gold.cpu_s == pytest.approx(vec(6).cpu_s)  # 200:100 split of 9
    assert bronze.cpu_s == pytest.approx(vec(3).cpu_s)
    assert_conserved(reports, answers)


def test_spare_split_is_equal_when_reservations_are_zero():
    allocator = GlobalAllocator({"idle": 100.0, "x": 0.0, "y": 0.0})
    reports = [
        ShardCreditReport(0, unused={"idle": vec(4)}),
        ShardCreditReport(1, backlog={"x": 1}),
        ShardCreditReport(2, backlog={"y": 1}),
    ]
    answers = allocator.rebalance(reports)
    assert answers[1].grants["x"].cpu_s == pytest.approx(vec(2).cpu_s)
    assert answers[2].grants["y"].cpu_s == pytest.approx(vec(2).cpu_s)
    assert_conserved(reports, answers)


def test_dead_shard_carry_rides_the_next_backlogged_rebalance():
    allocator = GlobalAllocator({"a": 100.0})
    allocator.reclaim({"a": vec(5)})
    assert allocator.carry_total() == vec(5)

    # No backlog yet: the carry is retained, not granted into the void.
    idle = allocator.rebalance([ShardCreditReport(0)])
    assert idle[0].grants == {}
    assert allocator.carry_total() == vec(5)

    # Once someone is backlogged, the carry re-enters the pool.
    reports = [ShardCreditReport(0, backlog={"a": 3})]
    answers = allocator.rebalance(reports)
    assert answers[0].grants["a"].cpu_s == pytest.approx(vec(5).cpu_s)
    assert allocator.carry_total() == ResourceVector.ZERO
    assert_conserved(reports, answers, carry_used=vec(5))


def test_reclaim_ignores_negative_balances():
    """A dead worker's debt is written off, never re-granted as credit."""
    allocator = GlobalAllocator({"a": 100.0})
    allocator.reclaim({"a": ResourceVector(-1.0, -1.0, -100.0)})
    assert allocator.carry_total() == ResourceVector.ZERO


def test_rebalance_conserves_credit_under_random_reports():
    rng = random.Random(11)
    names = ["s{}".format(i) for i in range(6)]
    allocator = GlobalAllocator({name: rng.uniform(0, 300) for name in names})
    for _ in range(20):
        reports = []
        for shard_id in range(4):
            unused = {
                name: vec(rng.uniform(0, 10))
                for name in names
                if rng.random() < 0.4
            }
            backlog = {name: rng.randrange(0, 5) for name in names}
            reports.append(
                ShardCreditReport(shard_id, unused=unused, backlog=backlog)
            )
        answers = allocator.rebalance(reports)
        assert_conserved(reports, answers)  # no dead-shard carry in play


# -- ShardedScheduler -------------------------------------------------------


def build_legacy(subscribers, config, rpns=4):
    """The single-instance control plane, assembled by hand."""
    queues = SubscriberQueues()
    accounting = RDNAccounting()
    nodes = NodeScheduler(policy=config.node_policy, window_s=config.dispatch_window_s)
    for sub in subscribers:
        queues.register(sub)
        accounting.register(sub)
    for index in range(rpns):
        nodes.add_node("rpn{}".format(index), RPN_CAPACITY)
    scheduler = RequestScheduler(
        config, queues, accounting, nodes, dispatch_fn=lambda req, rpn, name, predicted: None
    )
    return scheduler, queues


def feedback_message(rpn_id, usage_per_request, completed_by_name, now):
    return AccountingMessage(
        rpn_id=rpn_id,
        cycle_start_s=now - 0.1,
        cycle_end_s=now,
        total_usage=ResourceVector.ZERO,
        per_subscriber={
            name: RPNUsageReport(usage_per_request.scaled(count), count)
            for name, count in completed_by_name.items()
        },
    )


def test_single_shard_matches_legacy_scheduler_decisions():
    """workers=1 constraint: the sharded path must make byte-identical
    scheduling decisions to a directly-constructed RequestScheduler."""
    subscribers = [
        Subscriber("gold", reservation_grps=200),
        Subscriber("silver", reservation_grps=120),
        Subscriber("bronze", reservation_grps=50),
    ]
    config = GageConfig(spare_policy="reservation")
    capacities = {"rpn{}".format(i): RPN_CAPACITY for i in range(4)}

    legacy, legacy_queues = build_legacy(subscribers, config)
    sharded = ShardedScheduler(subscribers, capacities, config=config, num_shards=1)

    rng = random.Random(7)
    legacy_trace = []
    sharded_trace = []
    usage = ResourceVector(0.012, 0.008, 2100.0)
    for cycle in range(200):
        for sub in subscribers:
            # A fixed-seed arrival pattern, identical for both planes.
            arrivals = rng.randrange(0, 4)
            for i in range(arrivals):
                request = "{}-{}-{}".format(sub.name, cycle, i)
                legacy_queues.get(sub.name).offer(request)
                sharded.offer(sub.name, request)
        legacy_trace.extend(
            (d.subscriber, d.rpn_id, d.predicted, d.spare)
            for d in legacy.run_cycle()
        )
        sharded_trace.extend(
            (d.subscriber, d.rpn_id, d.predicted, d.spare)
            for d in sharded.run_cycle()
        )
        if cycle % 10 == 9:
            completed = {sub.name: rng.randrange(0, 3) for sub in subscribers}
            now = 0.01 * (cycle + 1)
            legacy.apply_feedback(
                feedback_message("rpn0", usage, completed, now)
            )
            sharded.apply_feedback(
                feedback_message("rpn0", usage, completed, now)
            )
            sharded.run_accounting_cycle()

    assert legacy_trace == sharded_trace
    assert len(legacy_trace) > 100  # the workload actually dispatched


def test_single_shard_accounting_cycle_is_a_noop():
    sub = Subscriber("a", reservation_grps=100)
    sharded = ShardedScheduler([sub], {"rpn0": RPN_CAPACITY}, num_shards=1)
    assert sharded.run_accounting_cycle() == {}
    assert sharded.allocator.rebalances == 0


def test_requests_route_to_the_home_shard():
    subscribers = [Subscriber("s{}".format(i), 50) for i in range(8)]
    capacities = {"rpn0": RPN_CAPACITY}
    sharded = ShardedScheduler(
        subscribers, capacities, num_shards=4, config=GageConfig()
    )
    for sub in subscribers:
        assert sharded.offer(sub.name, "req")
        shard = sharded.shard_for(sub.name)
        assert len(shard.queues.get(sub.name)) == 1
    assert not sharded.offer("unknown", "req")


def test_credit_report_offers_hoard_and_reports_backlog():
    config = GageConfig(spare_policy="none", dispatch_window_s=10.0)
    subscribers = [Subscriber("a", 100), Subscriber("b", 100)]
    sharded = ShardedScheduler(
        subscribers, {"rpn0": RPN_CAPACITY}, config=config, num_shards=1
    )
    shard = sharded.shards[0]
    for _ in range(5):  # both idle: balances accrue toward the cap
        shard.run_cycle()
    shard.offer("b", "req-held")  # backlogged but never scheduled here
    report = shard.credit_report()
    assert report.backlog == {"b": 1}
    assert "b" not in report.unused
    # "a" hoards 4 cycles of credit (the cap); it offers all but one
    # cycle's refill back to the pool.
    offered = report.unused["a"]
    credit, _ = shard.ledger.cycle_credit(subscribers[0])
    assert offered.cpu_s == pytest.approx(credit.scaled(3.0).cpu_s)


def test_cross_shard_grant_moves_balance_between_shards():
    """Two shards: the idle subscriber's hoard funds the backlogged one."""
    config = GageConfig(spare_policy="reservation", dispatch_window_s=10.0)
    # Pick names that land on different shards of a 2-shard map.
    shard_map = ShardMap(2)
    names = ["sub{}".format(i) for i in range(10)]
    on_zero = [n for n in names if shard_map.shard_of(n) == 0][0]
    on_one = [n for n in names if shard_map.shard_of(n) == 1][0]
    subscribers = [Subscriber(on_zero, 100), Subscriber(on_one, 100)]
    sharded = ShardedScheduler(
        subscribers, {"rpn0": RPN_CAPACITY}, config=config, num_shards=2
    )
    idle_shard = sharded.shard_for(on_zero)
    busy_shard = sharded.shard_for(on_one)
    for _ in range(5):
        sharded.run_cycle()  # on_zero hoards credit; on_one idle too
    for i in range(500):
        busy_shard.offer(on_one, "r{}".format(i))
    before = busy_shard.accounting.account(on_one).balance
    answers = sharded.run_accounting_cycle()
    after = busy_shard.accounting.account(on_one).balance
    assert after.cpu_s > before.cpu_s  # the grant landed
    assert idle_shard.accounting.account(on_zero).balance.cpu_s == pytest.approx(
        idle_shard.ledger.cycle_credit(subscribers[0])[0].cpu_s
    )  # the hoard was reclaimed down to one cycle's refill
    assert set(answers) == {0, 1}
