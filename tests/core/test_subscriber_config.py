"""Tests for Subscriber and GageConfig validation."""

import pytest

from repro.core import GageConfig, Subscriber
from repro.core.grps import ResourceVector


def test_subscriber_reservation_vector():
    sub = Subscriber("site1", reservation_grps=100)
    vec = sub.reservation_vector()
    assert vec == ResourceVector(1.0, 1.0, 200_000)


def test_subscriber_validation():
    with pytest.raises(ValueError):
        Subscriber("x", reservation_grps=-1)
    with pytest.raises(ValueError):
        Subscriber("x", reservation_grps=10, queue_capacity=0)


def test_config_defaults_match_paper():
    config = GageConfig()
    assert config.scheduling_cycle_s == 0.010  # §3.4: "10 msec"
    assert config.generic_request.cpu_s == 0.010


def test_config_validation():
    with pytest.raises(ValueError):
        GageConfig(scheduling_cycle_s=0)
    with pytest.raises(ValueError):
        GageConfig(accounting_cycle_s=-1)
    with pytest.raises(ValueError):
        GageConfig(credit_cap_cycles=0.5)
    with pytest.raises(ValueError):
        GageConfig(dispatch_window_s=0)
    with pytest.raises(ValueError):
        GageConfig(spare_policy="bogus")
    with pytest.raises(ValueError):
        GageConfig(estimator_policy="bogus")
    with pytest.raises(ValueError):
        GageConfig(node_policy="bogus")
    with pytest.raises(ValueError):
        GageConfig(estimator_alpha=0)
