"""Tests for the online placement / admission-control engine."""

import pytest

from repro.core.grps import GENERIC_REQUEST, ResourceVector
from repro.core.placement import (
    PLACEMENT_PROFIT,
    PLACEMENT_PROMOTE_FIRST,
    PLACEMENT_PROMOTE_LEAST_LOADED,
    PLACEMENT_UTILIZATION,
    PROFIT_MAX_UTILIZATION,
    PlacementEngine,
)
from repro.core.subscriber import Subscriber

#: 100 generic requests per second of capacity.
NODE_CAPACITY = ResourceVector(1.0, 1.0, 200_000.0)


def engine(k=1, objective=PLACEMENT_UTILIZATION, nodes=3):
    eng = PlacementEngine(k_backup=k, objective=objective)
    for index in range(nodes):
        eng.add_node("rpn{}".format(index), NODE_CAPACITY)
    return eng


def test_place_restricts_dispatch_to_primary():
    eng = engine()
    assert eng.place(Subscriber("a", reservation_grps=10))
    allowed = eng.allowed_nodes("a")
    assert allowed is not None and len(allowed) == 1
    embedding = eng.embedding_of("a")
    assert allowed == frozenset({embedding.primary})
    assert len(embedding.backups) == 1
    assert embedding.primary not in embedding.backups


def test_unknown_subscriber_is_unrestricted():
    eng = engine()
    assert eng.allowed_nodes("never-placed") is None


def test_admission_rejects_overcommit():
    # Each subscriber demands 60 of the node's 100 GRPS; with k=1 every
    # embedding reserves 60 on a second node too, so two subscribers
    # exhaust both dimensions of a 2-node cluster and the third offer
    # must be rejected with nothing committed.
    eng = engine(k=1, nodes=2)
    assert eng.place(Subscriber("a", reservation_grps=60))
    fractions_before = eng.committed_fraction()
    assert not eng.place(Subscriber("b", reservation_grps=60))
    assert eng.committed_fraction() == fractions_before  # atomic reject
    assert eng.allowed_nodes("b") == frozenset()
    assert eng.stats.rejected == 1
    assert eng.stats.accepted == 1
    assert eng.stats.acceptance_ratio() == 0.5


def test_rejects_when_too_few_backup_nodes():
    eng = engine(k=2, nodes=2)  # k=2 needs 3 distinct nodes
    assert not eng.place(Subscriber("a", reservation_grps=1))
    assert eng.stats.rejected == 1


def test_k_zero_places_without_backups():
    eng = engine(k=0, nodes=1)
    assert eng.place(Subscriber("a", reservation_grps=10))
    assert eng.embedding_of("a").backups == []


def test_utilization_objective_packs_best_fit():
    eng = engine(k=0, objective=PLACEMENT_UTILIZATION, nodes=3)
    assert eng.place(Subscriber("a", reservation_grps=40))
    first = eng.embedding_of("a").primary
    # Best-fit: the second subscriber lands on the already-loaded node
    # (highest post-placement utilization that still fits).
    assert eng.place(Subscriber("b", reservation_grps=40))
    assert eng.embedding_of("b").primary == first


def test_profit_objective_spreads():
    eng = engine(k=0, objective=PLACEMENT_PROFIT, nodes=3)
    assert eng.place(Subscriber("a", reservation_grps=40))
    assert eng.place(Subscriber("b", reservation_grps=40))
    assert eng.embedding_of("a").primary != eng.embedding_of("b").primary


def test_profit_objective_refuses_nearly_full_nodes():
    eng = engine(k=0, objective=PLACEMENT_PROFIT, nodes=1)
    assert eng.place(
        Subscriber("a", reservation_grps=100 * PROFIT_MAX_UTILIZATION)
    )
    # The node still has headroom, but past the profit threshold the
    # marginal placement is refused (admission control by objective).
    assert not eng.place(Subscriber("b", reservation_grps=1))


def test_custom_objective_callable():
    eng = PlacementEngine(
        k_backup=0, custom_objective=lambda view, demand: -view.utilization()
    )
    eng.add_node("rpn0", NODE_CAPACITY)
    eng.add_node("rpn1", NODE_CAPACITY)
    assert eng.place(Subscriber("a", reservation_grps=30))
    assert eng.place(Subscriber("b", reservation_grps=30))
    # Least-utilized-wins custom objective spreads like profit.
    assert eng.embedding_of("a").primary != eng.embedding_of("b").primary


def test_release_frees_capacity():
    eng = engine(k=1, nodes=2)
    assert eng.place(Subscriber("a", reservation_grps=60))
    assert not eng.place(Subscriber("b", reservation_grps=60))
    assert eng.release("a")
    assert eng.allowed_nodes("a") is None
    assert eng.committed_fraction() == 0.0
    assert eng.place(Subscriber("b2", reservation_grps=60))


def test_release_unknown_is_noop():
    eng = engine()
    assert not eng.release("ghost")


def test_node_death_promotes_to_reserved_backup():
    eng = engine(k=1, nodes=3)
    assert eng.place(Subscriber("a", reservation_grps=50))
    embedding = eng.embedding_of("a")
    primary, backup = embedding.primary, embedding.backups[0]
    report = eng.on_node_death(primary)
    assert report.promoted == ["a"]
    assert report.violated == []
    assert eng.stats.violations == 0
    assert eng.allowed_nodes("a") == frozenset({backup})
    # The promotion consumed the reservation and re-reserved a new
    # backup on the remaining live node.
    new_embedding = eng.embedding_of("a")
    assert new_embedding.primary == backup
    assert len(new_embedding.backups) == 1
    assert new_embedding.backups[0] not in (primary, backup)


def test_single_death_never_violates_with_k1_even_when_full():
    # Fill a 3-node cluster so every node carries primaries AND backup
    # reservations, then kill one node: because backup reservations are
    # summed per node (never statistically shared), every promotion
    # fits and zero guarantees break.
    eng = engine(k=1, nodes=3)
    placed = []
    index = 0
    while True:
        name = "s{}".format(index)
        if not eng.place(Subscriber(name, reservation_grps=20)):
            break
        placed.append(name)
        index += 1
    assert len(placed) >= 2
    report = eng.on_node_death("rpn0")
    assert report.violated == []
    assert eng.stats.violations == 0
    for name in placed:
        allowed = eng.allowed_nodes(name)
        assert allowed is not None and len(allowed) == 1
        assert "rpn0" not in allowed


def test_death_without_backup_counts_violation():
    eng = engine(k=0, nodes=1)
    assert eng.place(Subscriber("a", reservation_grps=10))
    report = eng.on_node_death("rpn0")
    assert report.violated == ["a"]
    assert eng.stats.violations == 1
    assert eng.allowed_nodes("a") == frozenset()


def test_backup_on_dead_node_re_reserves_elsewhere():
    eng = engine(k=1, nodes=3)
    assert eng.place(Subscriber("a", reservation_grps=10))
    embedding = eng.embedding_of("a")
    backup = embedding.backups[0]
    eng.on_node_death(backup)
    refreshed = eng.embedding_of("a")
    assert refreshed.primary == embedding.primary
    assert len(refreshed.backups) == 1
    assert refreshed.backups[0] != backup
    assert eng.stats.reembedded == 1


def test_degraded_when_no_replacement_backup():
    eng = engine(k=1, nodes=2)
    assert eng.place(Subscriber("a", reservation_grps=10))
    backup = eng.embedding_of("a").backups[0]
    report = eng.on_node_death(backup)
    # Only the primary survives: no third node to re-reserve on.
    assert report.degraded == ["a"]
    assert eng.stats.degraded == 1
    assert eng.embedding_of("a").backups == []


def test_recovery_restores_capacity():
    eng = engine(k=0, nodes=1)
    assert eng.place(Subscriber("a", reservation_grps=10))
    eng.on_node_death("rpn0")
    assert not eng.place(Subscriber("b", reservation_grps=10))
    eng.on_node_recovery("rpn0")
    assert eng.place(Subscriber("c", reservation_grps=10))


def test_double_place_raises():
    eng = engine()
    assert eng.place(Subscriber("a", reservation_grps=1))
    with pytest.raises(RuntimeError):
        eng.place(Subscriber("a", reservation_grps=1))


def test_rejects_unknown_objective():
    with pytest.raises(ValueError):
        PlacementEngine(objective="nonsense")
    with pytest.raises(ValueError):
        PlacementEngine(k_backup=-1)


def _two_tier_engine(promote_policy):
    # "prim" and "b1" are small (100 GRPS), "b2" is big (300 GRPS): the
    # same absolute reservations utilize b2 three times less.
    eng = PlacementEngine(k_backup=2, promote_policy=promote_policy)
    eng.add_node("prim", NODE_CAPACITY)
    eng.add_node("b1", NODE_CAPACITY)
    eng.add_node("b2", ResourceVector(3.0, 3.0, 600_000.0))
    # Best-fit primaries tie-break to insertion order, so both land on
    # "prim"; backups sort least-utilized-first.
    assert eng.place(Subscriber("s1", reservation_grps=50))
    assert eng.place(Subscriber("s2", reservation_grps=10))
    assert eng.embedding_of("s1").primary == "prim"
    assert eng.embedding_of("s2").primary == "prim"
    assert eng.embedding_of("s1").backups == ["b1", "b2"]
    assert eng.embedding_of("s2").backups == ["b2", "b1"]
    return eng


def test_promotion_picks_the_least_loaded_backup():
    # At death time b1 is 60% utilized (both reservations on 100 GRPS)
    # and b2 only 20% (same 60 on 300 GRPS): the default policy must
    # promote onto b2 even though s1 reserved b1 first.
    eng = _two_tier_engine(PLACEMENT_PROMOTE_LEAST_LOADED)
    report = eng.on_node_death("prim")
    assert report.violated == []
    assert sorted(report.promoted) == ["s1", "s2"]
    assert eng.embedding_of("s1").primary == "b2"
    assert eng.embedding_of("s2").primary == "b2"


def test_promotion_first_policy_is_the_legacy_scan():
    eng = _two_tier_engine(PLACEMENT_PROMOTE_FIRST)
    report = eng.on_node_death("prim")
    assert report.violated == []
    # Legacy: whatever backup was reserved first wins, load unseen.
    assert eng.embedding_of("s1").primary == "b1"
    assert eng.embedding_of("s2").primary == "b2"


def test_repeated_deaths_keep_rekeyed_reservations():
    # After the first promotion the surviving backup's reservation is
    # re-keyed to the new primary, so a second death still finds it and
    # promotes without violating any guarantee.
    eng = _two_tier_engine(PLACEMENT_PROMOTE_LEAST_LOADED)
    eng.on_node_death("prim")
    assert eng.embedding_of("s1").backups == ["b1"]
    report = eng.on_node_death("b2")
    assert report.violated == []
    assert sorted(report.promoted) == ["s1", "s2"]
    assert eng.embedding_of("s1").primary == "b1"
    assert eng.embedding_of("s2").primary == "b1"
    assert eng.stats.violations == 0
    # b1 now carries both promoted demands as primary use.
    view = eng.node_view("b1")
    assert view.committed.in_generic_requests(GENERIC_REQUEST) == pytest.approx(60.0)


def test_promotion_rejects_unknown_policy():
    with pytest.raises(ValueError):
        PlacementEngine(promote_policy="coin_flip")


def test_backup_reservations_are_summed_not_shared():
    # Two 40-GRPS primaries on different nodes both backing up on the
    # same third node must reserve 80 there — so a 30-GRPS primary no
    # longer fits that node.
    eng = PlacementEngine(k_backup=1)
    eng.add_node("p1", NODE_CAPACITY)
    eng.add_node("p2", NODE_CAPACITY)
    eng.add_node("shared", ResourceVector(0.85, 0.85, 170_000.0))
    assert eng.place(Subscriber("a", reservation_grps=40))
    assert eng.place(Subscriber("b", reservation_grps=40))
    view = eng.node_view("shared")
    reserved_grps = view.committed.in_generic_requests(GENERIC_REQUEST)
    assert reserved_grps == pytest.approx(80.0)
