"""Subscriber churn through the primary RDN, with and without placement."""

import pytest

from repro.core import GageConfig, PrimaryRDN, Subscriber
from repro.core.grps import ResourceVector
from repro.core.simulation import default_rpn_capacity
from repro.net import IPAddress, MACAddress, NIC, Switch
from repro.sim import Environment
from repro.workload import WebRequest

CLUSTER_IP = IPAddress("10.0.0.100")
RDN_MAC = MACAddress("02:00:00:00:00:64")
RPN_MAC = MACAddress("02:00:00:00:01:01")
RPN_IP = IPAddress("10.0.1.1")


def build_rdn(env, subscribers=None, config=None, rpns=1):
    rdn = PrimaryRDN(
        env,
        config or GageConfig(),
        CLUSTER_IP,
        subscribers if subscribers is not None else [Subscriber("site1", 100)],
    )
    switch = Switch(env, ports=4)
    nic = NIC(env, RDN_MAC, name="rdn.eth0")
    switch.attach(nic.iface)
    rdn.attach_nic(nic)
    for index in range(rpns):
        rdn.add_rpn(
            "rpn{}".format(index), default_rpn_capacity(), mac=RPN_MAC, ip=RPN_IP
        )
    return rdn


def test_register_subscriber_mid_run():
    env = Environment()
    rdn = build_rdn(env)
    assert not rdn.submit_request("late", "req")
    assert rdn.register_subscriber(Subscriber("late", reservation_grps=50))
    assert rdn.submit_request("late", "req")
    assert len(rdn.queues.get("late")) == 1
    assert rdn.classifier.classify_payload(WebRequest("late", "/x", 100)) == "late"


def test_register_subscriber_with_extra_hosts():
    env = Environment()
    rdn = build_rdn(env)
    assert rdn.register_subscriber(
        Subscriber("acme", 50), hosts=["www.acme.com", "acme.com"]
    )
    assert (
        rdn.classifier.classify_payload(WebRequest("www.acme.com", "/x", 100))
        == "acme"
    )
    # The bare name was not auto-bound when explicit hosts were given.
    assert rdn.classifier.classify_payload(WebRequest("acme", "/x", 100)) is None


def test_register_duplicate_raises():
    env = Environment()
    rdn = build_rdn(env)
    with pytest.raises(RuntimeError):
        rdn.register_subscriber(Subscriber("site1", 10))


def test_deregister_subscriber_stops_service():
    env = Environment()
    rdn = build_rdn(env)
    assert rdn.deregister_subscriber("site1")
    assert not rdn.deregister_subscriber("site1")  # idempotent
    assert not rdn.submit_request("site1", "req")
    assert rdn.classifier.classify_payload(WebRequest("site1", "/x", 100)) is None


def test_deregister_with_queued_requests_keeps_conservation():
    env = Environment()
    rdn = build_rdn(env)
    rdn.flow_dispatch = lambda req, rpn, sub: None
    for i in range(5):
        assert rdn.submit_request("site1", "req-{}".format(i))
    rdn.scheduler.run_cycle()  # put some predictions in flight
    assert rdn.deregister_subscriber("site1")
    delta = rdn.accounting.conservation_delta()
    assert abs(delta.cpu_s) < 1e-9
    assert abs(delta.disk_s) < 1e-9
    assert abs(delta.net_bytes) < 1e-6


def test_id_reuse_after_churn():
    env = Environment()
    rdn = build_rdn(env, subscribers=[Subscriber("a", 100), Subscriber("b", 100)])
    rdn.flow_dispatch = lambda req, rpn, sub: None
    rdn.deregister_subscriber("a")
    assert rdn.register_subscriber(Subscriber("c", reservation_grps=100))
    assert rdn.submit_request("c", "req")
    decisions = rdn.scheduler.run_cycle()
    assert {d.subscriber for d in decisions} == {"c"}


# -- with the placement layer on ---------------------------------------------


def placement_config(**overrides):
    overrides.setdefault("placement_k_backup", 0)
    return GageConfig(placement_policy="utilization", **overrides)


def test_constructor_subscribers_placed_when_first_rpn_joins():
    env = Environment()
    rdn = build_rdn(
        env,
        subscribers=[Subscriber("site1", 50)],
        config=placement_config(),
        rpns=1,
    )
    assert rdn.placement is not None
    assert rdn.placement.allowed_nodes("site1") == frozenset({"rpn0"})
    assert rdn._placement_deferred == []


def test_admission_rejects_unplaceable_reservation():
    env = Environment()
    # One 100-GRPS node, 80 already reserved: a 50-GRPS newcomer must be
    # rejected and leave no trace in queues/accounting/classifier.
    rdn = build_rdn(
        env, subscribers=[Subscriber("site1", 80)], config=placement_config()
    )
    assert not rdn.register_subscriber(Subscriber("greedy", reservation_grps=50))
    assert "greedy" not in rdn.queues
    assert rdn.accounting.get("greedy") is None
    assert rdn.classifier.classify_payload(WebRequest("greedy", "/x", 100)) is None
    assert rdn.placement.stats.rejected == 1
    # A modest newcomer still fits.
    assert rdn.register_subscriber(Subscriber("modest", reservation_grps=10))


def test_rejected_constructor_subscriber_retries_on_new_node():
    env = Environment()
    rdn = build_rdn(
        env,
        subscribers=[Subscriber("big1", 80), Subscriber("big2", 80)],
        config=placement_config(),
        rpns=1,
    )
    # Only one fits on the single 100-GRPS node; the other stays deferred.
    assert len(rdn._placement_deferred) == 1
    deferred_name = rdn._placement_deferred[0].name
    assert rdn.placement.allowed_nodes(deferred_name) == frozenset()
    rdn.add_rpn("rpn1", default_rpn_capacity(), mac=RPN_MAC, ip=RPN_IP)
    assert rdn._placement_deferred == []
    assert rdn.placement.allowed_nodes(deferred_name) == frozenset({"rpn1"})


def test_node_death_promotes_embedding_with_backup():
    env = Environment()
    rdn = build_rdn(
        env,
        subscribers=[Subscriber("site1", 50)],
        config=placement_config(placement_k_backup=1),
        rpns=2,
    )
    embedding = rdn.placement.embedding_of("site1")
    primary, backup = embedding.primary, embedding.backups[0]
    rdn._on_node_death(primary)
    assert rdn.placement.allowed_nodes("site1") == frozenset({backup})
    assert rdn.placement.stats.violations == 0


def test_deregister_releases_embedded_capacity():
    env = Environment()
    rdn = build_rdn(
        env, subscribers=[Subscriber("site1", 80)], config=placement_config()
    )
    assert not rdn.register_subscriber(Subscriber("late", reservation_grps=50))
    assert rdn.deregister_subscriber("site1")
    assert rdn.register_subscriber(Subscriber("late2", reservation_grps=50))
    assert rdn.placement.allowed_nodes("late2") == frozenset({"rpn0"})
