"""Unit tests of the RDN's heartbeat failure detector (flow transport).

The accounting stream doubles as the heartbeat: K consecutive missed
accounting cycles declare a node dead.  Detection must unwind the dead
node's accounting state, re-enqueue its in-flight requests, and re-admit
the node when its reports resume.
"""

from repro.core import GageConfig, PrimaryRDN, Subscriber
from repro.core.feedback import AccountingMessage, RPNUsageReport
from repro.core.grps import ResourceVector
from repro.core.metrics import NODE_DOWN, NODE_UP, REQUESTS_REQUEUED
from repro.core.simulation import default_rpn_capacity
from repro.net import IPAddress
from repro.sim import Environment
from repro.workload import WebRequest

CLUSTER_IP = IPAddress("10.0.0.100")
K = 2
CYCLE = 0.1
GENERIC = ResourceVector(0.010, 0.010, 2000.0)


def build_rdn(env, num_rpns=1, heartbeat_miss_limit=K):
    config = GageConfig(
        heartbeat_miss_limit=heartbeat_miss_limit, accounting_cycle_s=CYCLE
    )
    rdn = PrimaryRDN(
        env, config, CLUSTER_IP, [Subscriber("a", 100, queue_capacity=64)]
    )
    dispatched = []
    rdn.flow_dispatch = lambda req, rpn, sub: dispatched.append((rpn, req))
    for index in range(num_rpns):
        rdn.add_rpn("rpn{}".format(index), default_rpn_capacity())
    return rdn, dispatched


def message(rpn_id, at_s, completed=0, usage=ResourceVector.ZERO):
    per_subscriber = (
        {"a": RPNUsageReport(usage, completed)} if completed else {}
    )
    return AccountingMessage(
        rpn_id=rpn_id,
        cycle_start_s=at_s - CYCLE,
        cycle_end_s=at_s,
        total_usage=usage,
        per_subscriber=per_subscriber,
    )


def test_node_that_never_reported_is_never_suspected():
    env = Environment()
    rdn, _dispatched = build_rdn(env)
    env.run(until=2.0)  # way past K cycles of silence
    assert rdn.node_scheduler.node("rpn0").up
    assert rdn.failures.count(NODE_DOWN) == 0


def test_detector_disabled_when_limit_is_none():
    env = Environment()
    rdn, _dispatched = build_rdn(env, heartbeat_miss_limit=None)
    env.call_later(0.1, rdn.on_feedback, message("rpn0", 0.1))
    env.run(until=2.0)
    assert rdn.node_scheduler.node("rpn0").up
    assert rdn.failures.count(NODE_DOWN) == 0


def test_silence_after_first_report_declares_death():
    env = Environment()
    rdn, _dispatched = build_rdn(env)
    env.call_later(0.1, rdn.on_feedback, message("rpn0", 0.1))
    env.run(until=1.0)
    status = rdn.node_scheduler.node("rpn0")
    assert not status.up
    down = rdn.failures.first(NODE_DOWN, "rpn0")
    assert down is not None
    # Last report at 0.1; death no earlier than K cycles of silence and
    # no later than K+1 cycles (plus one scheduling cycle of slack).
    assert 0.1 + K * CYCLE < down.at_s <= 0.1 + (K + 1) * CYCLE + 0.011


def test_death_requeues_in_flight_and_restores_balances():
    env = Environment()
    rdn, dispatched = build_rdn(env)
    for _ in range(3):
        rdn.submit_request("a", WebRequest("a", "/x.html", 2000))
    env.run(until=0.06)
    assert len(dispatched) == 3  # all dispatched to the only node
    # One request completes; then the node goes silent forever.
    rdn.on_feedback(message("rpn0", 0.1, completed=1, usage=GENERIC))
    env.run(until=1.0)
    assert not rdn.node_scheduler.node("rpn0").up
    queue = rdn.queues.get("a")
    assert queue.requeued == 2  # the two unfinished requests came back
    assert len(queue) == 2  # and stay queued: no healthy node exists
    requeue_event = rdn.failures.first(REQUESTS_REQUEUED, "rpn0")
    assert requeue_event is not None and requeue_event.detail == 2
    account = rdn.accounting.account("a")
    # Every prediction charged against the dead node was backed out.
    assert account.pending.get("rpn0") in (None, [])
    assert account.estimated.get("rpn0", ResourceVector.ZERO) == ResourceVector.ZERO
    assert not (account.balance - GENERIC).any_negative  # credit restored
    assert len(dispatched) == 3  # nothing dispatched while down


def test_resumed_reports_readmit_node_and_work_drains():
    env = Environment()
    rdn, dispatched = build_rdn(env)
    for _ in range(3):
        rdn.submit_request("a", WebRequest("a", "/x.html", 2000))
    env.call_later(0.1, rdn.on_feedback, message("rpn0", 0.1, completed=1, usage=GENERIC))
    env.run(until=1.0)
    assert not rdn.node_scheduler.node("rpn0").up
    before = len(dispatched)
    # The node restarts and reports again (an empty, idle-cycle report).
    rdn.on_feedback(message("rpn0", 1.0))
    assert rdn.node_scheduler.node("rpn0").up
    assert rdn.failures.first(NODE_UP, "rpn0") is not None
    env.run(until=1.5)
    assert len(dispatched) > before  # requeued work re-dispatched


def test_healthy_reporting_node_stays_up():
    env = Environment()
    rdn, _dispatched = build_rdn(env)
    for tick in range(1, 20):
        env.call_later(tick * CYCLE, rdn.on_feedback, message("rpn0", tick * CYCLE))
    env.run(until=2.0)
    assert rdn.node_scheduler.node("rpn0").up
    assert rdn.failures.count(NODE_DOWN) == 0


def test_detection_latency_helper():
    env = Environment()
    rdn, _dispatched = build_rdn(env)
    env.call_later(0.1, rdn.on_feedback, message("rpn0", 0.1))
    env.run(until=1.0)
    latency = rdn.failures.detection_latency_s(0.1, "rpn0")
    assert latency is not None
    assert latency <= (K + 1) * CYCLE + 0.011


def test_crash_recovery_cycle_conserves_credit():
    """Death → recovery → re-dispatch → completion leaks no credit.

    The dead node's predictions are restored exactly once; after the
    node recovers and the requeued work completes, every prediction is
    resolved and the balance sits at (or below) the hoard cap — a double
    restore would leave it strictly above, since :meth:`refill` keeps
    over-cap balances instead of clipping them.
    """
    env = Environment()
    rdn, dispatched = build_rdn(env)
    for _ in range(3):
        rdn.submit_request("a", WebRequest("a", "/x.html", 2000))
    # One healthy, idle heartbeat at 0.1, then silence until the node
    # "restarts" at 1.0 and reports steadily (call_later is relative, so
    # everything is scheduled up front from t=0).
    env.call_later(0.1, rdn.on_feedback, message("rpn0", 0.1))
    for tick in range(10, 16):
        env.call_later(tick * CYCLE, rdn.on_feedback, message("rpn0", tick * CYCLE))
    env.run(until=0.06)
    assert len(dispatched) == 3
    env.run(until=1.0)  # silence → death: requeue + prediction restore
    assert rdn.failures.count(NODE_DOWN) == 1  # processed exactly once
    account = rdn.accounting.account("a")
    assert account.pending.get("rpn0") in (None, [])
    env.run(until=1.55)
    assert rdn.failures.count(NODE_DOWN) == 1  # no flapping
    assert rdn.failures.count(NODE_UP) == 1
    assert len(dispatched) == 6  # all three re-dispatched after recovery
    rdn.on_feedback(message("rpn0", 1.6, completed=3, usage=GENERIC.scaled(3)))
    assert account.reported_complete == 3
    assert not account.pending.get("rpn0")  # every prediction resolved
    assert account.estimated.get("rpn0", ResourceVector.ZERO) == ResourceVector.ZERO
    # Reservation 100 GRPS, 0.01s scheduling cycle, 4-cycle cap.
    cap = ResourceVector(0.04, 0.04, 8000.0)
    slack = ResourceVector(1e-9, 1e-9, 1e-3)
    assert not ((cap - account.balance) + slack).any_negative


def test_completion_after_death_does_not_double_credit():
    """A falsely-suspected node reporting completions must not mint credit.

    At death the in-flight predictions were already restored to the
    balance; when the 'dead' node turns out alive and reports those
    requests complete, only the measured usage may be charged —
    restoring the predictions a second time would create credit from
    nothing.
    """
    env = Environment()
    rdn, dispatched = build_rdn(env)
    for _ in range(2):
        rdn.submit_request("a", WebRequest("a", "/x.html", 2000))
    env.run(until=0.06)
    assert len(dispatched) == 2
    rdn.on_feedback(message("rpn0", 0.1))
    env.run(until=1.0)  # death: predictions restored, requests requeued
    account = rdn.accounting.account("a")
    balance_at_death = account.balance
    # The partitioned node reappears, reporting both requests done.
    rdn.on_feedback(message("rpn0", 1.0, completed=2, usage=GENERIC.scaled(2)))
    assert rdn.failures.first(NODE_UP, "rpn0") is not None
    assert account.balance == balance_at_death - GENERIC.scaled(2)
    assert account.reported_complete == 2
