"""O(active) scheduler walk: settling, waking, and eager equivalence."""

from repro.core import (
    GageConfig,
    NodeScheduler,
    RDNAccounting,
    RequestScheduler,
    Subscriber,
    SubscriberQueues,
)
from repro.core.feedback import AccountingMessage, RPNUsageReport
from repro.core.grps import GENERIC_REQUEST, ResourceVector

#: An RPN that can deliver 100 generic requests per second.
RPN_CAPACITY = ResourceVector(1.0, 1.0, 12_500_000)


def build(subscribers, rpns=4, config=None, shared_table=True):
    """Assemble a scheduler; shared_table selects the O(active) path."""
    config = config or GageConfig()
    queues = SubscriberQueues()
    accounting = (
        RDNAccounting(table=queues.table) if shared_table else RDNAccounting()
    )
    nodes = NodeScheduler(policy=config.node_policy, window_s=config.dispatch_window_s)
    for sub in subscribers:
        queues.register(sub)
        accounting.register(sub)
    for index in range(rpns):
        nodes.add_node("rpn{}".format(index), RPN_CAPACITY)
    dispatched = []
    scheduler = RequestScheduler(
        config,
        queues,
        accounting,
        nodes,
        dispatch_fn=lambda req, rpn, name, predicted: dispatched.append((req, rpn, name)),
    )
    return scheduler, queues, accounting, nodes, dispatched


def fill(queues, name, count):
    queue = queues.get(name)
    for i in range(count):
        queue.offer("{}-{}".format(name, i))


def feedback(scheduler, rpn_id, usage_per_request, completed_by_name, now=1.0):
    message = AccountingMessage(
        rpn_id=rpn_id,
        cycle_start_s=now - 0.1,
        cycle_end_s=now,
        total_usage=ResourceVector.ZERO,
        per_subscriber={
            name: RPNUsageReport(usage_per_request.scaled(count), count)
            for name, count in completed_by_name.items()
        },
    )
    scheduler.apply_feedback(message)


def subs(count, reservation_grps=100):
    # 100 GRPS => one generic request of credit per cycle, so the hoard
    # cap (4 cycles' worth) is reached — and idle subscribers settle —
    # within a handful of cycles.
    return [
        Subscriber("sub{:04d}".format(i), reservation_grps=reservation_grps)
        for i in range(count)
    ]


def test_lazy_mode_requires_shared_table():
    lazy, *_ = build(subs(2), shared_table=True)
    eager, *_ = build(subs(2), shared_table=False)
    assert lazy._lazy
    assert not eager._lazy


def test_idle_subscribers_settle_out_of_the_walk():
    scheduler, queues, _acc, _nodes, _d = build(subs(100))
    assert scheduler.active_count() == 100
    # One cycle caps every idle balance at the hoard cap; a second cycle
    # confirms the fixed point and settles everyone.
    for _ in range(10):
        scheduler.run_cycle()
    assert scheduler.active_count() == 0


def test_only_backlogged_subscribers_stay_active():
    scheduler, queues, _acc, _nodes, dispatched = build(subs(50), rpns=1)
    for _ in range(10):
        scheduler.run_cycle()
    assert scheduler.active_count() == 0
    fill(queues, "sub0001", 1_000)  # more than its credit can drain
    scheduler.run_cycle()
    assert scheduler.active_count() == 1
    assert dispatched  # the woken subscriber actually dispatched


def test_offer_wakes_a_settled_subscriber():
    scheduler, queues, _acc, _nodes, dispatched = build(subs(10))
    for _ in range(10):
        scheduler.run_cycle()
    assert scheduler.active_count() == 0
    fill(queues, "sub0003", 1)
    scheduler.run_cycle()
    assert ("sub0003-0", dispatched[-1][1], "sub0003") == dispatched[-1]


def test_feedback_wakes_a_settled_subscriber():
    scheduler, queues, _acc, _nodes, _d = build(subs(10))
    for _ in range(10):
        scheduler.run_cycle()
    assert scheduler.active_count() == 0
    feedback(scheduler, "rpn0", GENERIC_REQUEST, {"sub0005": 1})
    assert scheduler.active_count() == 1


def test_estimator_access_wakes_a_settled_subscriber():
    scheduler, queues, _acc, _nodes, _d = build(subs(10))
    for _ in range(10):
        scheduler.run_cycle()
    assert scheduler.active_count() == 0
    scheduler.estimator("sub0007")
    assert scheduler.active_count() == 1


def test_lazy_and_eager_make_identical_decisions():
    """The settled-subscriber skip must be a behavioral no-op."""

    def run(shared_table):
        scheduler, queues, _acc, _nodes, dispatched = build(
            subs(20, reservation_grps=50),
            rpns=4,
            shared_table=shared_table,
        )
        trace = []
        for cycle in range(200):
            # Deterministic, bursty workload: different subscribers go
            # active/idle at different times.
            if cycle % 7 == 0:
                fill(queues, "sub{:04d}".format((cycle // 7) % 20), 5)
            if cycle % 13 == 0:
                fill(queues, "sub0002", 3)
            decisions = scheduler.run_cycle()
            trace.extend(
                (cycle, d.subscriber, d.rpn_id, d.spare) for d in decisions
            )
            if cycle % 11 == 0 and decisions:
                feedback(
                    scheduler,
                    decisions[0].rpn_id,
                    GENERIC_REQUEST,
                    {decisions[0].subscriber: 1},
                    now=float(cycle),
                )
        return trace

    assert run(shared_table=True) == run(shared_table=False)


def test_settled_balances_match_eager_balances():
    def balances(shared_table):
        scheduler, queues, accounting, _nodes, _d = build(
            subs(10), shared_table=shared_table
        )
        fill(queues, "sub0000", 50)
        for _ in range(30):
            scheduler.run_cycle()
        return {
            name: accounting.account(name).balance
            for name in ("sub0000", "sub0004", "sub0009")
        }

    assert balances(shared_table=True) == balances(shared_table=False)


def test_churn_while_settled():
    """Unregistering a settled subscriber and reusing its id is safe."""
    scheduler, queues, accounting, _nodes, dispatched = build(subs(10))
    for _ in range(10):
        scheduler.run_cycle()
    assert scheduler.active_count() == 0
    accounting.unregister("sub0004")
    queues.unregister("sub0004")
    newcomer = Subscriber("fresh", reservation_grps=100)
    queues.register(newcomer)  # reuses sub0004's interned id
    accounting.register(newcomer)
    fill(queues, "fresh", 2)
    decisions = scheduler.run_cycle()
    assert {d.subscriber for d in decisions} == {"fresh"}
