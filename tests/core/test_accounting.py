"""Tests for RDN-side accounting and feedback messages."""

import pytest

from repro.core import RDNAccounting, Subscriber
from repro.core.feedback import AccountingMessage, RPNUsageReport
from repro.core.grps import GENERIC_REQUEST, ResourceVector


def make_accounting():
    accounting = RDNAccounting()
    accounting.register(Subscriber("a", 100))
    accounting.register(Subscriber("b", 50))
    return accounting


def message(rpn="rpn0", **reports):
    return AccountingMessage(
        rpn_id=rpn,
        cycle_start_s=0.0,
        cycle_end_s=0.1,
        total_usage=ResourceVector.ZERO,
        per_subscriber={
            name: RPNUsageReport(usage, count) for name, (usage, count) in reports.items()
        },
    )


def test_register_and_lookup():
    accounting = make_accounting()
    assert len(accounting) == 2
    assert accounting.account("a").subscriber.name == "a"
    assert accounting.get("missing") is None
    with pytest.raises(RuntimeError):
        accounting.register(Subscriber("a", 1))
    assert [acct.subscriber.name for acct in accounting.accounts()] == ["a", "b"]


def test_refill_caps_positive_only():
    accounting = make_accounting()
    cap = ResourceVector(0.04, 0.04, 8000)
    for _ in range(10):
        accounting.refill("a", ResourceVector(0.01, 0.01, 2000), cap)
    assert accounting.account("a").balance == cap

    # Debt is not forgiven by the cap.
    accounting.account("a").balance = ResourceVector(-1.0, -1.0, -1000)
    accounting.refill("a", ResourceVector(0.01, 0.01, 2000), cap)
    balance = accounting.account("a").balance
    assert balance.cpu_s == pytest.approx(-0.99)


def test_dispatch_updates_balance_and_estimates():
    accounting = make_accounting()
    accounting.on_dispatch("a", "rpn0", GENERIC_REQUEST)
    accounting.on_dispatch("a", "rpn1", GENERIC_REQUEST)
    account = accounting.account("a")
    assert account.balance.cpu_s == pytest.approx(-0.02)
    assert account.estimated["rpn0"].cpu_s == pytest.approx(0.01)
    assert account.estimated_total().cpu_s == pytest.approx(0.02)
    assert account.dispatched == 2


def test_apply_message_replaces_prediction_with_measurement():
    accounting = make_accounting()
    accounting.on_dispatch("a", "rpn0", GENERIC_REQUEST)
    actual = ResourceVector(0.002, 0.001, 500)
    backed = accounting.apply_message(message(a=(actual, 1)))
    account = accounting.account("a")
    # Net effect on the balance: -actual (prediction fully backed out).
    assert account.balance.cpu_s == pytest.approx(-0.002)
    assert account.estimated["rpn0"] == ResourceVector.ZERO
    assert backed["a"].cpu_s == pytest.approx(0.01)
    assert account.reported_complete == 1


def test_apply_message_for_unknown_subscriber_is_ignored():
    accounting = make_accounting()
    backed = accounting.apply_message(message(zz=(GENERIC_REQUEST, 1)))
    assert backed == {}


def test_apply_message_with_more_completions_than_pending():
    """A count larger than pending predictions pops only what exists."""
    accounting = make_accounting()
    accounting.on_dispatch("a", "rpn0", GENERIC_REQUEST)
    backed = accounting.apply_message(message(a=(GENERIC_REQUEST.scaled(3), 3)))
    assert backed["a"].cpu_s == pytest.approx(0.01)  # only one pending


def test_apply_message_pops_fifo_order():
    accounting = make_accounting()
    first = ResourceVector(0.01, 0.01, 2000)
    second = ResourceVector(0.02, 0.02, 4000)
    accounting.on_dispatch("a", "rpn0", first)
    accounting.on_dispatch("a", "rpn0", second)
    backed = accounting.apply_message(message(a=(first, 1)))
    assert backed["a"].cpu_s == pytest.approx(0.01)  # oldest prediction
    assert accounting.account("a").estimated["rpn0"].cpu_s == pytest.approx(0.02)


def test_usage_log_collected():
    accounting = make_accounting()
    accounting.on_dispatch("a", "rpn0", GENERIC_REQUEST)
    accounting.apply_message(message(a=(GENERIC_REQUEST, 1)))
    assert accounting.usage_log == [(0.1, "a", GENERIC_REQUEST)]
    accounting.keep_usage_log = False
    accounting.on_dispatch("a", "rpn0", GENERIC_REQUEST)
    accounting.apply_message(message(a=(GENERIC_REQUEST, 1)))
    assert len(accounting.usage_log) == 1


def test_report_per_request_average():
    report = RPNUsageReport(GENERIC_REQUEST.scaled(4), 4)
    assert report.per_request() == GENERIC_REQUEST
    empty = RPNUsageReport(ResourceVector.ZERO, 0)
    assert empty.per_request() == ResourceVector.ZERO


def test_message_cycle_length():
    msg = message()
    assert msg.cycle_length_s == pytest.approx(0.1)
