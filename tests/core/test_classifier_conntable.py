"""Tests for packet classification and the connection table."""

from repro.core import ConnectionTable, PacketClass, RequestClassifier
from repro.net import IPAddress, MACAddress, Packet, TCPFlags
from repro.net.conn import Quadruple
from repro.workload import WebRequest


def packet(flags=TCPFlags.ACK, payload=None, payload_len=0):
    return Packet(
        src_mac=MACAddress("02:00:00:00:00:01"),
        dst_mac=MACAddress("02:00:00:00:00:64"),
        src_ip=IPAddress("10.0.0.1"),
        dst_ip=IPAddress("10.0.0.100"),
        src_port=30000,
        dst_port=80,
        flags=flags,
        payload=payload,
        payload_len=payload_len,
    )


def test_syn_is_handshake_class():
    classifier = RequestClassifier()
    result = classifier.classify(packet(flags=TCPFlags.SYN))
    assert result.packet_class is PacketClass.HANDSHAKE


def test_request_payload_maps_to_subscriber():
    classifier = RequestClassifier()
    classifier.register_host("site1.example.com", "site1")
    req = WebRequest("site1.example.com", "/x.html", 1000)
    result = classifier.classify(packet(payload=req, payload_len=200))
    assert result.packet_class is PacketClass.REQUEST
    assert result.subscriber == "site1"


def test_unknown_host_payload_is_other():
    classifier = RequestClassifier()
    req = WebRequest("unknown.example.com", "/x.html", 1000)
    result = classifier.classify(packet(payload=req, payload_len=200))
    assert result.packet_class is PacketClass.OTHER
    assert classifier.unknown_subscriber == 1


def test_bare_ack_is_other():
    classifier = RequestClassifier()
    result = classifier.classify(packet(flags=TCPFlags.ACK))
    assert result.packet_class is PacketClass.OTHER


def test_fin_is_other():
    classifier = RequestClassifier()
    result = classifier.classify(packet(flags=TCPFlags.FIN | TCPFlags.ACK))
    assert result.packet_class is PacketClass.OTHER


def test_custom_extractor_for_other_services():
    """§3.6: classification can key on anything, e.g. a user ID."""
    classifier = RequestClassifier(host_extractor=lambda p: getattr(p, "user_id", None))

    class IMLogin:
        user_id = "alice"

    classifier.register_host("alice", "subscriber-alice")
    assert classifier.classify_payload(IMLogin()) == "subscriber-alice"


def test_subscriber_for_host():
    classifier = RequestClassifier()
    classifier.register_host("h1", "s1")
    assert classifier.subscriber_for_host("h1") == "s1"
    assert classifier.subscriber_for_host("h2") is None


def quad(port=30000):
    return Quadruple(IPAddress("10.0.0.1"), port, IPAddress("10.0.0.100"), 80)


def test_conntable_insert_lookup_remove():
    table = ConnectionTable()
    mac = MACAddress("02:00:00:00:01:01")
    table.insert(quad(), "rpn1", mac)
    assert len(table) == 1
    assert quad() in table
    entry = table.lookup(quad())
    assert entry.rpn_id == "rpn1"
    assert entry.rpn_mac == mac
    assert table.hits == 1
    assert table.lookup(quad(port=9)) is None
    assert table.misses == 1
    removed = table.remove(quad())
    assert removed.rpn_id == "rpn1"
    assert table.remove(quad()) is None
    assert len(table) == 0


def test_conntable_clear():
    table = ConnectionTable()
    table.insert(quad(1), "rpn1", MACAddress(1))
    table.insert(quad(2), "rpn2", MACAddress(2))
    table.clear()
    assert len(table) == 0
