"""Tests for the credit-based WRR request scheduler and node scheduler."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    GageConfig,
    NodeScheduler,
    RDNAccounting,
    RequestScheduler,
    Subscriber,
    SubscriberQueues,
)
from repro.core.feedback import AccountingMessage, RPNUsageReport
from repro.core.grps import GENERIC_REQUEST, ResourceVector

#: An RPN that can deliver 100 generic requests per second.
RPN_CAPACITY = ResourceVector(1.0, 1.0, 12_500_000)


def build(subscribers, rpns=4, config=None):
    """Assemble a scheduler over in-memory queues; returns the parts."""
    config = config or GageConfig()
    queues = SubscriberQueues()
    accounting = RDNAccounting()
    nodes = NodeScheduler(policy=config.node_policy, window_s=config.dispatch_window_s)
    for sub in subscribers:
        queues.register(sub)
        accounting.register(sub)
    for index in range(rpns):
        nodes.add_node("rpn{}".format(index), RPN_CAPACITY)
    dispatched = []
    scheduler = RequestScheduler(
        config,
        queues,
        accounting,
        nodes,
        dispatch_fn=lambda req, rpn, name, predicted: dispatched.append((req, rpn, name)),
    )
    return scheduler, queues, accounting, nodes, dispatched


def fill(queues, name, count):
    queue = queues.get(name)
    for i in range(count):
        queue.offer("{}-{}".format(name, i))


def feedback(scheduler, rpn_id, usage_per_request, completed_by_name, now=1.0):
    """Deliver one accounting message for completed requests."""
    message = AccountingMessage(
        rpn_id=rpn_id,
        cycle_start_s=now - 0.1,
        cycle_end_s=now,
        total_usage=ResourceVector.ZERO,
        per_subscriber={
            name: RPNUsageReport(usage_per_request.scaled(count), count)
            for name, count in completed_by_name.items()
        },
    )
    scheduler.apply_feedback(message)


def test_reserved_credit_limits_dispatch_rate():
    """A 100-GRPS subscriber gets exactly 1 generic request per 10ms cycle."""
    sub = Subscriber("a", reservation_grps=100)
    scheduler, queues, _acc, _nodes, dispatched = build([sub])
    fill(queues, "a", 50)
    decisions = scheduler.run_cycle()
    reserved = [d for d in decisions if not d.spare]
    assert len(reserved) == 1  # 100 GRPS * 0.01s = 1 request of credit


def test_credit_accumulates_when_idle_then_bursts_capped():
    sub = Subscriber("a", reservation_grps=100)
    config = GageConfig(credit_cap_cycles=4.0, spare_policy="none", dispatch_window_s=10.0)
    scheduler, queues, _acc, _nodes, dispatched = build([sub], config=config)
    for _ in range(10):  # 10 idle cycles; cap limits accumulation to 4
        scheduler.run_cycle()
    fill(queues, "a", 50)
    decisions = scheduler.run_cycle()
    # 4 cycles of accumulated credit + 1 fresh = 5 requests, but cap is
    # applied after refill, so exactly credit_cap worth dispatches.
    assert len(decisions) == 4


def test_dispatch_proportional_to_reservations():
    """Two saturated queues dispatch in proportion to reservations."""
    subs = [Subscriber("a", 200), Subscriber("b", 100)]
    # No feedback in this test, so use an effectively unlimited dispatch
    # window to keep the saturation throttle out of the way.
    config = GageConfig(spare_policy="none", dispatch_window_s=100.0)
    scheduler, queues, _acc, _nodes, dispatched = build(subs, rpns=8, config=config)
    fill(queues, "a", 10_000)
    fill(queues, "b", 10_000)
    for _ in range(100):  # one simulated second
        scheduler.run_cycle()
    by_name = {"a": 0, "b": 0}
    for _req, _rpn, name in dispatched:
        by_name[name] += 1
    assert by_name["a"] == pytest.approx(200, rel=0.05)
    assert by_name["b"] == pytest.approx(100, rel=0.05)


def test_spare_distributed_by_reservation():
    """Table 2's policy: spare shares proportional to reservations."""
    subs = [Subscriber("a", 250), Subscriber("b", 200)]
    scheduler, queues, _acc, _nodes, dispatched = build(subs, rpns=8)
    # Cluster capacity 800 GRPS, reserved 450, spare 350.
    fill(queues, "a", 100_000)
    fill(queues, "b", 100_000)
    for _ in range(100):
        scheduler.run_cycle()
    # Count spare dispatches from scheduler counters instead.
    assert scheduler.spare_dispatches > 0
    # Ratio check via accounting dispatch counts:
    a_total = sum(1 for _r, _p, n in dispatched if n == "a")
    b_total = sum(1 for _r, _p, n in dispatched if n == "b")
    assert a_total / b_total == pytest.approx(250 / 200, rel=0.15)


def test_spare_policy_none_serves_only_reservations():
    subs = [Subscriber("a", 100)]
    config = GageConfig(spare_policy="none")
    scheduler, queues, _acc, _nodes, dispatched = build(subs, rpns=8, config=config)
    fill(queues, "a", 10_000)
    for _ in range(100):
        scheduler.run_cycle()
    assert len(dispatched) <= 100 * 1 + 4  # reservation only (+cap burst)


def test_spare_policy_input_load_weighting():
    subs = [Subscriber("a", 50), Subscriber("b", 50)]
    config = GageConfig(spare_policy="input_load")
    scheduler, queues, _acc, _nodes, dispatched = build(subs, rpns=8, config=config)
    # b has 3x the arrivals of a.
    fill(queues, "a", 5_000)
    fill(queues, "b", 15_000)
    for _ in range(50):
        scheduler.run_cycle()
    a_total = sum(1 for _r, _p, n in dispatched if n == "a")
    b_total = sum(1 for _r, _p, n in dispatched if n == "b")
    assert b_total > a_total  # higher input load won more spare


def test_no_dispatch_when_cluster_saturated():
    """With predicted work filling every RPN's window, dispatch stalls."""
    sub = Subscriber("a", 400)
    config = GageConfig(dispatch_window_s=0.02)
    scheduler, queues, _acc, nodes, dispatched = build([sub], rpns=1, config=config)
    fill(queues, "a", 1_000)
    for _ in range(10):
        scheduler.run_cycle()
    # 1 RPN x 0.02s window / 0.01s per generic request = ~2 outstanding.
    assert len(dispatched) <= 3
    assert nodes.node("rpn0").outstanding.cpu_s <= 0.02 + 1e-9


def test_feedback_releases_outstanding_load():
    sub = Subscriber("a", 400)
    config = GageConfig(dispatch_window_s=0.02)
    scheduler, queues, _acc, nodes, dispatched = build([sub], rpns=1, config=config)
    fill(queues, "a", 1_000)
    scheduler.run_cycle()
    first_wave = len(dispatched)
    assert first_wave >= 1
    feedback(scheduler, "rpn0", GENERIC_REQUEST, {"a": first_wave})
    assert nodes.node("rpn0").outstanding == ResourceVector.ZERO
    scheduler.run_cycle()
    assert len(dispatched) > first_wave


def test_feedback_corrects_balance_with_measured_usage():
    """Cheaper-than-predicted requests refund the balance."""
    sub = Subscriber("a", 100)
    # One RPN so every dispatch (and hence every pending prediction)
    # lands on the node we report feedback from.
    scheduler, queues, accounting, _nodes, dispatched = build([sub], rpns=1)
    fill(queues, "a", 10)
    scheduler.run_cycle()
    count = len(dispatched)
    balance_before = accounting.account("a").balance
    cheap = ResourceVector(0.001, 0.0, 100)  # one tenth of a generic
    feedback(scheduler, dispatched[0][1], cheap, {"a": count})
    balance_after = accounting.account("a").balance
    # Refund: predicted (generic) backed out, cheap usage charged.
    refund = (GENERIC_REQUEST - cheap).scaled(count)
    assert balance_after.cpu_s == pytest.approx(balance_before.cpu_s + refund.cpu_s)


def test_estimator_learns_from_feedback():
    sub = Subscriber("a", 100)
    scheduler, queues, _acc, _nodes, dispatched = build([sub])
    fill(queues, "a", 10)
    scheduler.run_cycle()
    cheap = ResourceVector(0.001, 0.0, 100)
    feedback(scheduler, dispatched[0][1], cheap, {"a": len(dispatched)})
    predicted = scheduler.estimator("a").predict()
    assert predicted.cpu_s < GENERIC_REQUEST.cpu_s


def test_zero_reservation_subscriber_only_gets_spare():
    subs = [Subscriber("paid", 100), Subscriber("free", 0)]
    scheduler, queues, _acc, _nodes, dispatched = build(subs, rpns=2)
    fill(queues, "free", 1_000)
    scheduler.run_cycle()
    free_reserved = sum(
        1 for d in scheduler.run_cycle() if d.subscriber == "free" and not d.spare
    )
    assert free_reserved == 0


def test_least_load_balances_across_rpns():
    sub = Subscriber("a", 800)
    scheduler, queues, _acc, nodes, dispatched = build([sub], rpns=4)
    fill(queues, "a", 10_000)
    for _ in range(10):
        scheduler.run_cycle()
    per_rpn = {}
    for _req, rpn, _name in dispatched:
        per_rpn[rpn] = per_rpn.get(rpn, 0) + 1
    counts = sorted(per_rpn.values())
    assert len(counts) == 4
    assert counts[-1] - counts[0] <= 2  # near-perfect balance


def test_node_scheduler_round_robin_policy():
    nodes = NodeScheduler(policy="round_robin", window_s=10.0)
    for index in range(3):
        nodes.add_node("rpn{}".format(index), RPN_CAPACITY)
    picks = [nodes.pick(GENERIC_REQUEST) for _ in range(6)]
    assert picks == ["rpn0", "rpn1", "rpn2", "rpn0", "rpn1", "rpn2"]


def test_node_scheduler_random_policy_seeded():
    import random

    nodes = NodeScheduler(policy="random", window_s=10.0, rng=random.Random(1))
    for index in range(3):
        nodes.add_node("rpn{}".format(index), RPN_CAPACITY)
    picks = {nodes.pick(GENERIC_REQUEST) for _ in range(50)}
    assert picks == {"rpn0", "rpn1", "rpn2"}


def test_node_scheduler_locality_policy():
    """§3.6: same-directory requests map to the same node; the policy
    falls back to least-load when the preferred node is full."""
    from repro.core.node_scheduler import locality_key
    from repro.workload import WebRequest

    nodes = NodeScheduler(policy="locality", window_s=10.0)
    for index in range(4):
        nodes.add_node("rpn{}".format(index), RPN_CAPACITY)

    def req(path):
        return WebRequest("site1", path, 2000)

    # Same directory -> same node, stably.
    picks = {
        nodes.pick(GENERIC_REQUEST, request=req("/dir01/file{}".format(i)))
        for i in range(10)
    }
    assert len(picks) == 1
    # Different directories spread over the cluster.
    spread = {
        nodes.pick(GENERIC_REQUEST, request=req("/dir{:02d}/f".format(i)))
        for i in range(32)
    }
    assert len(spread) >= 3
    # Fallback: fill the preferred node; the pick moves elsewhere.
    preferred = nodes.pick(GENERIC_REQUEST, request=req("/dir01/x"))
    nodes.node(preferred).outstanding = RPN_CAPACITY.scaled(100.0)
    fallback = nodes.pick(GENERIC_REQUEST, request=req("/dir01/x"))
    assert fallback is not None and fallback != preferred
    # No URL structure -> degrades to least-load without crashing.
    assert nodes.pick(GENERIC_REQUEST, request=object()) is not None
    assert locality_key(object()) is None
    assert locality_key(req("/a/b/c.html")) == "site1|/a/b"
    assert locality_key(req("top.html")) == "site1|/"


def test_node_scheduler_validation():
    with pytest.raises(ValueError):
        NodeScheduler(policy="bogus")
    nodes = NodeScheduler()
    nodes.add_node("rpn0", RPN_CAPACITY)
    with pytest.raises(RuntimeError):
        nodes.add_node("rpn0", RPN_CAPACITY)


def test_node_outstanding_never_negative_after_feedback():
    nodes = NodeScheduler()
    nodes.add_node("rpn0", RPN_CAPACITY)
    nodes.on_dispatch("rpn0", GENERIC_REQUEST)
    nodes.on_feedback("rpn0", GENERIC_REQUEST.scaled(5))  # over-report
    assert nodes.node("rpn0").outstanding == ResourceVector.ZERO


@settings(max_examples=30, deadline=None)
@given(
    res_a=st.integers(10, 300),
    res_b=st.integers(10, 300),
    cycles=st.integers(10, 60),
)
def test_reserved_dispatch_conservation_property(res_a, res_b, cycles):
    """Reserved-pass dispatches never exceed reservation x time + cap burst."""
    subs = [Subscriber("a", res_a), Subscriber("b", res_b)]
    config = GageConfig(spare_policy="none", credit_cap_cycles=4.0)
    scheduler, queues, _acc, _nodes, dispatched = build(subs, rpns=16, config=config)
    fill(queues, "a", 100_000)
    fill(queues, "b", 100_000)
    for _ in range(cycles):
        scheduler.run_cycle()
    for name, reservation in (("a", res_a), ("b", res_b)):
        total = sum(1 for _r, _p, n in dispatched if n == name)
        budget = reservation * (cycles * 0.01) + 4 * reservation * 0.01 + 1
        assert total <= budget
