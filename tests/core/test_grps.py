"""Tests for the GRPS resource-vector currency."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GENERIC_REQUEST, ResourceVector, grps


def test_generic_request_definition():
    """The paper's §3.1 definition: 10ms CPU, 10ms disk, 2000 bytes."""
    assert GENERIC_REQUEST.cpu_s == 0.010
    assert GENERIC_REQUEST.disk_s == 0.010
    assert GENERIC_REQUEST.net_bytes == 2000.0


def test_grps_entitlement_example():
    """§3.1: a 50-GRPS reservation = 500ms CPU, 500ms disk, 100KB/s."""
    entitlement = grps(50)
    assert entitlement.cpu_s == pytest.approx(0.5)
    assert entitlement.disk_s == pytest.approx(0.5)
    assert entitlement.net_bytes == pytest.approx(100_000)


def test_arithmetic():
    a = ResourceVector(1.0, 2.0, 3.0)
    b = ResourceVector(0.5, 0.5, 0.5)
    assert a + b == ResourceVector(1.5, 2.5, 3.5)
    assert a - b == ResourceVector(0.5, 1.5, 2.5)
    assert a.scaled(2) == ResourceVector(2.0, 4.0, 6.0)


def test_zero_constant():
    assert ResourceVector.ZERO == ResourceVector(0, 0, 0)
    assert ResourceVector(1, 1, 1) + ResourceVector.ZERO == ResourceVector(1, 1, 1)


def test_negativity_checks():
    assert not ResourceVector(0, 0, 0).any_negative
    assert ResourceVector(-0.001, 5, 5).any_negative
    assert ResourceVector(5, -0.001, 5).any_negative
    assert ResourceVector(5, 5, -1).any_negative
    assert ResourceVector(0, 0, 0).all_nonnegative


def test_covers():
    assert ResourceVector(1, 1, 1).covers(ResourceVector(1, 1, 1))
    assert ResourceVector(2, 2, 2).covers(ResourceVector(1, 1, 1))
    assert not ResourceVector(2, 0.5, 2).covers(ResourceVector(1, 1, 1))


def test_clamped_min():
    assert ResourceVector(-1, 2, -3).clamped_min(0.0) == ResourceVector(0, 2, 0)


def test_max():
    assert ResourceVector(1, 5, 2).max(ResourceVector(3, 1, 2)) == ResourceVector(3, 5, 2)


def test_dominant_fraction():
    capacity = ResourceVector(1.0, 1.0, 12_500_000)
    usage = ResourceVector(0.5, 0.25, 1_250_000)
    assert usage.dominant_fraction_of(capacity) == pytest.approx(0.5)
    assert ResourceVector.ZERO.dominant_fraction_of(ResourceVector.ZERO) == 0.0


def test_in_generic_requests():
    # Exactly one generic request's worth of every resource.
    assert GENERIC_REQUEST.in_generic_requests() == pytest.approx(1.0)
    # CPU-dominant usage counts by its CPU component.
    usage = ResourceVector(0.020, 0.005, 1000)
    assert usage.in_generic_requests() == pytest.approx(2.0)


@settings(max_examples=100, deadline=None)
@given(
    ax=st.floats(0, 1e3), ay=st.floats(0, 1e3), az=st.floats(0, 1e6),
    bx=st.floats(0, 1e3), by=st.floats(0, 1e3), bz=st.floats(0, 1e6),
)
def test_add_sub_inverse_property(ax, ay, az, bx, by, bz):
    a = ResourceVector(ax, ay, az)
    b = ResourceVector(bx, by, bz)
    back = (a + b) - b
    assert back.cpu_s == pytest.approx(a.cpu_s, abs=1e-6)
    assert back.disk_s == pytest.approx(a.disk_s, abs=1e-6)
    assert back.net_bytes == pytest.approx(a.net_bytes, abs=1e-3)


def test_frozen():
    with pytest.raises(AttributeError):
        GENERIC_REQUEST.cpu_s = 99
