"""Tests for vector-valued deviation metrics (the Figure 3 pipeline)."""

import pytest

from repro.core.metrics import (
    deviation_from_reservation_vectors,
    windowed_usage_rates,
)
from repro.resources import GENERIC_REQUEST, ResourceVector


def test_windowed_usage_rates_sums_vectors_before_conversion():
    """A request split across two events (CPU first, bytes later) counts
    once per window — the non-additivity fix."""
    cpu_part = ResourceVector(0.010, 0.0, 0.0)
    net_part = ResourceVector(0.0, 0.0, 2000.0)
    events = [(0.2, cpu_part), (0.4, net_part)]
    rates = windowed_usage_rates(events, 0.0, 1.0, 1.0)
    # One whole generic request in the window -> 1 GRPS.
    assert rates == [pytest.approx(1.0)]

    # Converting per-event and summing would have given 2.0.
    per_event = sum(v.in_generic_requests() for _t, v in events)
    assert per_event == pytest.approx(2.0)


def test_windowed_usage_rates_windowing():
    one = GENERIC_REQUEST
    events = [(0.5, one), (1.5, one), (1.7, one)]
    rates = windowed_usage_rates(events, 0.0, 2.0, 1.0)
    assert rates == [pytest.approx(1.0), pytest.approx(2.0)]


def test_windowed_usage_rates_validation():
    with pytest.raises(ValueError):
        windowed_usage_rates([], 0.0, 1.0, 0.0)
    assert windowed_usage_rates([], 0.0, 0.5, 1.0) == []


def test_deviation_vectors_perfect_service_is_zero():
    events = {
        "a": [(i * 0.01, GENERIC_REQUEST) for i in range(1000)]  # 100 GRPS
    }
    deviation = deviation_from_reservation_vectors(
        events, {"a": 100.0}, 0.0, 10.0, 1.0
    )
    assert deviation == pytest.approx(0.0, abs=1e-6)


def test_deviation_vectors_alternating_lumps():
    events = {"a": []}
    for window in range(0, 10, 2):
        events["a"].append((window + 0.5, GENERIC_REQUEST.scaled(200)))
    deviation = deviation_from_reservation_vectors(
        events, {"a": 100.0}, 0.0, 10.0, 1.0
    )
    assert deviation == pytest.approx(100.0, rel=0.01)
    smoothed = deviation_from_reservation_vectors(
        events, {"a": 100.0}, 0.0, 10.0, 2.0
    )
    assert smoothed == pytest.approx(0.0, abs=1e-6)


def test_deviation_vectors_custom_generic_unit():
    sql_txn = ResourceVector(0.015, 0.025, 500.0)
    events = {"db": [(i * 0.1, sql_txn) for i in range(100)]}  # 10 TPS
    deviation = deviation_from_reservation_vectors(
        events, {"db": 10.0}, 0.0, 10.0, 1.0, generic=sql_txn
    )
    assert deviation == pytest.approx(0.0, abs=1e-6)


def test_deviation_vectors_ignores_zero_reservations():
    events = {"free": [(0.5, GENERIC_REQUEST)]}
    assert deviation_from_reservation_vectors(
        events, {"free": 0.0}, 0.0, 10.0, 1.0
    ) == 0.0
