"""The tunable registry stays consistent with GageConfig and the docs."""

import random
from dataclasses import fields as dataclass_fields
from pathlib import Path

import pytest

from repro.core import tunables
from repro.core.config import GageConfig
from repro.core.tunables import Tunable

DOCS = Path(__file__).resolve().parents[2] / "docs" / "architecture.md"


def test_registry_covers_every_config_field():
    declared = set(tunables.registry())
    config_fields = {f.name for f in dataclass_fields(GageConfig)}
    missing = config_fields - declared - tunables.EXCLUDED_FIELDS
    assert not missing, "GageConfig fields without a tunable declaration: {}".format(
        sorted(missing)
    )
    stray = declared - config_fields
    assert not stray, "tunables without a GageConfig field: {}".format(sorted(stray))
    assert tunables.EXCLUDED_FIELDS == {"generic_request"}


def test_registry_defaults_match_dataclass_defaults():
    for field in dataclass_fields(GageConfig):
        if field.name in tunables.EXCLUDED_FIELDS:
            continue
        assert tunables.get(field.name).default == field.default, field.name


def test_registry_order_matches_dataclass_order():
    assert tuple(tunables.registry()) == tunables.config_field_names()


def test_defaults_construct_the_default_config():
    assert tunables.config_from_params(tunables.defaults()) == GageConfig()
    assert tunables.config_from_params({}) == GageConfig()


def test_sampled_params_always_construct_a_valid_config():
    rng = random.Random(20030900)
    for _ in range(100):
        params = {t.name: t.sample(rng) for t in tunables.registry().values()}
        tunables.config_from_params(params)


def test_mutation_stays_legal_and_is_seed_deterministic():
    rng = random.Random(9)
    for tunable in tunables.registry().values():
        value = tunable.sample(rng)
        for _ in range(25):
            value = tunable.mutate(value, rng)
            tunable.validate(value)
    a = {t.name: t.sample(random.Random(5)) for t in tunables.registry().values()}
    b = {t.name: t.sample(random.Random(5)) for t in tunables.registry().values()}
    assert a == b


def test_validate_rejects_out_of_range_and_unknown():
    with pytest.raises(ValueError):
        tunables.get("estimator_alpha").validate(2.0)
    with pytest.raises(ValueError):
        tunables.get("spare_policy").validate("bogus")
    with pytest.raises(ValueError):
        tunables.get("hedge_max_clones").validate(None)  # not optional
    tunables.get("dispatch_window_s").validate(None)  # optional
    with pytest.raises(KeyError):
        tunables.get("no_such_knob")
    with pytest.raises(ValueError):
        tunables.validate_params({"credit_cap_cycles": 0.5})


def test_int_tunables_reject_floats():
    with pytest.raises(ValueError):
        tunables.get("hedge_max_clones").validate(1.5)


def test_declaration_errors_are_caught_at_construction():
    with pytest.raises(ValueError):
        Tunable("x", "float", 1.0, "no bounds")
    with pytest.raises(ValueError):
        Tunable("x", "choice", "a", "no choices")
    with pytest.raises(ValueError):
        Tunable("x", "choice", "c", "bad default", choices=("a", "b"))
    with pytest.raises(ValueError):
        Tunable("x", "float", 0.5, "log needs >0", lo=0.0, hi=1.0, log=True)
    with pytest.raises(ValueError):
        Tunable("x", "banana", 1.0, "bad kind", lo=0.0, hi=2.0)


def test_docs_knob_table_is_current():
    document = DOCS.read_text()
    assert tunables.render_into(document) == document, (
        "docs/architecture.md knob table is stale; run "
        "PYTHONPATH=src python -m repro.core.tunables --update docs/architecture.md"
    )


def test_render_into_requires_markers():
    with pytest.raises(ValueError):
        tunables.render_into("no markers here")


def test_cli_prints_table(capsys):
    assert tunables.main(()) == 0
    out = capsys.readouterr().out
    assert "`scheduling_cycle_s`" in out and "`placement_k_backup`" in out


def test_cli_update_roundtrip(tmp_path, capsys):
    doc = tmp_path / "doc.md"
    doc.write_text(
        "before\n{}\nstale\n{}\nafter\n".format(
            tunables.TABLE_BEGIN, tunables.TABLE_END
        )
    )
    assert tunables.main(("--update", str(doc))) == 0
    first = doc.read_text()
    assert tunables.markdown_table() in first
    assert tunables.main(("--update", str(doc))) == 0
    assert doc.read_text() == first
    assert "already current" in capsys.readouterr().out
