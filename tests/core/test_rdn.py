"""Unit tests for the primary RDN's packet handling."""

import pytest

from repro.core import GageConfig, PrimaryRDN, Subscriber
from repro.core.control import DispatchOrder
from repro.net import IPAddress, MACAddress, NIC, Packet, Switch, TCPFlags
from repro.net.conn import Quadruple
from repro.sim import Environment
from repro.workload import WebRequest

CLUSTER_IP = IPAddress("10.0.0.100")
CLIENT_IP = IPAddress("10.0.0.1")
CLIENT_MAC = MACAddress("02:00:00:00:00:01")
RDN_MAC = MACAddress("02:00:00:00:00:64")
RPN_MAC = MACAddress("02:00:00:00:01:01")
RPN_IP = IPAddress("10.0.1.1")


def build_rdn(env, subscribers=None, config=None):
    """An RDN with a NIC wired to a capture switch port."""
    rdn = PrimaryRDN(
        env,
        config or GageConfig(),
        CLUSTER_IP,
        subscribers or [Subscriber("site1", 100)],
    )
    switch = Switch(env, ports=4)
    nic = NIC(env, RDN_MAC, name="rdn.eth0")
    switch.attach(nic.iface)
    rdn.attach_nic(nic)
    sent = []
    capture = NIC(env, MACAddress("02:00:00:00:00:FE"), name="cap", promiscuous=True)
    capture.receive_handler = sent.append
    switch.attach(capture.iface)
    from repro.core.simulation import default_rpn_capacity

    rdn.add_rpn("rpn0", default_rpn_capacity(), mac=RPN_MAC, ip=RPN_IP)
    return rdn, sent


def syn(port=30000, seq=1000):
    return Packet(
        src_mac=CLIENT_MAC, dst_mac=RDN_MAC, src_ip=CLIENT_IP, dst_ip=CLUSTER_IP,
        src_port=port, dst_port=80, seq=seq, flags=TCPFlags.SYN,
    )


def url_packet(port=30000, seq=1001, ack=None, host="site1"):
    return Packet(
        src_mac=CLIENT_MAC, dst_mac=RDN_MAC, src_ip=CLIENT_IP, dst_ip=CLUSTER_IP,
        src_port=port, dst_port=80, seq=seq, ack=ack or 0,
        flags=TCPFlags.ACK | TCPFlags.PSH,
        payload=WebRequest(host, "/x.html", 2000), payload_len=200,
    )


def test_syn_triggers_emulated_synack():
    env = Environment()
    rdn, sent = build_rdn(env)
    rdn.handle_packet(syn(seq=5000))
    env.run(until=0.01)
    synacks = [p for p in sent if TCPFlags.SYN in p.flags and TCPFlags.ACK in p.flags]
    assert len(synacks) == 1
    assert synacks[0].src_ip == CLUSTER_IP
    assert synacks[0].ack == 5001
    assert synacks[0].dst_mac == CLIENT_MAC
    assert rdn.ops.connection_setups == 1


def test_duplicate_syn_resends_same_synack():
    env = Environment()
    rdn, sent = build_rdn(env)
    rdn.handle_packet(syn(seq=5000))
    rdn.handle_packet(syn(seq=5000))
    env.run(until=0.01)
    synacks = [p for p in sent if TCPFlags.SYN in p.flags and TCPFlags.ACK in p.flags]
    assert len(synacks) == 2
    assert synacks[0].seq == synacks[1].seq  # same emulated ISN
    assert rdn.ops.connection_setups == 1  # still one connection


def test_url_request_enqueued_once():
    env = Environment()
    rdn, _sent = build_rdn(env)
    rdn.handle_packet(syn())
    rdn.handle_packet(url_packet())
    rdn.handle_packet(url_packet())  # client retransmission
    queue = rdn.queues.get("site1")
    assert len(queue) == 1
    assert rdn.ops.absorbed >= 1


def test_url_without_handshake_rejected():
    env = Environment()
    rdn, _sent = build_rdn(env)
    rdn.handle_packet(url_packet())
    assert len(rdn.queues.get("site1")) == 0
    assert rdn.ops.rejected == 1


def test_unknown_host_request_rejected():
    env = Environment()
    rdn, _sent = build_rdn(env)
    rdn.handle_packet(syn())
    rdn.handle_packet(url_packet(host="nosuch"))
    assert len(rdn.queues.get("site1")) == 0


def test_queue_full_sends_rst():
    env = Environment()
    subs = [Subscriber("site1", 100, queue_capacity=1)]
    rdn, sent = build_rdn(env, subscribers=subs)
    for port in (30000, 30001):
        rdn.handle_packet(syn(port=port))
        rdn.handle_packet(url_packet(port=port))
    env.run(until=0.01)
    rsts = [p for p in sent if TCPFlags.RST in p.flags]
    assert len(rsts) == 1
    assert rdn.queues.get("site1").dropped == 1


def test_dispatch_inserts_conntable_and_sends_order():
    env = Environment()
    rdn, sent = build_rdn(env)
    rdn.handle_packet(syn())
    rdn.handle_packet(url_packet())
    env.run(until=0.05)  # several scheduling cycles
    quad = Quadruple(CLIENT_IP, 30000, CLUSTER_IP, 80)
    assert quad in rdn.conntable
    orders = [p for p in sent if isinstance(p.payload, DispatchOrder)]
    assert len(orders) == 1
    order = orders[0].payload
    assert order.subscriber == "site1"
    assert order.client_isn == 1000
    assert order.client_mac == CLIENT_MAC
    assert orders[0].dst_mac == RPN_MAC


def test_established_connection_bridged_with_rdn_src_mac():
    env = Environment()
    rdn, sent = build_rdn(env)
    quad = Quadruple(CLIENT_IP, 30000, CLUSTER_IP, 80)
    rdn.conntable.insert(quad, "rpn0", RPN_MAC)
    ack = Packet(
        src_mac=CLIENT_MAC, dst_mac=RDN_MAC, src_ip=CLIENT_IP, dst_ip=CLUSTER_IP,
        src_port=30000, dst_port=80, seq=1177, ack=900, flags=TCPFlags.ACK,
    )
    rdn.handle_packet(ack)
    env.run(until=0.01)
    bridged = [p for p in sent if p.dst_mac == RPN_MAC]
    assert len(bridged) == 1
    assert bridged[0].src_mac == RDN_MAC  # prevents switch MAC flapping
    assert bridged[0].seq == 1177
    assert rdn.ops.forwards == 1


def test_bare_ack_completes_handshake_and_is_absorbed():
    env = Environment()
    rdn, _sent = build_rdn(env)
    rdn.handle_packet(syn())
    ack = Packet(
        src_mac=CLIENT_MAC, dst_mac=RDN_MAC, src_ip=CLIENT_IP, dst_ip=CLUSTER_IP,
        src_port=30000, dst_port=80, seq=1001, ack=0, flags=TCPFlags.ACK,
    )
    rdn.handle_packet(ack)
    assert rdn.ops.absorbed == 1
    quad = Quadruple(CLIENT_IP, 30000, CLUSTER_IP, 80)
    assert rdn._half_open[quad].established


def test_packets_for_other_destinations_ignored():
    env = Environment()
    rdn, _sent = build_rdn(env)
    stray = Packet(
        src_mac=CLIENT_MAC, dst_mac=RDN_MAC, src_ip=CLIENT_IP,
        dst_ip=IPAddress("10.0.0.2"), src_port=1, dst_port=2,
        flags=TCPFlags.ACK,
    )
    rdn.handle_packet(stray)
    assert rdn.ops.rejected == 0
    assert rdn.ops.classifications == 0


def test_flow_mode_submit_without_dispatcher_raises_on_dispatch():
    env = Environment()
    rdn = PrimaryRDN(env, GageConfig(), CLUSTER_IP, [Subscriber("site1", 100)])
    from repro.core.simulation import default_rpn_capacity

    rdn.add_rpn("rpn0", default_rpn_capacity())
    assert rdn.submit_request("site1", WebRequest("site1", "/x", 100))
    assert not rdn.submit_request("nosuch", WebRequest("nosuch", "/x", 100))
    with pytest.raises(RuntimeError):
        env.run(until=0.05)  # scheduler dispatches without flow_dispatch
