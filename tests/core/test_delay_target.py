"""Tests for delay-bounded admission (the response-time QoS extension)."""

import pytest

from repro.core import GageCluster, Subscriber
from repro.sim import Environment
from repro.workload import SyntheticWorkload


def test_effective_capacity_from_delay_target():
    sub = Subscriber("a", reservation_grps=100, delay_target_s=0.5)
    # Little's law: 100/s x 0.5s = 50 requests of queue depth.
    assert sub.effective_queue_capacity == 50
    # The explicit capacity still acts as an upper bound.
    tight = Subscriber("a", 100, queue_capacity=10, delay_target_s=0.5)
    assert tight.effective_queue_capacity == 10
    # No target: plain capacity.
    plain = Subscriber("a", 100, queue_capacity=77)
    assert plain.effective_queue_capacity == 77
    # Tiny reservations still admit at least one request.
    tiny = Subscriber("a", 1, delay_target_s=0.1)
    assert tiny.effective_queue_capacity == 1


def test_delay_target_validation():
    with pytest.raises(ValueError):
        Subscriber("a", 10, delay_target_s=0.0)
    with pytest.raises(ValueError):
        Subscriber("a", 10, delay_target_s=-1.0)


def run_overloaded(delay_target, duration=8.0):
    """One overloaded subscriber on a small cluster; returns latencies."""
    env = Environment()
    subs = [
        Subscriber("a", 50, queue_capacity=4096, delay_target_s=delay_target)
    ]
    workload = SyntheticWorkload(rates={"a": 120.0}, duration_s=duration, file_bytes=2000)
    cluster = GageCluster(
        env, subs, {"a": workload.site_files("a")}, num_rpns=1
    )
    cluster.prewarm_caches()
    cluster.load_trace(workload.generate())
    cluster.run(duration)
    latencies = sorted(
        lat for at, _h, lat in cluster.latencies if at >= duration / 2
    )
    report = cluster.service_report("a", duration / 2, duration)
    return latencies, report


def test_delay_target_bounds_latency_under_overload():
    bounded, bounded_report = run_overloaded(delay_target=0.4)
    unbounded, unbounded_report = run_overloaded(delay_target=None)

    def p95(values):
        return values[int(0.95 * len(values))]

    # Without a target the queue grows for the whole run and tail latency
    # blows past any bound; with the target it stays near it.
    assert p95(unbounded) > 1.0
    assert p95(bounded) < 0.4 * 1.6  # target + in-service time slack
    # The price is drops: admission rejects what cannot meet the bound.
    assert bounded_report.dropped > 0
    # Throughput is unchanged — both serve at the sustainable rate.
    assert bounded_report.served_rate == pytest.approx(
        unbounded_report.served_rate, rel=0.1
    )
