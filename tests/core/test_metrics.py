"""Tests for service reports and deviation-from-reservation math."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.metrics import (
    DeviationReport,
    ServiceReport,
    deviation_from_reservation,
    windowed_rates,
)


def test_service_report_rates():
    report = ServiceReport(
        subscriber="site1",
        reservation_grps=250,
        duration_s=10.0,
        arrived=2594,
        served=2594,
        dropped=0,
    )
    assert report.input_rate == pytest.approx(259.4)
    assert report.served_rate == pytest.approx(259.4)
    assert report.dropped_rate == 0.0
    assert report.spare_rate == pytest.approx(9.4)
    assert report.row()[0] == "site1"


def test_service_report_zero_duration():
    report = ServiceReport("x", 10, 0.0, 5, 5, 0)
    assert report.input_rate == 0.0
    assert report.served_rate == 0.0


def test_windowed_rates_basic():
    # Ten events at 1-second spacing over [0, 10), window = 2s.
    events = [(float(i), 1.0) for i in range(10)]
    rates = windowed_rates(events, 0.0, 10.0, 2.0)
    assert rates == [1.0] * 5


def test_windowed_rates_partial_window_excluded():
    events = [(float(i), 1.0) for i in range(10)]
    rates = windowed_rates(events, 0.0, 9.0, 2.0)  # 4 complete windows
    assert len(rates) == 4


def test_windowed_rates_out_of_range_events_ignored():
    events = [(-1.0, 1.0), (0.5, 1.0), (99.0, 1.0)]
    rates = windowed_rates(events, 0.0, 2.0, 1.0)
    assert rates == [1.0, 0.0]


def test_windowed_rates_validation():
    with pytest.raises(ValueError):
        windowed_rates([], 0, 10, 0)


def test_deviation_zero_for_perfect_service():
    events = {"a": [(i * 0.01, 1.0) for i in range(1000)]}  # 100/s over 10s
    deviation = deviation_from_reservation(events, {"a": 100.0}, 0.0, 10.0, 1.0)
    assert deviation == pytest.approx(0.0, abs=1e-6)


def test_deviation_for_bursty_service():
    """All usage in alternate windows: rate alternates 200/0 around 100.

    Every window deviates by 100%, so the mean deviation is 100%.
    """
    events = {}
    bursty = []
    for window in range(0, 10, 2):  # even windows get double service
        bursty.extend((window + i * 0.005, 1.0) for i in range(200))
    events["a"] = bursty
    deviation = deviation_from_reservation(events, {"a": 100.0}, 0.0, 10.0, 1.0)
    assert deviation == pytest.approx(100.0, rel=0.01)


def test_deviation_shrinks_with_longer_interval():
    """The same bursty series, averaged over 2s windows, deviates 0%."""
    events = {}
    bursty = []
    for window in range(0, 10, 2):
        bursty.extend((window + i * 0.005, 1.0) for i in range(200))
    events["a"] = bursty
    short = deviation_from_reservation(events, {"a": 100.0}, 0.0, 10.0, 1.0)
    long = deviation_from_reservation(events, {"a": 100.0}, 0.0, 10.0, 2.0)
    assert long < short
    assert long == pytest.approx(0.0, abs=1e-6)


def test_deviation_averages_across_subscribers():
    events = {
        "exact": [(i * 0.01, 1.0) for i in range(1000)],  # 100/s
        "half": [(i * 0.02, 1.0) for i in range(500)],  # 50/s vs 100 reserved
    }
    deviation = deviation_from_reservation(
        events, {"exact": 100.0, "half": 100.0}, 0.0, 10.0, 1.0
    )
    assert deviation == pytest.approx(25.0, rel=0.05)


def test_deviation_ignores_zero_reservations():
    events = {"free": [(0.5, 1.0)]}
    assert deviation_from_reservation(events, {"free": 0.0}, 0.0, 10.0, 1.0) == 0.0


def test_deviation_report_series_sorted():
    report = DeviationReport(accounting_cycle_s=0.05)
    report.by_interval[4.0] = 5.0
    report.by_interval[1.0] = 20.0
    assert report.series() == [(1.0, 20.0), (4.0, 5.0)]


@settings(max_examples=50, deadline=None)
@given(
    rate=st.integers(10, 500),
    interval=st.sampled_from([1.0, 2.0, 5.0]),
)
def test_deviation_nonnegative_property(rate, interval):
    events = {"a": [(i / rate, 1.0) for i in range(rate * 10)]}
    deviation = deviation_from_reservation(events, {"a": float(rate)}, 0.0, 10.0, interval)
    assert deviation >= 0.0
    assert deviation < 100.0 * 10  # sanity bound
