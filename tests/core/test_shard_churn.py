"""Sharded control plane under subscriber churn (join/leave mid-run).

Two invariants:

* **Conservation** — across any sequence of rebalances interleaved with
  ``set_reservation``/``remove_reservation`` churn, every rebalance
  grants exactly what it reclaims plus whatever carry it consumed; no
  credit is minted or destroyed by churn.
* **Equivalence** — with ``num_shards=1`` the churn-capable sharded
  plane makes byte-identical decisions to a directly-constructed
  RequestScheduler subjected to the same joins and leaves.
"""

import random

import pytest

from repro.core import (
    GageConfig,
    GlobalAllocator,
    NodeScheduler,
    RDNAccounting,
    RequestScheduler,
    ShardCreditReport,
    ShardedScheduler,
    Subscriber,
    SubscriberQueues,
)
from repro.core.grps import ResourceVector

#: An RPN that can deliver 100 generic requests per second.
RPN_CAPACITY = ResourceVector(1.0, 1.0, 12_500_000)


def vec(grps_amount):
    return ResourceVector(0.010, 0.010, 2000.0).scaled(grps_amount)


def total(mapping):
    out = ResourceVector.ZERO
    for v in mapping.values():
        out = out + v
    return out


def granted_and_reclaimed(answers):
    reclaimed = ResourceVector.ZERO
    granted = ResourceVector.ZERO
    for answer in answers.values():
        reclaimed = reclaimed + total(answer.reclaims)
        granted = granted + total(answer.grants)
    return granted, reclaimed


# -- GlobalAllocator conservation under churn --------------------------------


def test_rebalance_conserves_credit_across_reservation_churn():
    """Σ grants == Σ reclaims + carry consumed, every round, while
    subscribers join and leave between rounds."""
    rng = random.Random(11)
    allocator = GlobalAllocator({"s0": 100.0, "s1": 80.0})
    live = ["s0", "s1"]
    next_index = 2
    for round_index in range(60):
        # Churn between rebalances.
        if rng.random() < 0.5:
            name = "s{}".format(next_index)
            next_index += 1
            allocator.set_reservation(name, float(rng.randrange(10, 200)))
            live.append(name)
        if len(live) > 2 and rng.random() < 0.4:
            allocator.remove_reservation(live.pop(rng.randrange(len(live))))

        carry_before = allocator.carry_total()
        reports = []
        for shard_id in range(3):
            unused = {
                name: vec(rng.randrange(0, 5))
                for name in live
                if rng.random() < 0.5
            }
            backlog = {name: rng.randrange(1, 4) for name in live if rng.random() < 0.4}
            reports.append(
                ShardCreditReport(shard_id, unused=unused, backlog=backlog)
            )
        answers = allocator.rebalance(reports)
        carry_after = allocator.carry_total()

        granted, reclaimed = granted_and_reclaimed(answers)
        expect = reclaimed + carry_before - carry_after
        assert granted.cpu_s == pytest.approx(expect.cpu_s)
        assert granted.disk_s == pytest.approx(expect.disk_s)
        assert granted.net_bytes == pytest.approx(expect.net_bytes)


def test_removed_subscriber_carry_keeps_riding():
    """Credit reclaimed from a departed subscriber is not destroyed: it
    re-enters the pool on the next backlogged rebalance."""
    allocator = GlobalAllocator({"a": 100.0, "b": 100.0})
    # Round 1: a's unused credit is reclaimed but nobody is backlogged,
    # so it lands in the carry pool.
    answers = allocator.rebalance([ShardCreditReport(0, unused={"a": vec(4)})])
    assert answers[0].grants == answers[0].reclaims == {"a": vec(4)}
    # a departs while idle — with hoarded credit at the allocator level.
    allocator.rebalance([ShardCreditReport(0, unused={"a": vec(4)}, backlog={})])
    allocator.remove_reservation("a")
    carried = allocator.carry_total()
    # Round 2: b is backlogged; whatever carry existed is granted to b.
    answers = allocator.rebalance([ShardCreditReport(0, backlog={"b": 3})])
    granted, reclaimed = granted_and_reclaimed(answers)
    expect = reclaimed + carried - allocator.carry_total()
    assert granted.cpu_s == pytest.approx(expect.cpu_s)


# -- ShardedScheduler churn routing ------------------------------------------


def test_add_subscriber_routes_to_home_shard():
    sharded = ShardedScheduler(
        [Subscriber("seed", 50)], {"rpn0": RPN_CAPACITY}, num_shards=4
    )
    assert not sharded.offer("late", "req")
    shard = sharded.add_subscriber(Subscriber("late", reservation_grps=200))
    assert shard is sharded.shard_for("late")
    assert sharded.offer("late", "req")
    assert len(shard.queues.get("late")) == 1
    assert shard.run_cycle()  # the new reservation dispatches


def test_remove_subscriber_stops_routing_and_scheduling():
    sharded = ShardedScheduler(
        [Subscriber("a", 150), Subscriber("b", 150)],
        {"rpn0": RPN_CAPACITY},
        num_shards=2,
    )
    assert sharded.remove_subscriber("a")
    assert not sharded.remove_subscriber("a")  # idempotent
    assert not sharded.offer("a", "req")
    assert sharded.offer("b", "req")
    decisions = sharded.run_cycle()
    assert {d.subscriber for d in decisions} == {"b"}


def test_readding_a_removed_subscriber_starts_fresh():
    sharded = ShardedScheduler(
        [Subscriber("a", 100)], {"rpn0": RPN_CAPACITY}, num_shards=2
    )
    for _ in range(10):
        sharded.run_cycle()  # hoard credit to the cap
    sharded.remove_subscriber("a")
    sharded.add_subscriber(Subscriber("a", reservation_grps=100))
    shard = sharded.shard_for("a")
    for i in range(20):
        shard.offer("a", "req-{}".format(i))
    decisions = sharded.run_cycle()
    # A fresh join has exactly one cycle of credit — the old hoard died
    # with the old registration.
    assert len([d for d in decisions if not d.spare]) == 1


# -- workers=1 equivalence under churn ---------------------------------------


def test_single_shard_churn_matches_legacy_scheduler():
    config = GageConfig(spare_policy="reservation")
    initial = [Subscriber("s0", 100), Subscriber("s1", 60)]
    capacities = {"rpn{}".format(i): RPN_CAPACITY for i in range(4)}

    queues = SubscriberQueues()
    accounting = RDNAccounting(table=queues.table)
    nodes = NodeScheduler(policy=config.node_policy, window_s=config.dispatch_window_s)
    for sub in initial:
        queues.register(sub)
        accounting.register(sub)
    for rpn_id, capacity in capacities.items():
        nodes.add_node(rpn_id, capacity)
    legacy = RequestScheduler(
        config, queues, accounting, nodes,
        dispatch_fn=lambda req, rpn, name, predicted: None,
    )

    sharded = ShardedScheduler(initial, capacities, config=config, num_shards=1)

    def legacy_add(sub):
        queues.register(sub)
        accounting.register(sub)

    def legacy_remove(name):
        accounting.unregister(name)
        queues.unregister(name)

    rng = random.Random(23)
    live = ["s0", "s1"]
    next_index = 2
    legacy_trace, sharded_trace = [], []
    for cycle in range(150):
        if cycle % 20 == 5:
            name = "s{}".format(next_index)
            next_index += 1
            sub = Subscriber(name, reservation_grps=float(rng.randrange(40, 120)))
            legacy_add(sub)
            sharded.add_subscriber(Subscriber(name, sub.reservation_grps))
            live.append(name)
        if cycle % 30 == 15 and len(live) > 1:
            victim = live.pop(rng.randrange(len(live)))
            legacy_remove(victim)
            sharded.remove_subscriber(victim)
        for name in live:
            for i in range(rng.randrange(0, 3)):
                request = "{}-{}-{}".format(name, cycle, i)
                queues.get(name).offer(request)
                sharded.offer(name, request)
        legacy_trace.extend(
            (d.subscriber, d.rpn_id, d.predicted, d.spare)
            for d in legacy.run_cycle()
        )
        sharded_trace.extend(
            (d.subscriber, d.rpn_id, d.predicted, d.spare)
            for d in sharded.run_cycle()
        )

    assert legacy_trace == sharded_trace
    assert len(legacy_trace) > 50
