"""Chaos tests: the proxy under misbehaving and unreachable backends.

Two failure archetypes drive everything here:

- a **refusing** backend — nothing listens on the port, connects fail
  instantly;
- a **hanging** backend — accepts the TCP connection, then never writes
  a byte (the classic wedged-worker failure the response timeout exists
  for).

In every case the client must receive *some* HTTP error (502/503/504)
within a bounded time — never a silent hang.
"""

import asyncio
import socket

from repro.core import GageConfig, Subscriber
from repro.core.metrics import BACKEND_EJECTED, BACKEND_READMITTED
from repro.proxy import BackendServer, GageProxy
from repro.proxy.http import read_response_head

SITES = {"a.com": {"/index.html": 500}}


def chaos_config(**overrides):
    defaults = dict(
        proxy_connect_timeout_s=0.2,
        proxy_response_timeout_s=0.25,
        proxy_retry_backoff_s=0.01,
        proxy_failure_threshold=2,
        proxy_probe_interval_s=0.1,
    )
    defaults.update(overrides)
    return GageConfig(**defaults)


def free_port() -> int:
    """A port with nothing listening: connects to it are refused."""
    sock = socket.socket()
    sock.bind(("127.0.0.1", 0))
    port = sock.getsockname()[1]
    sock.close()
    return port


async def start_hanging_server():
    """Accepts connections and never responds."""
    opened = []

    async def handler(reader, writer):
        opened.append(writer)
        try:
            await asyncio.sleep(3600)
        except asyncio.CancelledError:
            pass

    server = await asyncio.start_server(handler, host="127.0.0.1", port=0)
    port = server.sockets[0].getsockname()[1]
    return server, opened, port


async def _get(port, site, path="/index.html", timeout=5.0):
    async def fetch():
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        writer.write(
            "GET {} HTTP/1.0\r\nHost: {}\r\n\r\n".format(path, site).encode("latin-1")
        )
        await writer.drain()
        head = await read_response_head(reader)
        body = b""
        while len(body) < head.content_length:
            chunk = await reader.read(65536)
            if not chunk:
                break
            body += chunk
        writer.close()
        return head, body

    return await asyncio.wait_for(fetch(), timeout)


def test_hanging_backend_gets_504_within_timeout():
    async def main():
        server, opened, port = await start_hanging_server()
        proxy = GageProxy(
            [Subscriber("a.com", 1000)],
            {"wedged": ("127.0.0.1", port)},
            config=chaos_config(proxy_failure_threshold=100),
        )
        proxy_port = await proxy.start()
        head, _body = await _get(proxy_port, "a.com", timeout=3.0)
        stats = proxy.stats
        await proxy.stop()
        server.close()
        await server.wait_closed()
        return head, stats

    head, stats = asyncio.run(main())
    assert head.status == 504
    assert stats.timed_out == 1
    assert stats.failed == 1


def test_refusing_backend_502_then_ejection_then_shedding():
    async def main():
        port = free_port()
        proxy = GageProxy(
            [Subscriber("a.com", 1000)],
            {"gone": ("127.0.0.1", port)},
            config=chaos_config(proxy_failure_threshold=2),
        )
        proxy_port = await proxy.start()
        statuses = []
        retry_afters = []
        for _ in range(4):
            head, _body = await _get(proxy_port, "a.com", timeout=3.0)
            statuses.append(head.status)
            retry_afters.append(head.headers.get("retry-after"))
        ejected = proxy.failures.count(BACKEND_EJECTED)
        shed = proxy.stats.shed_no_backend
        await proxy.stop()
        return statuses, retry_afters, ejected, shed

    statuses, retry_afters, ejected, shed = asyncio.run(main())
    # First failure: 502 while the backend is still considered alive;
    # the second connect failure trips the threshold and every later
    # request is shed with a 503 + Retry-After.
    assert statuses[0] == 502
    assert statuses[1:] == [503, 503, 503]
    assert ejected == 1
    assert shed >= 1
    for status, retry_after in zip(statuses, retry_afters):
        if status == 503:
            assert retry_after is not None and int(retry_after) >= 1


def test_refusals_always_send_connection_close():
    async def main():
        port = free_port()
        proxy = GageProxy(
            [Subscriber("a.com", 1000)],
            {"gone": ("127.0.0.1", port)},
            config=chaos_config(),
        )
        proxy_port = await proxy.start()
        heads = []
        for site in ("nosuch.example", "a.com"):
            head, _body = await _get(proxy_port, site, timeout=3.0)
            heads.append(head)
        await proxy.stop()
        return heads

    heads = asyncio.run(main())
    assert heads[0].status == 404
    assert heads[1].status in (502, 503)
    for head in heads:
        assert head.headers.get("connection") == "close"


def test_probe_readmits_revived_backend():
    async def main():
        port = free_port()
        proxy = GageProxy(
            [Subscriber("a.com", 1000)],
            {"flaky": ("127.0.0.1", port)},
            config=chaos_config(proxy_failure_threshold=1),
        )
        proxy_port = await proxy.start()
        head, _ = await _get(proxy_port, "a.com", timeout=3.0)
        assert head.status in (502, 503)
        assert proxy.failures.count(BACKEND_EJECTED) == 1
        # Revive the backend on the very same port; the probe loop must
        # notice and put it back into rotation.
        backend = BackendServer(SITES, time_scale=0.0)
        await backend.start(port=port)
        deadline = asyncio.get_event_loop().time() + 3.0
        while (
            proxy.failures.count(BACKEND_READMITTED) == 0
            and asyncio.get_event_loop().time() < deadline
        ):
            await asyncio.sleep(0.05)
        readmitted = proxy.failures.count(BACKEND_READMITTED)
        head, body = await _get(proxy_port, "a.com", timeout=3.0)
        await proxy.stop()
        await backend.stop()
        return readmitted, head, body

    readmitted, head, body = asyncio.run(main())
    assert readmitted == 1
    assert head.status == 200
    assert len(body) == 500


def test_connect_failure_retries_on_alternate_backend():
    async def main():
        backend = BackendServer(SITES, time_scale=0.0)
        good_port = await backend.start()
        # "bad" registers first, so on an idle tie the least-load pick
        # dispatches there and the retry path must rescue the request.
        proxy = GageProxy(
            [Subscriber("a.com", 1000)],
            {"bad": ("127.0.0.1", free_port()), "good": ("127.0.0.1", good_port)},
            config=chaos_config(proxy_failure_threshold=10),
        )
        proxy_port = await proxy.start()
        head, body = await _get(proxy_port, "a.com", timeout=3.0)
        stats = proxy.stats
        await proxy.stop()
        await backend.stop()
        return head, body, stats

    head, body, stats = asyncio.run(main())
    assert head.status == 200
    assert len(body) == 500
    assert stats.retried == 1
    assert stats.completed == 1


def test_mixed_chaos_every_client_gets_an_answer():
    """Acceptance scenario: one hanging + one refusing backend.  Every
    client receives an HTTP error within its timeout — no hangs."""

    async def main():
        server, _opened, hang_port = await start_hanging_server()
        proxy = GageProxy(
            [Subscriber("a.com", 1000)],
            {
                "wedged": ("127.0.0.1", hang_port),
                "gone": ("127.0.0.1", free_port()),
            },
            config=chaos_config(proxy_failure_threshold=2),
        )
        proxy_port = await proxy.start()
        results = await asyncio.gather(
            *[_get(proxy_port, "a.com", timeout=4.0) for _ in range(8)],
            return_exceptions=True,
        )
        failures = proxy.failures
        await proxy.stop()
        server.close()
        await server.wait_closed()
        return results, failures

    results, failures = asyncio.run(main())
    statuses = []
    for result in results:
        assert not isinstance(result, Exception), "a client hung or errored: {!r}".format(result)
        head, _body = result
        statuses.append(head.status)
    assert all(status in (502, 503, 504) for status in statuses)
    # The refusing backend crossed the ejection threshold along the way.
    assert failures.count(BACKEND_EJECTED) >= 1
