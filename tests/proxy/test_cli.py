"""Tests for the proxy demo CLI."""

import pytest

from repro.proxy.__main__ import build_parser, main, parse_subscriber


def test_parse_subscriber_triple():
    host, grps, rate = parse_subscriber("a.com:120:60")
    assert host == "a.com"
    assert grps == 120.0
    assert rate == 60.0


def test_parse_subscriber_rejects_malformed():
    import argparse

    with pytest.raises(argparse.ArgumentTypeError):
        parse_subscriber("a.com:120")


def test_parser_defaults():
    args = build_parser().parse_args([])
    assert args.duration == 4.0
    assert args.backends == 2
    assert args.subscriber is None


def test_cli_end_to_end(capsys):
    exit_code = main([
        "--duration", "1.0",
        "--time-scale", "0.05",
        "--backends", "1",
        "--subscriber", "a.com:1000:30",
    ])
    assert exit_code == 0
    out = capsys.readouterr().out
    assert "a.com" in out
    assert "reservation" in out
