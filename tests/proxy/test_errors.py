"""Error-path tests for the asyncio deployment."""

import asyncio

from repro.core import GageConfig, Subscriber
from repro.proxy import BackendServer, GageProxy
from repro.proxy.http import read_response_head


async def _get(port, site, path="/index.html"):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        "GET {} HTTP/1.0\r\nHost: {}\r\n\r\n".format(path, site).encode("latin-1")
    )
    await writer.drain()
    head = await read_response_head(reader)
    body = b""
    while len(body) < head.content_length:
        chunk = await reader.read(65536)
        if not chunk:
            break
        body += chunk
    writer.close()
    return head, body


def test_dead_backend_yields_502():
    async def main():
        backend = BackendServer({"a.com": {"/index.html": 100}}, time_scale=0.0)
        port = await backend.start()
        await backend.stop()  # the backend dies; the proxy keeps its address
        proxy = GageProxy(
            [Subscriber("a.com", 1000)], {"backend0": ("127.0.0.1", port)}
        )
        proxy_port = await proxy.start()
        head, _ = await _get(proxy_port, "a.com")
        stats = proxy.stats
        await proxy.stop()
        return head, stats

    head, stats = asyncio.run(main())
    assert head.status == 502
    assert stats.failed == 1
    assert stats.completed == 0


def test_queue_full_yields_503():
    async def main():
        backend = BackendServer({"a.com": {"/index.html": 100}}, time_scale=0.0)
        port = await backend.start()
        # Scheduler cycle of 10s: nothing dispatches during the test, so
        # the 1-deep queue overflows on the second request.
        config = GageConfig(scheduling_cycle_s=10.0)
        proxy = GageProxy(
            [Subscriber("a.com", 1000, queue_capacity=1)],
            {"backend0": ("127.0.0.1", port)},
            config=config,
        )
        proxy_port = await proxy.start()

        async def bare_request():
            reader, writer = await asyncio.open_connection("127.0.0.1", proxy_port)
            writer.write(b"GET /index.html HTTP/1.0\r\nHost: a.com\r\n\r\n")
            await writer.drain()
            return reader, writer

        r1, w1 = await bare_request()  # occupies the queue
        reader, writer = await bare_request()  # overflows
        head = await read_response_head(reader)
        stats = proxy.stats
        writer.close()
        w1.close()
        await proxy.stop()
        await backend.stop()
        return head, stats

    head, stats = asyncio.run(main())
    assert head.status == 503
    assert stats.dropped_queue_full == 1


def test_backend_404_relayed_through_proxy():
    async def main():
        backend = BackendServer({"a.com": {"/index.html": 100}}, time_scale=0.0)
        port = await backend.start()
        proxy = GageProxy(
            [Subscriber("a.com", 1000)], {"backend0": ("127.0.0.1", port)}
        )
        proxy_port = await proxy.start()
        head, _ = await _get(proxy_port, "a.com", path="/missing.html")
        await proxy.stop()
        await backend.stop()
        return head

    head = asyncio.run(main())
    assert head.status == 404


def test_garbage_request_closes_connection():
    async def main():
        backend = BackendServer({"a.com": {"/index.html": 100}}, time_scale=0.0)
        port = await backend.start()
        proxy = GageProxy(
            [Subscriber("a.com", 1000)], {"backend0": ("127.0.0.1", port)}
        )
        proxy_port = await proxy.start()
        reader, writer = await asyncio.open_connection("127.0.0.1", proxy_port)
        writer.write(b"NOT-HTTP\x00\x01\r\n\r\n")
        await writer.drain()
        data = await reader.read()
        writer.close()
        await proxy.stop()
        await backend.stop()
        return data

    data = asyncio.run(main())
    assert data == b""  # closed without a response, no crash
