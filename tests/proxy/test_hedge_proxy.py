"""Hedged requests, deadlines, and the retry budget on the real-socket path.

The same failure archetypes as ``test_chaos.py`` — slow and hanging
backends — but with the hedging policy on: the client must get its
answer from the healthy backend at hedge speed, the loser must be
cancelled and refunded (conservation holds), and the retry/deadline
guard rails must fire their counters.
"""

import asyncio

import pytest

from repro.core import GageConfig, Subscriber
from repro.proxy import BackendServer, GageProxy

from .test_chaos import _get, free_port, start_hanging_server

SITES = {"a.com": {"/index.html": 500}}


def hedge_config(**overrides):
    defaults = dict(
        hedge_policy="fixed",
        hedge_delay_s=0.05,
        scheduling_cycle_s=0.005,
        proxy_connect_timeout_s=0.5,
        proxy_response_timeout_s=2.0,
        proxy_failure_threshold=100,
    )
    defaults.update(overrides)
    return GageConfig(**defaults)


def assert_conserved(proxy):
    delta = proxy.accounting.conservation_delta()
    assert delta.cpu_s == pytest.approx(0.0, abs=1e-9)
    assert delta.disk_s == pytest.approx(0.0, abs=1e-9)
    assert delta.net_bytes == pytest.approx(0.0, abs=1e-3)


def test_hedge_rescues_slow_backend():
    """The primary dawdles for a full second; the hedge clone answers in
    hedge-delay time and the loser is cancelled and refunded."""

    async def main():
        slow = BackendServer(SITES, time_scale=0.0, extra_delay_fn=lambda h, p: 1.0)
        fast = BackendServer(SITES, time_scale=0.0)
        slow_port = await slow.start()
        fast_port = await fast.start()
        # "slowpoke" registers first: the idle least-load tie dispatches
        # the primary there, so the hedge path must rescue the request.
        proxy = GageProxy(
            [Subscriber("a.com", 1000)],
            {"slowpoke": ("127.0.0.1", slow_port), "fast": ("127.0.0.1", fast_port)},
            config=hedge_config(),
        )
        proxy_port = await proxy.start()
        loop = asyncio.get_event_loop()
        started = loop.time()
        head, body = await _get(proxy_port, "a.com", timeout=3.0)
        elapsed = loop.time() - started
        # Let the loser's background drain land before inspecting books.
        await asyncio.sleep(1.2)
        stats = proxy.stats
        assert_conserved(proxy)
        await proxy.stop()
        await slow.stop()
        await fast.stop()
        return head, body, elapsed, stats

    head, body, elapsed, stats = asyncio.run(main())
    assert head.status == 200
    assert len(body) == 500
    # Answered at hedge speed, not at the slow backend's pace.
    assert elapsed < 0.8
    assert stats.completed == 1
    assert stats.hedges_fired == 1
    assert stats.hedges_won == 1
    assert stats.hedges_cancelled == 1


def test_hedge_rescues_hanging_backend():
    """A wedged primary that never writes a byte: the clone wins and the
    loser attempt times out in the background without hanging anyone."""

    async def main():
        server, _opened, hang_port = await start_hanging_server()
        fast = BackendServer(SITES, time_scale=0.0)
        fast_port = await fast.start()
        proxy = GageProxy(
            [Subscriber("a.com", 1000)],
            {"wedged": ("127.0.0.1", hang_port), "fast": ("127.0.0.1", fast_port)},
            config=hedge_config(proxy_response_timeout_s=0.5),
        )
        proxy_port = await proxy.start()
        head, body = await _get(proxy_port, "a.com", timeout=3.0)
        await asyncio.sleep(0.7)  # the loser's timeout reap completes
        stats = proxy.stats
        assert_conserved(proxy)
        await proxy.stop()
        await fast.stop()
        server.close()
        await server.wait_closed()
        return head, body, stats

    head, body, stats = asyncio.run(main())
    assert head.status == 200
    assert len(body) == 500
    assert stats.hedges_fired == 1
    assert stats.hedges_won == 1
    assert stats.hedges_cancelled == 1


def test_fast_primary_never_hedges():
    async def main():
        fast = BackendServer(SITES, time_scale=0.0)
        fast_port = await fast.start()
        proxy = GageProxy(
            [Subscriber("a.com", 1000)],
            {"only": ("127.0.0.1", fast_port)},
            config=hedge_config(hedge_delay_s=0.5),
        )
        proxy_port = await proxy.start()
        heads = []
        for _ in range(3):
            head, _body = await _get(proxy_port, "a.com", timeout=3.0)
            heads.append(head)
        stats = proxy.stats
        assert_conserved(proxy)
        await proxy.stop()
        await fast.stop()
        return heads, stats

    heads, stats = asyncio.run(main())
    assert [head.status for head in heads] == [200, 200, 200]
    assert stats.completed == 3
    assert stats.hedges_fired == 0
    assert stats.hedges_cancelled == 0


def test_retry_budget_exhaustion_blocks_retry():
    """With a zero retry budget the connect-failure retry is suppressed:
    the request fails fast and the exhaustion counter records why."""

    async def main():
        backend = BackendServer(SITES, time_scale=0.0)
        good_port = await backend.start()
        proxy = GageProxy(
            [Subscriber("a.com", 1000)],
            {"bad": ("127.0.0.1", free_port()), "good": ("127.0.0.1", good_port)},
            config=GageConfig(
                proxy_connect_timeout_s=0.2,
                proxy_retry_backoff_s=0.01,
                proxy_failure_threshold=100,
                proxy_retry_budget=0,
            ),
        )
        proxy_port = await proxy.start()
        head, _body = await _get(proxy_port, "a.com", timeout=3.0)
        stats = proxy.stats
        await proxy.stop()
        await backend.stop()
        return head, stats

    head, stats = asyncio.run(main())
    assert head.status == 502
    assert stats.retried == 0
    assert stats.retry_budget_exhausted == 1
    assert stats.failed == 1


def test_retry_budget_token_spend_allows_one_retry():
    async def main():
        backend = BackendServer(SITES, time_scale=0.0)
        good_port = await backend.start()
        proxy = GageProxy(
            [Subscriber("a.com", 1000)],
            {"bad": ("127.0.0.1", free_port()), "good": ("127.0.0.1", good_port)},
            config=GageConfig(
                proxy_connect_timeout_s=0.2,
                proxy_retry_backoff_s=0.01,
                proxy_failure_threshold=100,
                proxy_retry_budget=1,
                proxy_retry_budget_refill_per_s=0.0,
            ),
        )
        proxy_port = await proxy.start()
        heads = []
        for _ in range(2):
            head, _body = await _get(proxy_port, "a.com", timeout=3.0)
            heads.append(head)
            # Let the accounting flush drain "bad"'s outstanding load so
            # the idle least-load tie dispatches there again.
            await asyncio.sleep(0.25)
        stats = proxy.stats
        await proxy.stop()
        await backend.stop()
        return heads, stats

    heads, stats = asyncio.run(main())
    # First request spends the only token and is rescued; the second
    # finds the bucket empty and fails fast.
    assert heads[0].status == 200
    assert heads[1].status == 502
    assert stats.retried == 1
    assert stats.retry_budget_exhausted == 1


def test_deadline_expired_while_queued_gets_504():
    async def main():
        backend = BackendServer(SITES, time_scale=0.0)
        port = await backend.start()
        proxy = GageProxy(
            [Subscriber("a.com", 1000)],
            {"only": ("127.0.0.1", port)},
            # The scheduler dispatches every ~10ms; a 1µs deadline is
            # always already expired by then.
            config=GageConfig(proxy_request_deadline_s=1e-6),
        )
        proxy_port = await proxy.start()
        head, _body = await _get(proxy_port, "a.com", timeout=3.0)
        stats = proxy.stats
        await proxy.stop()
        await backend.stop()
        return head, stats

    head, stats = asyncio.run(main())
    assert head.status == 504
    assert stats.deadline_expired == 1
    assert stats.completed == 0


def test_generous_deadline_does_not_interfere():
    async def main():
        backend = BackendServer(SITES, time_scale=0.0)
        port = await backend.start()
        proxy = GageProxy(
            [Subscriber("a.com", 1000)],
            {"only": ("127.0.0.1", port)},
            config=GageConfig(proxy_request_deadline_s=30.0),
        )
        proxy_port = await proxy.start()
        head, body = await _get(proxy_port, "a.com", timeout=3.0)
        stats = proxy.stats
        await proxy.stop()
        await backend.stop()
        return head, body, stats

    head, body, stats = asyncio.run(main())
    assert head.status == 200
    assert len(body) == 500
    assert stats.deadline_expired == 0
    assert stats.completed == 1
