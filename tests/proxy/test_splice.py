"""Tests for the asyncio byte relay."""

import asyncio

import pytest

from repro.proxy.splice import relay_exactly, relay_until_eof


class SinkWriter:
    """A StreamWriter stand-in collecting written bytes."""

    def __init__(self):
        self.data = bytearray()

    def write(self, chunk):
        self.data.extend(chunk)

    async def drain(self):
        pass


def feed(data: bytes, eof=True) -> asyncio.StreamReader:
    """Build a pre-filled StreamReader (call from inside a running loop)."""
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


def test_relay_exactly_copies_n_bytes():
    async def main():
        sink = SinkWriter()
        copied = await relay_exactly(feed(b"abcdefgh"), sink, 5)
        return copied, bytes(sink.data)

    copied, data = asyncio.run(main())
    assert copied == 5
    assert data == b"abcde"


def test_relay_exactly_large_payload_chunked():
    payload = b"z" * 300_000

    async def main():
        sink = SinkWriter()
        copied = await relay_exactly(feed(payload), sink, len(payload))
        return copied, bytes(sink.data)

    copied, data = asyncio.run(main())
    assert copied == 300_000
    assert data == payload


def test_relay_exactly_short_source_raises():
    async def main():
        sink = SinkWriter()
        await relay_exactly(feed(b"abc"), sink, 10)

    with pytest.raises(asyncio.IncompleteReadError):
        asyncio.run(main())


def test_relay_until_eof():
    async def main():
        sink = SinkWriter()
        copied = await relay_until_eof(feed(b"hello world"), sink)
        return copied, bytes(sink.data)

    copied, data = asyncio.run(main())
    assert copied == 11
    assert data == b"hello world"


def test_relay_zero_bytes():
    async def main():
        sink = SinkWriter()
        return await relay_exactly(feed(b""), sink, 0)

    assert asyncio.run(main()) == 0
