"""Tests for the asyncio byte relay."""

import asyncio

import pytest

from repro.proxy.splice import (
    destination_closing,
    over_high_water,
    relay_exactly,
    relay_until_eof,
    splice_exactly,
)


class SinkWriter:
    """A StreamWriter stand-in collecting written bytes."""

    def __init__(self):
        self.data = bytearray()

    def write(self, chunk):
        self.data.extend(chunk)

    async def drain(self):
        pass


def feed(data: bytes, eof=True) -> asyncio.StreamReader:
    """Build a pre-filled StreamReader (call from inside a running loop)."""
    reader = asyncio.StreamReader()
    reader.feed_data(data)
    if eof:
        reader.feed_eof()
    return reader


def test_relay_exactly_copies_n_bytes():
    async def main():
        sink = SinkWriter()
        copied = await relay_exactly(feed(b"abcdefgh"), sink, 5)
        return copied, bytes(sink.data)

    copied, data = asyncio.run(main())
    assert copied == 5
    assert data == b"abcde"


def test_relay_exactly_large_payload_chunked():
    payload = b"z" * 300_000

    async def main():
        sink = SinkWriter()
        copied = await relay_exactly(feed(payload), sink, len(payload))
        return copied, bytes(sink.data)

    copied, data = asyncio.run(main())
    assert copied == 300_000
    assert data == payload


def test_relay_exactly_short_source_raises():
    async def main():
        sink = SinkWriter()
        await relay_exactly(feed(b"abc"), sink, 10)

    with pytest.raises(asyncio.IncompleteReadError):
        asyncio.run(main())


def test_relay_until_eof():
    async def main():
        sink = SinkWriter()
        copied = await relay_until_eof(feed(b"hello world"), sink)
        return copied, bytes(sink.data)

    copied, data = asyncio.run(main())
    assert copied == 11
    assert data == b"hello world"


def test_relay_zero_bytes():
    async def main():
        sink = SinkWriter()
        return await relay_exactly(feed(b""), sink, 0)

    assert asyncio.run(main()) == 0


def test_helpers_are_conservative_for_test_doubles():
    # A SinkWriter has no transport: not closing, but treated as always
    # over the high-water mark so the stream relay drains every chunk.
    sink = SinkWriter()
    assert not destination_closing(sink)
    assert over_high_water(sink)


async def _socket_pair():
    """Client-side (reader, writer) plus the server-side peer and server."""
    accepted = asyncio.get_event_loop().create_future()

    def on_connect(reader, writer):
        if not accepted.done():
            accepted.set_result((reader, writer))

    server = await asyncio.start_server(on_connect, host="127.0.0.1", port=0)
    port = server.sockets[0].getsockname()[1]
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    peer = await accepted
    return reader, writer, peer, server


async def _cleanup(*pairs):
    for _reader, writer, (peer_reader, peer_writer), server in pairs:
        writer.close()
        peer_writer.close()
        server.close()
        await server.wait_closed()


async def _read_all(reader):
    data = bytearray()
    while True:
        chunk = await reader.read(65536)
        if not chunk:
            return bytes(data)
        data.extend(chunk)


def test_splice_exactly_over_real_sockets_with_prefix():
    payload = b"p" * 200_000

    async def main():
        src = await _socket_pair()
        dst = await _socket_pair()
        try:
            src[2][1].write(payload)  # the "back end" sends the body
            src[2][1].write_eof()
            collector = asyncio.ensure_future(_read_all(dst[2][0]))
            copied = await splice_exactly(
                src[0], src[1], dst[1], len(payload), prefix=b"HEAD\r\n\r\n"
            )
            await dst[1].drain()
            dst[1].write_eof()
            received = await collector
            return copied, received
        finally:
            await _cleanup(src, dst)

    copied, received = asyncio.run(main())
    assert copied == len(payload)
    assert received == b"HEAD\r\n\r\n" + payload


def test_splice_exactly_leaves_pipelined_bytes_readable():
    # Bytes past the requested body (the next pipelined request) must
    # stay on the source reader, not leak into the destination.
    async def main():
        src = await _socket_pair()
        dst = await _socket_pair()
        try:
            src[2][1].write(b"BODYBYTES" + b"NEXTREQ")
            src[2][1].write_eof()
            collector = asyncio.ensure_future(_read_all(dst[2][0]))
            copied = await splice_exactly(src[0], src[1], dst[1], len(b"BODYBYTES"))
            await dst[1].drain()
            dst[1].write_eof()
            received = await collector
            leftover = await _read_all(src[0])
            return copied, received, leftover
        finally:
            await _cleanup(src, dst)

    copied, received, leftover = asyncio.run(main())
    assert copied == 9
    assert received == b"BODYBYTES"
    assert leftover == b"NEXTREQ"


def test_splice_exactly_eof_mid_body_raises():
    async def main():
        src = await _socket_pair()
        dst = await _socket_pair()
        try:
            src[2][1].write(b"short")
            src[2][1].write_eof()
            drain = asyncio.ensure_future(_read_all(dst[2][0]))
            try:
                with pytest.raises(asyncio.IncompleteReadError):
                    await splice_exactly(src[0], src[1], dst[1], 1000)
            finally:
                dst[1].write_eof()
                await drain
        finally:
            await _cleanup(src, dst)

    asyncio.run(main())


def test_splice_exactly_large_body_flow_controlled():
    # Big enough to overrun every buffer in the chain: forces the
    # protocol's pause/resume path while the peer reads concurrently.
    payload = bytes(range(256)) * 8192  # 2 MiB

    async def main():
        src = await _socket_pair()
        dst = await _socket_pair()
        try:
            async def pump():
                src[2][1].write(payload)
                await src[2][1].drain()
                src[2][1].write_eof()

            pumper = asyncio.ensure_future(pump())
            collector = asyncio.ensure_future(_read_all(dst[2][0]))
            copied = await splice_exactly(src[0], src[1], dst[1], len(payload))
            await dst[1].drain()
            dst[1].write_eof()
            received = await collector
            await pumper
            return copied, received
        finally:
            await _cleanup(src, dst)

    copied, received = asyncio.run(main())
    assert copied == len(payload)
    assert received == payload


def test_relay_exactly_to_closing_destination_raises():
    async def main():
        dst = await _socket_pair()
        try:
            dst[1].close()
            with pytest.raises(ConnectionResetError):
                await relay_exactly(feed(b"x" * 100), dst[1], 100)
        finally:
            await _cleanup(dst)

    asyncio.run(main())
