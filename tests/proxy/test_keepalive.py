"""Keep-alive behavior: client persistence and back-end connection pooling."""

import asyncio

from repro.core import GageConfig, Subscriber
from repro.proxy import BackendServer, GageProxy
from repro.proxy.http import read_response_head


async def _request(reader, writer, site, path="/index.html", version="HTTP/1.1"):
    """One request/response exchange on an already-open client connection."""
    writer.write(
        "GET {} {}\r\nHost: {}\r\n\r\n".format(path, version, site).encode("latin-1")
    )
    await writer.drain()
    head = await read_response_head(reader)
    body = b""
    while len(body) < head.content_length:
        chunk = await reader.read(65536)
        if not chunk:
            break
        body += chunk
    return head, body


async def _rig(config=None, body_bytes=500):
    backend = BackendServer({"a.com": {"/index.html": body_bytes}}, time_scale=0.0)
    backend_port = await backend.start()
    proxy = GageProxy(
        [Subscriber("a.com", 1000)],
        {"backend0": ("127.0.0.1", backend_port)},
        config=config,
    )
    port = await proxy.start()
    return backend, proxy, port


def test_client_connection_carries_many_requests():
    async def main():
        backend, proxy, port = await _rig()
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        heads = []
        for _ in range(5):
            head, body = await _request(reader, writer, "a.com")
            heads.append(head)
            assert len(body) == 500
        writer.close()
        stats = proxy.stats
        await proxy.stop()
        await backend.stop()
        return heads, stats

    heads, stats = asyncio.run(main())
    assert all(head.status == 200 for head in heads)
    assert all(head.headers.get("connection") == "keep-alive" for head in heads)
    assert stats.accepted == 1  # one TCP connection for all five requests
    assert stats.keepalive_requests == 4
    assert stats.completed == 5


def test_http10_client_connection_is_closed_after_response():
    async def main():
        backend, proxy, port = await _rig()
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        head, _body = await _request(reader, writer, "a.com", version="HTTP/1.0")
        # The proxy honors the client's HTTP/1.0 default and closes.
        trailing = await reader.read(1024)
        writer.close()
        stats = proxy.stats
        await proxy.stop()
        await backend.stop()
        return head, trailing, stats

    head, trailing, stats = asyncio.run(main())
    assert head.status == 200
    assert head.headers.get("connection") == "close"
    assert trailing == b""  # EOF: no keep-alive loop was started
    assert stats.keepalive_requests == 0


def test_backend_sockets_reused_across_client_connections():
    async def main():
        backend, proxy, port = await _rig()
        for _ in range(5):
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            head, _ = await _request(reader, writer, "a.com", version="HTTP/1.0")
            assert head.status == 200
            writer.close()
        pool = proxy.pool
        counts = (pool.hits, pool.misses, pool.idle_count("backend0"))
        await proxy.stop()
        await backend.stop()
        return counts

    hits, misses, idle = asyncio.run(main())
    # First dispatch dials; the other four ride the pooled socket.
    assert misses == 1
    assert hits == 4
    assert idle == 1  # the warm socket is parked again after the last request


def test_ejection_drains_the_pool():
    async def main():
        config = GageConfig(proxy_probe_interval_s=30.0)
        backend, proxy, port = await _rig(config=config)
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        await _request(reader, writer, "a.com", version="HTTP/1.0")
        writer.close()
        assert proxy.pool.idle_count("backend0") == 1
        for _ in range(config.proxy_failure_threshold):
            proxy._note_backend_failure("backend0")
        idle = proxy.pool.idle_count("backend0")
        dropped = proxy.pool.dropped
        up = [status.rpn_id for status in proxy.node_scheduler.up_nodes()]
        await proxy.stop()
        await backend.stop()
        return idle, dropped, up

    idle, dropped, up = asyncio.run(main())
    assert idle == 0
    assert dropped == 1
    assert "backend0" not in up


def test_probe_readmission_seeds_the_pool():
    async def main():
        config = GageConfig(proxy_probe_interval_s=0.05)
        backend, proxy, port = await _rig(config=config)
        for _ in range(config.proxy_failure_threshold):
            proxy._note_backend_failure("backend0")
        assert proxy.pool.idle_count("backend0") == 0
        for _ in range(40):
            await asyncio.sleep(0.05)
            if proxy.node_scheduler.get("backend0").up:
                break
        up = proxy.node_scheduler.get("backend0").up
        idle = proxy.pool.idle_count("backend0")
        await proxy.stop()
        await backend.stop()
        return up, idle

    up, idle = asyncio.run(main())
    assert up
    assert idle == 1  # the successful probe connection was parked


def test_stale_pooled_connection_is_retried_on_a_fresh_dial():
    async def main():
        backend, proxy, port = await _rig()

        # A decoy server that accepts, then slams the door on first byte:
        # the parked connection looks healthy until it is actually used.
        async def slam(reader, writer):
            await reader.read(1024)
            writer.close()

        decoy = await asyncio.start_server(slam, "127.0.0.1", 0)
        decoy_port = decoy.sockets[0].getsockname()[1]
        stale_reader, stale_writer = await asyncio.open_connection(
            "127.0.0.1", decoy_port
        )
        assert proxy.pool.put("backend0", stale_reader, stale_writer)

        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        head, body = await _request(reader, writer, "a.com", version="HTTP/1.0")
        writer.close()
        stats = proxy.stats
        failures = proxy._consecutive_failures.get("backend0", 0)
        decoy.close()
        await decoy.wait_closed()
        await proxy.stop()
        await backend.stop()
        return head, body, stats, failures

    head, body, stats, failures = asyncio.run(main())
    assert head.status == 200
    assert len(body) == 500
    assert stats.completed == 1
    assert stats.failed == 0
    # A stale pooled socket is the pool's fault, not the back end's.
    assert failures == 0
