"""The multi-worker proxy: spawn, credit wire protocol, crash recovery,
and the global per-subscriber guarantee under overload.

The integration tests here start real worker *processes* (via
``python -m repro.proxy.worker_main``) sharing one ``SO_REUSEPORT``
port, so they are the slowest in the proxy suite — each pays one or
more interpreter start-ups.
"""

import asyncio
import os
import pickle
import signal

import pytest

from repro.core import GageConfig, Subscriber
from repro.harness.loadgen import ProxyRig, closed_loop
from repro.proxy.backend import BackendServer
from repro.proxy.workers import (
    WorkerSpec,
    WorkerSupervisor,
    _vec_from_list,
    _vec_map_from_wire,
    _vec_map_to_wire,
)
from repro.resources import ResourceVector


class TestWireHelpers:
    def test_vector_map_roundtrip(self):
        vectors = {
            "gold": ResourceVector(0.25, 0.5, 4096.0),
            "bronze": ResourceVector(0.0, 0.0, 1.0),
        }
        assert _vec_map_from_wire(_vec_map_to_wire(vectors)) == vectors

    def test_malformed_vector_rejected(self):
        with pytest.raises(ValueError):
            _vec_from_list([1.0, 2.0])
        with pytest.raises(ValueError):
            _vec_from_list("nope")

    def test_non_dict_map_is_empty(self):
        assert _vec_map_from_wire(None) == {}
        assert _vec_map_from_wire([1, 2]) == {}


class TestWorkerSpec:
    def test_pickle_roundtrip(self):
        spec = WorkerSpec(
            worker_id=1,
            host="127.0.0.1",
            port=8080,
            control_path="/tmp/ctl.sock",
            subscribers=(Subscriber("a.com", 50.0),),
            backends=(("backend0", ("127.0.0.1", 9000)),),
            config=GageConfig(),
            backend_capacity=ResourceVector(1.0, 1.0, 1e6),
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec


class TestSupervisorConstruction:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            WorkerSupervisor(
                [Subscriber("a.com", 100)],
                {"backend0": ("127.0.0.1", 9000)},
                workers=0,
            )

    def test_rejects_no_backends(self):
        with pytest.raises(ValueError):
            WorkerSupervisor([Subscriber("a.com", 100)], {})

    def test_partitions_reservations_and_capacity(self):
        supervisor = WorkerSupervisor(
            [Subscriber("a.com", 100), Subscriber("b.com", 60)],
            {"backend0": ("127.0.0.1", 9000)},
            workers=4,
            backend_capacity=ResourceVector(1.0, 1.0, 12_500_000.0),
        )
        per_worker = {
            sub.name: sub.reservation_grps
            for sub in supervisor._worker_subscribers
        }
        assert per_worker == {"a.com": 25.0, "b.com": 15.0}
        assert supervisor._worker_capacity == ResourceVector(
            0.25, 0.25, 3_125_000.0
        )
        # The allocator keeps the *global* reservations for spare shares.
        assert supervisor.allocator.reservations == {"a.com": 100, "b.com": 60}


async def _wait_until(predicate, timeout_s, interval_s=0.1):
    """Poll ``predicate`` until truthy or ``timeout_s`` elapses."""
    loop = asyncio.get_event_loop()
    deadline = loop.time() + timeout_s
    while loop.time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval_s)
    return predicate()


def test_two_workers_share_port_and_rebalance():
    """Both workers serve traffic, report credit, and the supervisor's
    allocator runs rebalance rounds with a coherent merged metric view."""

    async def main():
        rig = ProxyRig(workers=2, num_backends=2, time_scale=0.0)
        port = await rig.start()
        supervisor = rig.supervisor
        try:
            ok = await _wait_until(
                lambda: sum(s.reports for s in supervisor._states.values()) >= 2,
                timeout_s=15.0,
            )
            assert ok, "workers never reported on the control channel"
            result = await closed_loop(
                "127.0.0.1",
                port,
                site=rig.site,
                concurrency=8,
                total_requests=200,
                keep_alive=False,
            )
            await _wait_until(
                lambda: supervisor.allocator.rebalances > 0, timeout_s=5.0
            )
            snapshot = supervisor.metrics_snapshot()
            return result, supervisor.alive_workers(), supervisor.restarts, (
                supervisor.allocator.rebalances,
                snapshot,
            )
        finally:
            await rig.stop()

    result, alive, restarts, (rebalances, snapshot) = asyncio.run(main())
    assert result.completed == 200
    assert result.errors == 0
    assert alive == 2
    assert restarts == 0
    assert rebalances > 0
    proxy_metrics = [
        name for name in snapshot["metrics"] if name.startswith("repro.proxy")
    ]
    assert proxy_metrics, "worker metrics missing from the aggregated view"


def test_worker_crash_restart_reclaims_and_regrants_credit():
    """SIGKILL one worker: the supervisor restarts it, reclaims its
    last-reported balances into the carry pool, and re-grants them to
    backlogged shards once load arrives."""

    async def main():
        rig = ProxyRig(
            workers=2, num_backends=2, time_scale=0.0, reservation_grps=400.0
        )
        port = await rig.start()
        supervisor = rig.supervisor
        try:
            ok = await _wait_until(
                lambda: all(
                    s.reports > 0 for s in supervisor._states.values()
                ),
                timeout_s=15.0,
            )
            assert ok, "workers never reported on the control channel"

            victim_pid = supervisor.worker_pid(0)
            assert victim_pid is not None
            os.kill(victim_pid, signal.SIGKILL)

            restarted = await _wait_until(
                lambda: supervisor.restarts >= 1, timeout_s=10.0
            )
            assert restarted, "supervisor never detected the dead worker"
            carry_after_reclaim = supervisor.allocator.carry_total()

            recovered = await _wait_until(
                lambda: supervisor.alive_workers() == 2
                and supervisor.worker_pid(0) not in (None, victim_pid),
                timeout_s=15.0,
            )
            assert recovered, "killed worker was not replaced"

            # Sustained overload creates backlog; the carried credit must
            # ride a rebalance back out to the shards.
            load = asyncio.ensure_future(
                closed_loop(
                    "127.0.0.1",
                    port,
                    site=rig.site,
                    concurrency=8,
                    duration_s=4.0,
                    keep_alive=False,
                )
            )
            regranted = await _wait_until(
                lambda: supervisor.allocator.carry_total().net_bytes
                < carry_after_reclaim.net_bytes,
                timeout_s=6.0,
                interval_s=0.2,
            )
            result = await load
            return carry_after_reclaim, regranted, result, supervisor.restarts
        finally:
            await rig.stop()

    carry, regranted, result, restarts = asyncio.run(main())
    assert restarts >= 1
    # The dead worker's idle balance was positive, so reclaim banked it.
    assert carry.net_bytes > 0
    assert regranted, "carried credit was never re-granted under backlog"
    assert result.completed > 0


def test_four_workers_hold_global_grps_isolation_under_overload():
    """Overload two subscribers across 4 workers: completed throughput
    must split in reservation proportion (the *global* guarantee), even
    though each connection lands on an arbitrary worker."""

    async def main():
        config = GageConfig(
            scheduling_cycle_s=0.002,
            accounting_cycle_s=0.05,
            dispatch_window_s=60.0,
            spare_policy="none",  # throughput == reservation, exactly
        )
        gold = Subscriber("gold.example", 160.0, queue_capacity=512)
        bronze = Subscriber("bronze.example", 80.0, queue_capacity=512)
        files = {"/index.html": 2048}
        sites = {"gold.example": files, "bronze.example": files}
        backends = []
        addrs = {}
        for index in range(2):
            backend = BackendServer(sites, time_scale=0.0)
            backend_port = await backend.start()
            backends.append(backend)
            addrs["backend{}".format(index)] = ("127.0.0.1", backend_port)
        supervisor = WorkerSupervisor(
            [gold, bronze], addrs, config=config, workers=4
        )
        port = await supervisor.start()
        try:
            ok = await _wait_until(
                lambda: all(
                    s.reports > 0 for s in supervisor._states.values()
                ),
                timeout_s=20.0,
            )
            assert ok, "workers never reported on the control channel"
            results = await asyncio.gather(
                closed_loop(
                    "127.0.0.1",
                    port,
                    site="gold.example",
                    concurrency=16,
                    duration_s=3.0,
                    keep_alive=False,
                ),
                closed_loop(
                    "127.0.0.1",
                    port,
                    site="bronze.example",
                    concurrency=16,
                    duration_s=3.0,
                    keep_alive=False,
                ),
            )
            return results, supervisor.alive_workers(), supervisor.restarts
        finally:
            await supervisor.stop()
            for backend in backends:
                await backend.stop()

    (gold_result, bronze_result), alive, restarts = asyncio.run(main())
    assert alive == 4
    assert restarts == 0
    # Overload actually happened: the backends answer instantly
    # (time_scale=0), so median latency far above service time means the
    # credit gate — not the data plane — paced every request.
    assert gold_result.latency_s(0.5) > 0.02
    assert bronze_result.latency_s(0.5) > 0.02
    assert bronze_result.completed > 0
    ratio = gold_result.completed / bronze_result.completed
    # Reservations are 160:80 GRPS == 2.0; the global guarantee must
    # hold within 10% despite connection-level skew across workers.
    assert ratio == pytest.approx(2.0, rel=0.10)
