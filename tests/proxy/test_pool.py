"""Unit tests for the backend connection pool."""

import asyncio

import pytest

from repro.proxy.backend_pool import BackendPool
from repro.telemetry import get_registry


async def _socket_pair():
    """A real (reader, writer) pair connected to a throwaway server."""
    accepted = asyncio.get_event_loop().create_future()

    def on_connect(reader, writer):
        if not accepted.done():
            accepted.set_result((reader, writer))

    server = await asyncio.start_server(on_connect, host="127.0.0.1", port=0)
    port = server.sockets[0].getsockname()[1]
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    peer = await accepted
    return reader, writer, peer, server


async def _teardown(*pairs):
    for _reader, writer, peer, server in pairs:
        writer.close()
        peer[1].close()
        server.close()
        await server.wait_closed()


def test_get_on_empty_pool_is_a_miss():
    async def main():
        pool = BackendPool()
        assert pool.get("rpn0") is None
        return pool

    pool = asyncio.run(main())
    assert pool.misses == 1
    assert pool.hits == 0
    assert pool.hit_rate == 0.0


def test_put_then_get_round_trips_the_connection():
    async def main():
        pool = BackendPool()
        pair = await _socket_pair()
        reader, writer = pair[0], pair[1]
        try:
            assert pool.put("rpn0", reader, writer)
            assert pool.idle_count("rpn0") == 1
            assert pool.get("rpn0") == (reader, writer)
            assert pool.idle_count() == 0
        finally:
            await _teardown(pair)
        return pool

    pool = asyncio.run(main())
    assert pool.hits == 1
    assert pool.reuses == 1


def test_pool_is_lifo():
    async def main():
        pool = BackendPool()
        first = await _socket_pair()
        second = await _socket_pair()
        try:
            pool.put("rpn0", first[0], first[1])
            pool.put("rpn0", second[0], second[1])
            assert pool.get("rpn0") == (second[0], second[1])
        finally:
            await _teardown(first, second)

    asyncio.run(main())


def test_put_past_capacity_closes_the_extra_connection():
    async def main():
        pool = BackendPool(size_per_backend=1)
        first = await _socket_pair()
        second = await _socket_pair()
        try:
            assert pool.put("rpn0", first[0], first[1])
            assert not pool.put("rpn0", second[0], second[1])
            assert pool.idle_count("rpn0") == 1
            assert second[1].transport.is_closing()
        finally:
            await _teardown(first, second)

    asyncio.run(main())


def test_size_zero_disables_pooling():
    async def main():
        pool = BackendPool(size_per_backend=0)
        pair = await _socket_pair()
        try:
            assert not pool.put("rpn0", pair[0], pair[1])
            assert pair[1].transport.is_closing()
            assert pool.get("rpn0") is None
        finally:
            await _teardown(pair)

    asyncio.run(main())


def test_idle_expiry_on_get():
    async def main():
        clock = [0.0]
        pool = BackendPool(idle_timeout_s=5.0, now_fn=lambda: clock[0])
        pair = await _socket_pair()
        try:
            pool.put("rpn0", pair[0], pair[1])
            clock[0] = 6.0
            assert pool.get("rpn0") is None
        finally:
            await _teardown(pair)
        return pool

    pool = asyncio.run(main())
    assert pool.expired == 1
    assert pool.misses == 1


def test_sweep_evicts_expired_connections():
    async def main():
        clock = [0.0]
        pool = BackendPool(idle_timeout_s=5.0, now_fn=lambda: clock[0])
        pair = await _socket_pair()
        try:
            pool.put("rpn0", pair[0], pair[1])
            assert pool.sweep() == 0
            clock[0] = 6.0
            assert pool.sweep() == 1
            assert pool.idle_count() == 0
        finally:
            await _teardown(pair)
        return pool

    pool = asyncio.run(main())
    assert pool.expired == 1


def test_get_skips_connection_closed_by_peer():
    async def main():
        pool = BackendPool()
        pair = await _socket_pair()
        try:
            pool.put("rpn0", pair[0], pair[1])
            pair[2][1].close()
            # Let the FIN arrive so the parked reader sees EOF.
            await asyncio.sleep(0.05)
            assert pool.get("rpn0") is None
        finally:
            await _teardown(pair)
        return pool

    pool = asyncio.run(main())
    assert pool.expired == 1


def test_drop_backend_closes_every_idle_connection():
    async def main():
        pool = BackendPool()
        first = await _socket_pair()
        second = await _socket_pair()
        try:
            pool.put("rpn0", first[0], first[1])
            pool.put("rpn0", second[0], second[1])
            assert pool.drop_backend("rpn0") == 2
            assert pool.idle_count("rpn0") == 0
            assert first[1].transport.is_closing()
            assert second[1].transport.is_closing()
        finally:
            await _teardown(first, second)
        return pool

    pool = asyncio.run(main())
    assert pool.dropped == 2


def test_telemetry_counters_track_pool_activity():
    async def main():
        pool = BackendPool()
        pair = await _socket_pair()
        try:
            pool.get("rpn0")
            pool.put("rpn0", pair[0], pair[1])
            pool.get("rpn0")
        finally:
            await _teardown(pair)

    asyncio.run(main())
    registry = get_registry()
    values = {
        metric.name: metric.value
        for metric in registry.metrics(prefix="repro.proxy.pool.")
    }
    assert values["repro.proxy.pool.hits"] == 1
    assert values["repro.proxy.pool.misses"] == 1
    assert values["repro.proxy.pool.reuses"] == 1
    assert values["repro.proxy.pool.idle"] == 0


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        BackendPool(size_per_backend=-1)
    with pytest.raises(ValueError):
        BackendPool(idle_timeout_s=0.0)


def test_default_expiry_follows_the_loop_clock_across_a_jump():
    """The pool's default clock is the *loop* clock, not time.monotonic.

    Regression: entries were stamped with ``time.monotonic`` while the
    rest of the proxy runs on ``loop.time()``; on a loop whose clock
    jumps (suspend/resume, test clocks), idle expiry went silently
    wrong.  A jump of the loop clock past the timeout must expire a
    parked connection.
    """

    async def main():
        loop = asyncio.get_event_loop()
        pool = BackendPool(idle_timeout_s=5.0)
        pair = await _socket_pair()
        reader, writer = pair[0], pair[1]
        original_time = loop.time
        try:
            assert pool.put("rpn0", reader, writer)
            loop.time = lambda: original_time() + 3600.0
            assert pool.get("rpn0") is None
        finally:
            loop.time = original_time
            await _teardown(pair)
        return pool

    pool = asyncio.run(main())
    assert pool.expired == 1
    assert pool.hits == 0
