"""Tests for event-loop selection (:mod:`repro.proxy.loop_policy`).

The development container has no uvloop, so the interesting branches
here are the stdlib ones: ``auto`` degrading gracefully, ``uvloop``
failing loudly, and the config knob validating its values.  When uvloop
*is* present (CI variants may install it) the same tests still hold —
they branch on :func:`uvloop_available` instead of assuming either way.
"""

import asyncio

import pytest

from repro.core.config import GageConfig
from repro.proxy import loop_policy


def test_resolve_asyncio_always_wins():
    assert loop_policy.resolve("asyncio") == "asyncio"


def test_resolve_unknown_policy_raises():
    with pytest.raises(ValueError):
        loop_policy.resolve("gevent")


def test_resolve_auto_matches_availability():
    expected = "uvloop" if loop_policy.uvloop_available() else "asyncio"
    assert loop_policy.resolve("auto") == expected


def test_resolve_uvloop_demanded_but_missing_raises():
    if loop_policy.uvloop_available():
        assert loop_policy.resolve("uvloop") == "uvloop"
    else:
        with pytest.raises(RuntimeError):
            loop_policy.resolve("uvloop")


def test_new_event_loop_returns_working_loop():
    loop, implementation = loop_policy.new_event_loop("asyncio")
    try:
        assert implementation == "asyncio"
        assert loop.run_until_complete(asyncio.sleep(0, result=42)) == 42
    finally:
        loop.close()


def test_run_executes_and_returns():
    async def main():
        return loop_policy.running_loop_kind()

    kind = loop_policy.run(main(), policy="asyncio")
    assert kind == "asyncio"


def test_run_auto_reports_the_loop_it_picked():
    async def main():
        return loop_policy.running_loop_kind()

    expected = loop_policy.resolve("auto")
    assert loop_policy.run(main(), policy="auto") == expected


def test_running_loop_kind_outside_a_loop_is_none():
    assert loop_policy.running_loop_kind() is None


def test_config_knob_defaults_to_auto_and_validates():
    assert GageConfig().proxy_event_loop == "auto"
    for valid in loop_policy.POLICIES:
        assert GageConfig(proxy_event_loop=valid).proxy_event_loop == valid
    with pytest.raises(ValueError):
        GageConfig(proxy_event_loop="twisted")
