"""Tests for the zero-copy write paths (vectored write + sendfile).

Two layers: unit tests driving :func:`vectored_write` /
:func:`sendfile_exactly` over real localhost sockets (asserting via
:data:`splice_stats` which path actually ran), and an integration test
proving the back-end server emits byte-identical responses whether a
body leaves via sendfile or via the buffered vectored path.
"""

import asyncio

import pytest

from repro.proxy.backend import BackendServer
from repro.proxy.splice import (
    _tail_after,
    sendfile_exactly,
    splice_stats,
    vectored_write,
)


class SinkWriter:
    """A StreamWriter stand-in (no transport) collecting written bytes."""

    def __init__(self):
        self.data = bytearray()

    def write(self, chunk):
        self.data.extend(chunk)

    def writelines(self, chunks):
        for chunk in chunks:
            self.data.extend(chunk)

    async def drain(self):
        pass


async def _socket_pair():
    """Client-side (reader, writer) plus the server-side peer and server."""
    accepted = asyncio.get_event_loop().create_future()

    def on_connect(reader, writer):
        if not accepted.done():
            accepted.set_result((reader, writer))

    server = await asyncio.start_server(on_connect, host="127.0.0.1", port=0)
    port = server.sockets[0].getsockname()[1]
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    peer = await accepted
    return reader, writer, peer, server


async def _cleanup(*pairs):
    for _reader, writer, (peer_reader, peer_writer), server in pairs:
        writer.close()
        peer_writer.close()
        server.close()
        await server.wait_closed()


async def _read_all(reader):
    data = bytearray()
    while True:
        chunk = await reader.read(65536)
        if not chunk:
            return bytes(data)
        data.extend(chunk)


def test_tail_after_slices_across_pieces():
    pieces = [b"abc", b"defg", b"hi"]
    assert [bytes(p) for p in _tail_after(pieces, 0)] == [b"abc", b"defg", b"hi"]
    assert [bytes(p) for p in _tail_after(pieces, 3)] == [b"defg", b"hi"]
    assert [bytes(p) for p in _tail_after(pieces, 5)] == [b"fg", b"hi"]
    assert _tail_after(pieces, 9) == []


def test_vectored_write_direct_over_empty_transport_buffer():
    pieces = [b"HEAD\r\n\r\n", b"x" * 1024, memoryview(b"y" * 512)]
    total = sum(len(p) for p in pieces)

    async def main():
        pair = await _socket_pair()
        try:
            splice_stats.reset()
            sent = vectored_write(pair[1], pieces)
            await pair[1].drain()
            pair[1].write_eof()
            received = await _read_all(pair[2][0])
            return sent, received
        finally:
            await _cleanup(pair)

    sent, received = asyncio.run(main())
    # Small payload into a fresh socket: the whole list goes out in one
    # vectored syscall.
    assert sent == total
    assert received == b"".join(bytes(p) for p in pieces)
    assert splice_stats.sendmsg_writes == 1
    assert splice_stats.sendmsg_bytes == total


def test_vectored_write_preserves_order_when_buffer_nonempty():
    # With bytes already queued in the transport, a direct socket write
    # would overtake them; vectored_write must detect this and buffer.
    queued = b"q" * (4 * 1024 * 1024)
    pieces = [b"HEAD", b"BODY"]

    async def main():
        pair = await _socket_pair()
        try:
            collector = asyncio.ensure_future(_read_all(pair[2][0]))
            pair[1].write(queued)  # no drain: transport buffer fills
            splice_stats.reset()
            sent = vectored_write(pair[1], pieces)
            direct = splice_stats.sendmsg_writes
            await pair[1].drain()
            pair[1].write_eof()
            received = await collector
            return sent, direct, received
        finally:
            await _cleanup(pair)

    sent, direct, received = asyncio.run(main())
    assert sent == 0
    assert direct == 0
    assert received == queued + b"HEADBODY"


def test_vectored_write_test_double_falls_back_to_writelines():
    sink = SinkWriter()
    splice_stats.reset()
    assert vectored_write(sink, [b"a", b"", b"bc"]) == 0
    assert bytes(sink.data) == b"abc"
    assert splice_stats.sendmsg_writes == 0
    assert splice_stats.buffered_writes == 1


def test_vectored_write_empty_pieces_is_a_noop():
    sink = SinkWriter()
    splice_stats.reset()
    assert vectored_write(sink, [b"", b""]) == 0
    assert bytes(sink.data) == b""
    assert splice_stats.buffered_writes == 0


def test_sendfile_exactly_over_socket(tmp_path):
    payload = bytes(range(256)) * 2048  # 512 KiB
    path = tmp_path / "body.bin"
    path.write_bytes(payload)

    async def main():
        pair = await _socket_pair()
        try:
            splice_stats.reset()
            collector = asyncio.ensure_future(_read_all(pair[2][0]))
            with open(path, "rb") as body_file:
                sent = await sendfile_exactly(pair[1], body_file, len(payload))
            await pair[1].drain()
            pair[1].write_eof()
            received = await collector
            return sent, received
        finally:
            await _cleanup(pair)

    sent, received = asyncio.run(main())
    assert sent == len(payload)
    assert received == payload
    assert splice_stats.sendfile_writes == 1
    assert splice_stats.sendfile_bytes == len(payload)


def test_sendfile_exactly_offset_and_count(tmp_path):
    payload = b"0123456789" * 100
    path = tmp_path / "body.bin"
    path.write_bytes(payload)

    async def main():
        pair = await _socket_pair()
        try:
            collector = asyncio.ensure_future(_read_all(pair[2][0]))
            with open(path, "rb") as body_file:
                sent = await sendfile_exactly(pair[1], body_file, 300, offset=50)
            await pair[1].drain()
            pair[1].write_eof()
            received = await collector
            return sent, received
        finally:
            await _cleanup(pair)

    sent, received = asyncio.run(main())
    assert sent == 300
    assert received == payload[50:350]


def test_sendfile_exactly_short_file_raises(tmp_path):
    path = tmp_path / "short.bin"
    path.write_bytes(b"only-this")

    async def main():
        pair = await _socket_pair()
        try:
            drain = asyncio.ensure_future(_read_all(pair[2][0]))
            try:
                with open(path, "rb") as body_file:
                    with pytest.raises(asyncio.IncompleteReadError):
                        await sendfile_exactly(pair[1], body_file, 10_000)
            finally:
                pair[1].write_eof()
                await drain
        finally:
            await _cleanup(pair)

    asyncio.run(main())


def test_sendfile_exactly_stream_fallback(tmp_path):
    payload = b"z" * 200_000
    path = tmp_path / "body.bin"
    path.write_bytes(payload)

    async def main():
        sink = SinkWriter()
        splice_stats.reset()
        with open(path, "rb") as body_file:
            sent = await sendfile_exactly(sink, body_file, len(payload))
        return sent, bytes(sink.data)

    sent, data = asyncio.run(main())
    assert sent == len(payload)
    assert data == payload
    assert splice_stats.sendfile_writes == 0
    assert splice_stats.buffered_writes == 1


# -- backend integration: sendfile vs buffered byte parity ---------------


async def _read_response(reader):
    head = await reader.readuntil(b"\r\n\r\n")
    length = 0
    for line in head.split(b"\r\n"):
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":", 1)[1])
    body = await reader.readexactly(length)
    return head + body


def _serve_rounds(use_sendfile, requests=3):
    """Start a backend, fetch the same object ``requests`` times keep-alive."""

    async def main():
        backend = BackendServer(
            {"site.example": {"/index.html": 40_000}},
            time_scale=0.0,
            use_sendfile=use_sendfile,
        )
        port = await backend.start()
        try:
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            try:
                responses = []
                for _ in range(requests):
                    writer.write(
                        b"GET /index.html HTTP/1.1\r\n"
                        b"host: site.example\r\n"
                        b"connection: keep-alive\r\n\r\n"
                    )
                    await writer.drain()
                    responses.append(await _read_response(reader))
            finally:
                writer.close()
        finally:
            await backend.stop()
        return responses, backend.sendfile_served

    return asyncio.run(main())


def test_backend_sendfile_and_buffered_responses_are_identical():
    splice_stats.reset()
    via_sendfile, served_sendfile = _serve_rounds(use_sendfile=True)
    sendfile_bodies = splice_stats.sendfile_writes
    via_buffered, served_buffered = _serve_rounds(use_sendfile=False)

    # The first (cold) request is buffered in both configurations; the
    # warm ones diverge in mechanism but must not diverge in bytes.
    assert via_sendfile == via_buffered
    assert served_sendfile == 2  # requests 2..3 hit the warm cache
    assert served_buffered == 0
    # The last response's stats increment can race server shutdown, so
    # require only that the sendfile machinery demonstrably engaged.
    assert sendfile_bodies >= 1


def test_backend_sendfile_cleans_up_body_file():
    async def main():
        backend = BackendServer(
            {"site.example": {"/index.html": 1024}}, time_scale=0.0
        )
        await backend.start()
        path = backend._body_path
        await backend.stop()
        return path, backend._body_path

    path, after = asyncio.run(main())
    assert path is not None
    assert after is None
    import os

    assert not os.path.exists(path)
