"""End-to-end tests of the asyncio deployment on localhost sockets."""

import asyncio

import pytest

from repro.core import GageConfig, Subscriber
from repro.proxy import BackendServer, GageProxy
from repro.proxy.demo import run_demo
from repro.proxy.http import read_response_head


async def _get(port, site, path="/index.html"):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        "GET {} HTTP/1.0\r\nHost: {}\r\n\r\n".format(path, site).encode("latin-1")
    )
    await writer.drain()
    head = await read_response_head(reader)
    body = b""
    while len(body) < head.content_length:
        chunk = await reader.read(65536)
        if not chunk:
            break
        body += chunk
    writer.close()
    return head, body


def test_backend_serves_files_with_usage_header():
    async def main():
        backend = BackendServer(
            {"a.com": {"/index.html": 1234}}, time_scale=0.0
        )
        port = await backend.start()
        head, body = await _get(port, "a.com")
        await backend.stop()
        return head, body

    head, body = asyncio.run(main())
    assert head.status == 200
    assert len(body) == 1234
    cpu, disk, net = head.usage()
    assert cpu > 0
    assert net == 1234


def test_backend_404_for_unknown_path():
    async def main():
        backend = BackendServer({"a.com": {"/index.html": 10}}, time_scale=0.0)
        port = await backend.start()
        head, _body = await _get(port, "a.com", path="/missing")
        await backend.stop()
        return head

    head = asyncio.run(main())
    assert head.status == 404


def test_proxy_relays_and_strips_usage_header():
    async def main():
        backend = BackendServer({"a.com": {"/index.html": 5000}}, time_scale=0.0)
        backend_port = await backend.start()
        proxy = GageProxy(
            [Subscriber("a.com", 1000)],
            {"backend0": ("127.0.0.1", backend_port)},
        )
        port = await proxy.start()
        head, body = await _get(port, "a.com")
        stats = proxy.stats
        await proxy.stop()
        await backend.stop()
        return head, body, stats

    head, body, stats = asyncio.run(main())
    assert head.status == 200
    assert len(body) == 5000
    assert head.usage() is None  # the proxy strips the accounting header
    assert stats.completed == 1
    assert stats.bytes_relayed == 5000


def test_proxy_rejects_unknown_host():
    async def main():
        backend = BackendServer({"a.com": {"/index.html": 10}}, time_scale=0.0)
        backend_port = await backend.start()
        proxy = GageProxy(
            [Subscriber("a.com", 1000)],
            {"backend0": ("127.0.0.1", backend_port)},
        )
        port = await proxy.start()
        head, _ = await _get(port, "unknown.com")
        stats = proxy.stats
        await proxy.stop()
        await backend.stop()
        return head, stats

    head, stats = asyncio.run(main())
    assert head.status == 404
    assert stats.rejected_unknown_host == 1


def test_proxy_feeds_usage_into_accounting():
    async def main():
        backend = BackendServer({"a.com": {"/index.html": 2000}}, time_scale=0.0)
        backend_port = await backend.start()
        config = GageConfig(accounting_cycle_s=0.05)
        proxy = GageProxy(
            [Subscriber("a.com", 1000)],
            {"backend0": ("127.0.0.1", backend_port)},
            config=config,
        )
        port = await proxy.start()
        for _ in range(5):
            await _get(port, "a.com")
        await asyncio.sleep(0.15)  # two accounting cycles
        account = proxy.accounting.account("a.com")
        await proxy.stop()
        await backend.stop()
        return account

    account = asyncio.run(main())
    assert account.reported_complete == 5
    assert account.measured_usage_total.net_bytes == 5 * 2000


def test_demo_isolation_under_overload():
    """The real-socket deployment preserves the QoS property: a site
    within its reservation is unaffected by an overloaded neighbour."""
    result = asyncio.run(
        run_demo(
            reservations={"gold.com": 120.0, "flood.com": 20.0},
            rates={"gold.com": 50.0, "flood.com": 120.0},
            duration_s=2.5,
            num_backends=2,
            time_scale=0.2,
            queue_capacity=64,
        )
    )
    gold_done = result.completed.get("gold.com", 0)
    gold_issued = result.issued.get("gold.com", 1)
    # gold (under its reservation) completes essentially everything.
    assert gold_done >= 0.95 * gold_issued
    # flood (6x its reservation) is throttled: completions + refusals
    # bounded; its latency exceeds gold's (queueing behind its credit).
    assert result.mean_latency_s("flood.com") > result.mean_latency_s("gold.com")


def test_proxy_requires_backends():
    with pytest.raises(ValueError):
        GageProxy([Subscriber("a.com", 10)], {})
