"""SO_REUSEPORT accept balance across worker processes.

The kernel hashes each new connection to one of the listening sockets;
with a closed-loop client pool cycling many short connections, every
worker must take a share of the accepts — a worker stuck at zero means
its socket never joined the reuseport group (or its loop wedged), which
silently halves the deployment's capacity.
"""

import asyncio

from repro.harness.loadgen import ProxyRig, closed_loop


async def _wait_until(predicate, timeout_s, interval_s=0.1):
    loop = asyncio.get_event_loop()
    deadline = loop.time() + timeout_s
    while loop.time() < deadline:
        if predicate():
            return True
        await asyncio.sleep(interval_s)
    return predicate()


def test_no_worker_starves_under_closed_loop():
    async def main():
        rig = ProxyRig(workers=2, num_backends=2, time_scale=0.0)
        port = await rig.start()
        supervisor = rig.supervisor
        try:
            ok = await _wait_until(
                lambda: sum(s.reports for s in supervisor._states.values()) >= 2,
                timeout_s=15.0,
            )
            assert ok, "workers never reported on the control channel"
            result = await closed_loop(
                "127.0.0.1",
                port,
                site=rig.site,
                concurrency=16,
                total_requests=400,
                keep_alive=False,
            )
            # One more report round so the final accept counters land.
            counted = await _wait_until(
                lambda: sum(supervisor.accept_counts().values()) >= 400,
                timeout_s=10.0,
            )
            return result, counted, supervisor.accept_counts()
        finally:
            await rig.stop()

    result, counted, accepts = asyncio.run(main())
    assert result.completed == 400
    assert counted, "accept counters never reached the supervisor"
    assert set(accepts) == {0, 1}
    # 400 fresh connections through the kernel's reuseport hash: both
    # workers must have accepted a non-trivial share.
    assert all(count > 0 for count in accepts.values()), accepts
    total = sum(accepts.values())
    assert total >= 400
    assert min(accepts.values()) / total > 0.05, accepts
