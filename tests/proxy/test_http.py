"""Tests for the minimal HTTP head parser."""

import asyncio

import pytest

from repro.proxy.http import (
    HTTPError,
    HTTPRequestHead,
    HTTPResponseHead,
    MAX_HEAD_BYTES,
    USAGE_HEADER,
    read_request_head,
    read_response_head,
    render_request_head,
    render_response_head,
    wants_keep_alive,
)


def parse_request(data: bytes):
    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request_head(reader)

    return asyncio.run(main())


def parse_response(data: bytes):
    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_response_head(reader)

    return asyncio.run(main())


def test_parse_request_head():
    raw = b"GET /index.html HTTP/1.0\r\nHost: site1.example.com:8080\r\nContent-Length: 12\r\n\r\n"
    head = parse_request(raw)
    assert head.method == "GET"
    assert head.path == "/index.html"
    assert head.version == "HTTP/1.0"
    assert head.host == "site1.example.com"  # port stripped
    assert head.content_length == 12


def test_parse_request_without_host():
    raw = b"GET / HTTP/1.0\r\n\r\n"
    head = parse_request(raw)
    assert head.host is None
    assert head.content_length == 0


def test_parse_request_malformed_request_line():
    with pytest.raises(HTTPError):
        parse_request(b"GARBAGE\r\n\r\n")


def test_parse_request_malformed_header():
    with pytest.raises(HTTPError):
        parse_request(b"GET / HTTP/1.0\r\nbadheader\r\n\r\n")


def test_parse_response_head_with_usage():
    raw = (
        b"HTTP/1.0 200 OK\r\nContent-Length: 2000\r\n"
        b"X-Gage-Usage: 0.010000,0.009000,2000\r\n\r\n"
    )
    head = parse_response(raw)
    assert head.status == 200
    assert head.reason == "OK"
    assert head.content_length == 2000
    cpu, disk, net = head.usage()
    assert cpu == pytest.approx(0.010)
    assert disk == pytest.approx(0.009)
    assert net == 2000


def test_response_without_usage_header():
    raw = b"HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n"
    head = parse_response(raw)
    assert head.usage() is None


def test_response_malformed_usage_header():
    raw = b"HTTP/1.0 200 OK\r\nX-Gage-Usage: 1,2\r\n\r\n"
    head = parse_response(raw)
    with pytest.raises(HTTPError):
        head.usage()


def test_render_request_roundtrip():
    head = HTTPRequestHead(
        method="GET", path="/x", version="HTTP/1.0", headers={"host": "a.com"}
    )
    back = parse_request(render_request_head(head))
    assert back.method == "GET"
    assert back.host == "a.com"


def test_render_response_strips_usage():
    head = HTTPResponseHead(
        version="HTTP/1.0",
        status=200,
        reason="OK",
        headers={"content-length": "5", USAGE_HEADER: "1,2,3"},
    )
    wire = render_response_head(head, drop_usage=True)
    assert b"x-gage-usage" not in wire.lower()
    kept = render_response_head(head, drop_usage=False)
    assert b"x-gage-usage" in kept.lower()


def test_oversized_head_rejected():
    filler = b"x-filler: " + b"a" * MAX_HEAD_BYTES + b"\r\n"
    with pytest.raises(HTTPError):
        parse_request(b"GET / HTTP/1.1\r\n" + filler + b"\r\n")


def test_head_overrunning_reader_limit_rejected():
    # Past the StreamReader's own buffer limit (64 KiB default) readuntil
    # raises LimitOverrunError before the terminator is ever seen; that
    # must surface as HTTPError, not escape and kill the handler task.
    filler = b"x-filler: " + b"a" * (5 * 64 * 1024) + b"\r\n"
    with pytest.raises(HTTPError):
        parse_request(b"GET / HTTP/1.1\r\n" + filler + b"\r\n")


def test_post_without_content_length_defaults_to_zero_body():
    head = parse_request(b"POST /submit HTTP/1.1\r\nhost: a.com\r\n\r\n")
    assert head.method == "POST"
    assert head.content_length == 0


def test_malformed_content_length_rejected():
    head = parse_request(
        b"POST / HTTP/1.1\r\nhost: a.com\r\ncontent-length: ten\r\n\r\n"
    )
    with pytest.raises(HTTPError):
        head.content_length
    negative = parse_request(
        b"POST / HTTP/1.1\r\nhost: a.com\r\ncontent-length: -5\r\n\r\n"
    )
    with pytest.raises(HTTPError):
        negative.content_length


def test_multiple_host_headers_rejected():
    raw = b"GET / HTTP/1.1\r\nHost: a.com\r\nHost: b.com\r\n\r\n"
    with pytest.raises(HTTPError):
        parse_request(raw)


def test_header_names_case_insensitive():
    raw = (
        b"GET / HTTP/1.1\r\nHoSt: a.com\r\nCONTENT-LENGTH: 7\r\n"
        b"CoNnEcTiOn: ClOsE\r\n\r\n"
    )
    head = parse_request(raw)
    assert head.host == "a.com"
    assert head.content_length == 7
    assert not wants_keep_alive(head)


def test_wants_keep_alive_version_defaults():
    http11 = parse_request(b"GET / HTTP/1.1\r\nhost: a.com\r\n\r\n")
    assert wants_keep_alive(http11)
    http10 = parse_request(b"GET / HTTP/1.0\r\nhost: a.com\r\n\r\n")
    assert not wants_keep_alive(http10)
    http10_ka = parse_request(
        b"GET / HTTP/1.0\r\nhost: a.com\r\nconnection: keep-alive\r\n\r\n"
    )
    assert wants_keep_alive(http10_ka)
    http11_close = parse_request(
        b"GET / HTTP/1.1\r\nhost: a.com\r\nconnection: close\r\n\r\n"
    )
    assert not wants_keep_alive(http11_close)


def test_keep_alive_request_boundaries_on_one_stream():
    # Two pipelined requests: each parse must consume exactly one head,
    # leaving the next request intact on the stream.
    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(
            b"GET /one HTTP/1.1\r\nhost: a.com\r\n\r\n"
            b"GET /two HTTP/1.1\r\nhost: b.com\r\n\r\n"
        )
        reader.feed_eof()
        first = await read_request_head(reader)
        second = await read_request_head(reader)
        return first, second

    first, second = asyncio.run(main())
    assert first.path == "/one"
    assert first.host == "a.com"
    assert second.path == "/two"
    assert second.host == "b.com"
