"""Tests for the minimal HTTP head parser."""

import asyncio

import pytest

from repro.proxy.http import (
    HTTPError,
    HTTPRequestHead,
    HTTPResponseHead,
    USAGE_HEADER,
    read_request_head,
    read_response_head,
    render_request_head,
    render_response_head,
)


def parse_request(data: bytes):
    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_request_head(reader)

    return asyncio.run(main())


def parse_response(data: bytes):
    async def main():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_response_head(reader)

    return asyncio.run(main())


def test_parse_request_head():
    raw = b"GET /index.html HTTP/1.0\r\nHost: site1.example.com:8080\r\nContent-Length: 12\r\n\r\n"
    head = parse_request(raw)
    assert head.method == "GET"
    assert head.path == "/index.html"
    assert head.version == "HTTP/1.0"
    assert head.host == "site1.example.com"  # port stripped
    assert head.content_length == 12


def test_parse_request_without_host():
    raw = b"GET / HTTP/1.0\r\n\r\n"
    head = parse_request(raw)
    assert head.host is None
    assert head.content_length == 0


def test_parse_request_malformed_request_line():
    with pytest.raises(HTTPError):
        parse_request(b"GARBAGE\r\n\r\n")


def test_parse_request_malformed_header():
    with pytest.raises(HTTPError):
        parse_request(b"GET / HTTP/1.0\r\nbadheader\r\n\r\n")


def test_parse_response_head_with_usage():
    raw = (
        b"HTTP/1.0 200 OK\r\nContent-Length: 2000\r\n"
        b"X-Gage-Usage: 0.010000,0.009000,2000\r\n\r\n"
    )
    head = parse_response(raw)
    assert head.status == 200
    assert head.reason == "OK"
    assert head.content_length == 2000
    cpu, disk, net = head.usage()
    assert cpu == pytest.approx(0.010)
    assert disk == pytest.approx(0.009)
    assert net == 2000


def test_response_without_usage_header():
    raw = b"HTTP/1.0 404 Not Found\r\nContent-Length: 0\r\n\r\n"
    head = parse_response(raw)
    assert head.usage() is None


def test_response_malformed_usage_header():
    raw = b"HTTP/1.0 200 OK\r\nX-Gage-Usage: 1,2\r\n\r\n"
    head = parse_response(raw)
    with pytest.raises(HTTPError):
        head.usage()


def test_render_request_roundtrip():
    head = HTTPRequestHead(
        method="GET", path="/x", version="HTTP/1.0", headers={"host": "a.com"}
    )
    back = parse_request(render_request_head(head))
    assert back.method == "GET"
    assert back.host == "a.com"


def test_render_response_strips_usage():
    head = HTTPResponseHead(
        version="HTTP/1.0",
        status=200,
        reason="OK",
        headers={"content-length": "5", USAGE_HEADER: "1,2,3"},
    )
    wire = render_response_head(head, drop_usage=True)
    assert b"x-gage-usage" not in wire.lower()
    kept = render_response_head(head, drop_usage=False)
    assert b"x-gage-usage" in kept.lower()
