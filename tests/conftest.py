"""Suite-wide fixtures."""

import pytest

from repro.telemetry import registry as telemetry_registry


@pytest.fixture(autouse=True)
def _reset_telemetry():
    """Isolate every test's metrics: the process-wide registry is shared,
    so counters bumped by one test must never leak into the next."""
    telemetry_registry.reset()
    yield
    telemetry_registry.reset()
