"""Tests for the request-count weighted-fair dispatcher."""

import pytest

from repro.baselines.countfair import CountFairDispatcher
from repro.cluster import Machine, WebServer
from repro.sim import Environment
from repro.workload import SyntheticWorkload, WebRequest


def build(env, rates, file_bytes=2000, duration=4.0, **kw):
    workload = SyntheticWorkload(rates=rates, duration_s=duration, file_bytes=file_bytes)
    machine = Machine(env, "rpn0")
    server = WebServer(machine)
    for host in rates:
        server.host_site(host, files=workload.site_files(host))
    for path, size in machine.fs.walk():
        machine.cache.insert(path, size)
    dispatcher = CountFairDispatcher(env, [server], **kw)
    return dispatcher, workload


def test_validation():
    env = Environment()
    with pytest.raises(ValueError):
        CountFairDispatcher(env, [])
    dispatcher, _ = build(env, {"a": 1.0})
    with pytest.raises(ValueError):
        dispatcher.add_subscriber("x", -1.0)
    dispatcher.add_subscriber("a", 10.0)
    with pytest.raises(RuntimeError):
        dispatcher.add_subscriber("a", 10.0)


def test_unknown_host_rejected():
    env = Environment()
    dispatcher, _ = build(env, {"a": 1.0})
    assert not dispatcher.submit(WebRequest("nope", "/x", 100))


def test_reserved_counts_honoured_when_requests_uniform():
    """With uniform request costs, count metering behaves like Gage."""
    env = Environment()
    dispatcher, workload = build(env, {"a": 30.0, "b": 80.0}, duration=5.0)
    dispatcher.add_subscriber("a", 40.0)
    dispatcher.add_subscriber("b", 40.0)
    dispatcher.load_trace(workload.generate())
    env.run(until=5.0)
    # a (under its count reservation) is fully served.
    assert dispatcher.completed_rate("a", 1.0, 5.0) == pytest.approx(30.0, rel=0.1)
    # b gets its reservation plus whatever spare slots remain.
    assert dispatcher.completed_rate("b", 1.0, 5.0) > 40.0 * 0.9


def test_queue_capacity_drops():
    env = Environment()
    dispatcher, _ = build(env, {"a": 1.0}, cycle_s=100.0)  # scheduler idle
    queue = dispatcher.add_subscriber("a", 10.0, queue_capacity=2)
    for _ in range(5):
        dispatcher.submit(WebRequest("a", "/page0000.html", 2000))
    assert queue.dropped == 3
    assert queue.arrived == 5


def test_no_resource_awareness_by_design():
    """The defining blind spot: equal counts despite unequal costs."""
    env = Environment()
    light = SyntheticWorkload(rates={"light": 100.0}, duration_s=4.0, file_bytes=1024)
    heavy = SyntheticWorkload(rates={"heavy": 100.0}, duration_s=4.0, file_bytes=16 * 1024)
    machine = Machine(env, "rpn0")
    server = WebServer(machine, workers_per_site=2)
    server.host_site("light", files=light.site_files("light"))
    server.host_site("heavy", files=heavy.site_files("heavy"))
    for path, size in machine.fs.walk():
        machine.cache.insert(path, size)
    dispatcher = CountFairDispatcher(env, [server], max_in_flight_per_server=8)
    dispatcher.add_subscriber("light", 30.0)
    dispatcher.add_subscriber("heavy", 30.0)
    records = light.generate() + heavy.generate()
    records.sort(key=lambda r: r.at_s)
    dispatcher.load_trace(records)
    env.run(until=4.0)
    light_rate = dispatcher.completed_rate("light", 1.0, 4.0)
    heavy_rate = dispatcher.completed_rate("heavy", 1.0, 4.0)
    # The count meter treats a 16KB page like a 1KB one: heavy's byte
    # throughput dwarfs light's despite equal reservations.
    assert heavy_rate * 16 * 1024 > 4 * light_rate * 1024
