"""Tests for the strict-priority dispatcher baseline."""

import pytest

from repro.baselines import PriorityDispatcher
from repro.cluster import Machine, WebServer
from repro.sim import Environment
from repro.workload import SyntheticWorkload


def build(env, rates, duration=4.0):
    workload = SyntheticWorkload(rates=rates, duration_s=duration, file_bytes=2000)
    machine = Machine(env, "rpn0")
    server = WebServer(machine)
    for host in rates:
        server.host_site(host, files=workload.site_files(host))
    for path, size in machine.fs.walk():
        machine.cache.insert(path, size)
    dispatcher = PriorityDispatcher(env, [server])
    return dispatcher, workload


def test_requires_servers():
    with pytest.raises(ValueError):
        PriorityDispatcher(Environment(), [])


def test_class_registration():
    env = Environment()
    dispatcher, _ = build(env, {"a": 1.0})
    cls = dispatcher.add_class("premium", level=0, hosts=["a"])
    assert dispatcher.class_of("premium") is cls
    with pytest.raises(RuntimeError):
        dispatcher.add_class("premium", level=1, hosts=[])


def test_unclassified_host_rejected():
    env = Environment()
    dispatcher, _ = build(env, {"a": 1.0})
    from repro.workload import WebRequest

    assert not dispatcher.submit(WebRequest("unknown", "/x", 100))


def test_queue_capacity_drops():
    env = Environment()
    dispatcher, _ = build(env, {"a": 1.0})
    dispatcher.add_class("c", level=0, hosts=["a"], queue_capacity=2)
    from repro.workload import WebRequest

    for _ in range(5):
        dispatcher.submit(WebRequest("a", "/page0000.html", 2000))
    assert dispatcher.class_of("c").dropped == 3


def test_high_priority_starves_low():
    """The §2 critique: priority gives no quantitative guarantee — an
    overloaded premium class starves basic entirely."""
    env = Environment()
    rates = {"premium": 300.0, "basic": 30.0}
    dispatcher, workload = build(env, rates, duration=6.0)
    dispatcher.add_class("premium", level=0, hosts=["premium"])
    dispatcher.add_class("basic", level=1, hosts=["basic"])
    dispatcher.load_trace(workload.generate())
    env.run(until=6.0)
    premium_rate = dispatcher.completed_rate("premium", 2.0, 6.0)
    basic_rate = dispatcher.completed_rate("basic", 2.0, 6.0)
    # One ~100 req/s server: premium floods it and takes everything.
    assert premium_rate > 80.0
    assert basic_rate < 5.0  # basic is starved


def test_low_priority_served_when_capacity_remains():
    env = Environment()
    rates = {"premium": 40.0, "basic": 30.0}
    dispatcher, workload = build(env, rates, duration=4.0)
    dispatcher.add_class("premium", level=0, hosts=["premium"])
    dispatcher.add_class("basic", level=1, hosts=["basic"])
    dispatcher.load_trace(workload.generate())
    env.run(until=4.5)
    assert dispatcher.completed_rate("basic", 1.0, 4.0) == pytest.approx(30.0, rel=0.15)
