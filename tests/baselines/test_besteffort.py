"""Tests for the best-effort (no-QoS) dispatcher."""

import pytest

from repro.baselines import BestEffortDispatcher
from repro.cluster import Machine, WebServer
from repro.sim import Environment
from repro.workload import SyntheticWorkload


def build(env, num_servers=2, **dispatcher_kwargs):
    workload = SyntheticWorkload(rates={"a": 50.0}, duration_s=2.0, file_bytes=2000)
    servers = []
    for index in range(num_servers):
        machine = Machine(env, "rpn{}".format(index))
        server = WebServer(machine)
        server.host_site("a", files=workload.site_files("a"))
        servers.append(server)
    dispatcher = BestEffortDispatcher(env, servers, **dispatcher_kwargs)
    return dispatcher, servers, workload


def test_requires_servers():
    with pytest.raises(ValueError):
        BestEffortDispatcher(Environment(), [])


def test_serves_offered_load():
    env = Environment()
    dispatcher, _servers, workload = build(env)
    dispatcher.load_trace(workload.generate())
    env.run(until=3.0)
    assert dispatcher.submitted == 99
    assert len(dispatcher.completions) == 99
    assert dispatcher.dropped == 0


def test_balances_across_servers():
    env = Environment()
    dispatcher, servers, workload = build(env, num_servers=2)
    dispatcher.load_trace(workload.generate())
    env.run(until=3.0)
    counts = [server.sites["a"].completed for server in servers]
    assert abs(counts[0] - counts[1]) <= 2


def test_drops_when_all_servers_full():
    env = Environment()
    dispatcher, _servers, _workload = build(
        env, num_servers=1, max_in_flight_per_server=2
    )
    from repro.workload import WebRequest

    for _ in range(5):
        dispatcher.submit(WebRequest("a", "/page0000.html", 2000))
    assert dispatcher.dropped == 3
    env.run()
    assert len(dispatcher.completions) == 2


def test_completed_rate_windowing():
    env = Environment()
    dispatcher, _servers, workload = build(env)
    dispatcher.load_trace(workload.generate())
    env.run(until=3.0)
    full = dispatcher.completed_rate(0.0, 2.0)
    assert full == pytest.approx(49.5, rel=0.1)
    assert dispatcher.completed_rate(0.0, 0.0) == 0.0
    assert dispatcher.completed_rate(0.0, 2.0, host="a") == full
    assert dispatcher.completed_rate(0.0, 2.0, host="other") == 0.0


def test_no_isolation_property():
    """The defining deficiency: a flood degrades everyone (contrast with
    GageCluster's isolation tests)."""
    env = Environment()
    workload = SyntheticWorkload(
        rates={"good": 50.0, "flood": 400.0}, duration_s=4.0, file_bytes=2000
    )
    machine = Machine(env, "rpn0")
    server = WebServer(machine)
    for host in ("good", "flood"):
        server.host_site(host, files=workload.site_files(host))
    for path, size in machine.fs.walk():
        machine.cache.insert(path, size)
    dispatcher = BestEffortDispatcher(env, [server], max_in_flight_per_server=64)
    dispatcher.load_trace(workload.generate())
    env.run(until=4.0)
    good_rate = dispatcher.completed_rate(1.0, 4.0, host="good")
    # One server does ~100 req/s; the flood claims most of it, so the
    # good subscriber gets nowhere near its 50 req/s offered load.
    assert good_rate < 40.0
