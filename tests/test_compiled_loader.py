"""Tests for the compiled-core loader (:mod:`repro._compiled`).

The probe is pure filesystem inspection, so every decision branch can be
exercised against fabricated package trees under ``tmp_path`` — no mypyc
build is needed (the container these tests develop in has none).  The
real compiled build is exercised by the ``build-compiled`` CI job.
"""

import importlib.machinery
import json

import pytest

from repro import _compiled

#: A realistic ABI-tagged extension suffix for fabricated builds.
EXT_SUFFIX = importlib.machinery.EXTENSION_SUFFIXES[0]

ALL_MODULES = tuple(name for name, _rel in _compiled.COMPILED_MODULES)


@pytest.fixture(autouse=True)
def clean_pure_env(monkeypatch):
    """Probe decisions must come from the tree, not this session's env."""
    monkeypatch.delenv(_compiled.PURE_ENV, raising=False)


def make_tree(tmp_path, compiled=ALL_MODULES, stamp="current"):
    """Fabricate a package tree: sources for all, extensions for some.

    ``stamp`` is ``"current"`` (valid build stamp), ``None`` (no stamp
    file), or a dict written verbatim.
    """
    for name, rel_source in _compiled.COMPILED_MODULES:
        source = tmp_path / rel_source
        source.parent.mkdir(parents=True, exist_ok=True)
        source.write_text("# fabricated source for {}\n".format(name))
        if name in compiled:
            extension = source.with_name(source.name[: -len(".py")] + EXT_SUFFIX)
            extension.write_bytes(b"\x7fELF-not-really")
    if stamp is not None:
        if stamp == "current":
            stamp = {"api_version": _compiled.API_VERSION}
        (tmp_path / _compiled.STAMP_FILENAME).write_text(json.dumps(stamp))
    return str(tmp_path)


def test_probe_no_extensions(tmp_path):
    root = make_tree(tmp_path, compiled=(), stamp=None)
    status = _compiled.probe(root)
    assert not status.active
    assert "no compiled extensions" in status.reason
    assert status.extensions == {}


def test_probe_full_build_is_active(tmp_path):
    root = make_tree(tmp_path)
    status = _compiled.probe(root)
    assert status.active
    assert set(status.extensions) == set(ALL_MODULES)
    for path in status.extensions.values():
        assert path.endswith(EXT_SUFFIX)


def test_probe_repro_pure_overrides_a_valid_build(tmp_path, monkeypatch):
    root = make_tree(tmp_path)
    monkeypatch.setenv(_compiled.PURE_ENV, "1")
    status = _compiled.probe(root)
    assert not status.active
    assert _compiled.PURE_ENV in status.reason


def test_probe_repro_pure_zero_means_off(tmp_path, monkeypatch):
    root = make_tree(tmp_path)
    monkeypatch.setenv(_compiled.PURE_ENV, "0")
    assert _compiled.probe(root).active


def test_probe_refuses_partial_build(tmp_path):
    # A half-cleaned build must never mix native and interpreted hot
    # modules: refuse and name the missing ones.
    root = make_tree(tmp_path, compiled=ALL_MODULES[:2])
    status = _compiled.probe(root)
    assert not status.active
    assert "incomplete" in status.reason
    for name in ALL_MODULES[2:]:
        assert name in status.reason


def test_probe_refuses_unstamped_extensions(tmp_path):
    root = make_tree(tmp_path, stamp=None)
    status = _compiled.probe(root)
    assert not status.active
    assert "no build stamp" in status.reason
    # The refused extensions are still reported for diagnostics.
    assert set(status.extensions) == set(ALL_MODULES)


def test_probe_refuses_api_version_mismatch(tmp_path):
    root = make_tree(tmp_path, stamp={"api_version": _compiled.API_VERSION + 1})
    status = _compiled.probe(root)
    assert not status.active
    assert "api_version" in status.reason


def test_probe_refuses_corrupt_stamp(tmp_path):
    root = make_tree(tmp_path, stamp=None)
    (tmp_path / _compiled.STAMP_FILENAME).write_text("not json {")
    status = _compiled.probe(root)
    assert not status.active
    assert "no build stamp" in status.reason


def test_pure_source_finder_pins_hot_modules_only():
    finder = _compiled._PureSourceFinder(_compiled.package_dir())
    spec = finder.find_spec("repro.sim.engine")
    assert spec is not None
    assert spec.origin.endswith("engine.py")
    assert isinstance(spec.loader, importlib.machinery.SourceFileLoader)
    # Everything outside the hot set passes through to the normal finders.
    assert finder.find_spec("repro.core.config") is None
    assert finder.find_spec("json") is None


def test_this_session_runs_pure_and_consistent():
    # The development container has no mypyc build: the loader must
    # report pure, and the modules actually imported must agree.
    status = _compiled.status()
    assert status is _compiled.status(), "decision must be cached"
    assert not status.active
    assert _compiled.build_kind() == "pure"
    origins = _compiled.loaded_origins()
    assert set(origins) == set(ALL_MODULES)  # tier-1 imports them all
    for origin in origins.values():
        assert origin.endswith(".py"), origin
