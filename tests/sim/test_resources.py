"""Tests for Resource, PriorityResource, Container, and Store."""

import pytest

from repro.sim import Container, Environment, PriorityResource, Resource, Store


def test_resource_capacity_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_mutual_exclusion():
    env = Environment()
    resource = Resource(env, capacity=1)
    log = []

    def user(env, name, hold):
        with resource.request() as req:
            yield req
            log.append(("acquire", name, env.now))
            yield env.timeout(hold)
        log.append(("release", name, env.now))

    env.process(user(env, "a", 2.0))
    env.process(user(env, "b", 1.0))
    env.run()
    assert log == [
        ("acquire", "a", 0.0),
        ("release", "a", 2.0),
        ("acquire", "b", 2.0),
        ("release", "b", 3.0),
    ]


def test_resource_parallel_capacity():
    env = Environment()
    resource = Resource(env, capacity=2)
    finished = []

    def user(env, name):
        with resource.request() as req:
            yield req
            yield env.timeout(1.0)
        finished.append((name, env.now))

    for name in ["a", "b", "c"]:
        env.process(user(env, name))
    env.run()
    assert finished == [("a", 1.0), ("b", 1.0), ("c", 2.0)]


def test_resource_counters():
    env = Environment()
    resource = Resource(env, capacity=1)

    def holder(env):
        with resource.request() as req:
            yield req
            assert resource.count == 1
            yield env.timeout(1.0)

    def waiter(env):
        yield env.timeout(0.5)
        req = resource.request()
        assert resource.queue_length == 1
        yield req
        resource.release(req)

    env.process(holder(env))
    env.process(waiter(env))
    env.run()
    assert resource.count == 0
    assert resource.queue_length == 0


def test_resource_cancel_waiting_request():
    env = Environment()
    resource = Resource(env, capacity=1)
    granted = []

    def holder(env):
        with resource.request() as req:
            yield req
            yield env.timeout(5.0)

    def impatient(env):
        yield env.timeout(0.1)
        req = resource.request()
        yield env.timeout(1.0)
        req.cancel()
        granted.append(req.triggered)

    env.process(holder(env))
    env.process(impatient(env))
    env.run()
    assert granted == [False]
    assert resource.queue_length == 0


def test_priority_resource_orders_by_priority():
    env = Environment()
    resource = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        with resource.request() as req:
            yield req
            yield env.timeout(1.0)

    def user(env, name, priority, delay):
        yield env.timeout(delay)
        with resource.request(priority=priority) as req:
            yield req
            order.append(name)

    env.process(holder(env))
    env.process(user(env, "low", 5, 0.1))
    env.process(user(env, "high", 1, 0.2))  # arrives later, higher priority
    env.run()
    assert order == ["high", "low"]


def test_priority_resource_fifo_within_priority():
    env = Environment()
    resource = PriorityResource(env, capacity=1)
    order = []

    def holder(env):
        with resource.request() as req:
            yield req
            yield env.timeout(1.0)

    def user(env, name, delay):
        yield env.timeout(delay)
        with resource.request(priority=3) as req:
            yield req
            order.append(name)

    env.process(holder(env))
    env.process(user(env, "first", 0.1))
    env.process(user(env, "second", 0.2))
    env.run()
    assert order == ["first", "second"]


def test_container_levels():
    env = Environment()
    tank = Container(env, capacity=10.0, init=5.0)
    assert tank.level == 5.0

    def proc(env):
        yield tank.get(3.0)
        assert tank.level == 2.0
        yield tank.put(4.0)
        assert tank.level == 6.0

    env.run(until=env.process(proc(env)))


def test_container_get_blocks_until_available():
    env = Environment()
    tank = Container(env, capacity=10.0, init=0.0)
    log = []

    def consumer(env):
        yield tank.get(5.0)
        log.append(("got", env.now))

    def producer(env):
        yield env.timeout(2.0)
        yield tank.put(5.0)

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert log == [("got", 2.0)]


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=4.0, init=4.0)
    log = []

    def producer(env):
        yield tank.put(2.0)
        log.append(("put", env.now))

    def consumer(env):
        yield env.timeout(3.0)
        yield tank.get(2.0)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [("put", 3.0)]


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=6)
    tank = Container(env, capacity=5)
    with pytest.raises(ValueError):
        tank.put(0)
    with pytest.raises(ValueError):
        tank.get(-1)


def test_store_fifo_order():
    env = Environment()
    store = Store(env)
    received = []

    def producer(env):
        for item in ["x", "y", "z"]:
            yield store.put(item)
            yield env.timeout(1.0)

    def consumer(env):
        for _ in range(3):
            item = yield store.get()
            received.append(item)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == ["x", "y", "z"]


def test_store_get_blocks_when_empty():
    env = Environment()
    store = Store(env)
    log = []

    def consumer(env):
        item = yield store.get()
        log.append((item, env.now))

    def producer(env):
        yield env.timeout(2.5)
        yield store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert log == [("late", 2.5)]


def test_store_bounded_capacity_blocks_put():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put("a")
        yield store.put("b")
        log.append(("second-put", env.now))

    def consumer(env):
        yield env.timeout(4.0)
        yield store.get()

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [("second-put", 4.0)]


def test_store_try_put_respects_capacity():
    env = Environment()
    store = Store(env, capacity=2)
    assert store.try_put("a")
    assert store.try_put("b")
    assert not store.try_put("c")
    env.run()
    assert store.items == ["a", "b"]


def test_store_len():
    env = Environment()
    store = Store(env)
    store.put(1)
    store.put(2)
    env.run()
    assert len(store) == 2
