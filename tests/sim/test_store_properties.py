"""Property-based tests for Store and Container invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Container, Environment, Store


@settings(max_examples=60, deadline=None)
@given(
    items=st.lists(st.integers(), min_size=1, max_size=40),
    capacity=st.integers(1, 10),
)
def test_store_is_fifo_under_bounded_capacity(items, capacity):
    """Whatever the capacity, items come out in the order they went in."""
    env = Environment()
    store = Store(env, capacity=capacity)
    received = []

    def producer(env):
        for item in items:
            yield store.put(item)

    def consumer(env):
        for _ in items:
            value = yield store.get()
            received.append(value)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert received == items


@settings(max_examples=60, deadline=None)
@given(
    amounts=st.lists(st.floats(0.1, 10.0), min_size=1, max_size=20),
    capacity=st.floats(10.0, 100.0),
)
def test_container_level_bounded(amounts, capacity):
    """The level never exceeds capacity nor goes negative."""
    env = Environment()
    tank = Container(env, capacity=capacity)
    levels = []

    def producer(env):
        for amount in amounts:
            if tank.level + amount <= capacity:
                yield tank.put(amount)
            levels.append(tank.level)
            yield env.timeout(0.1)

    def consumer(env):
        yield env.timeout(0.05)
        for amount in amounts:
            if tank.level >= amount:
                yield tank.get(amount)
            levels.append(tank.level)
            yield env.timeout(0.1)

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert all(0 <= level <= capacity + 1e-9 for level in levels)


@settings(max_examples=40, deadline=None)
@given(holds=st.lists(st.floats(0.01, 1.0), min_size=2, max_size=10))
def test_resource_never_exceeds_capacity(holds):
    from repro.sim import Resource

    env = Environment()
    resource = Resource(env, capacity=2)
    over_capacity = []

    def user(env, hold):
        with resource.request() as req:
            yield req
            if resource.count > resource.capacity:
                over_capacity.append(resource.count)
            yield env.timeout(hold)

    for hold in holds:
        env.process(user(env, hold))
    env.run()
    assert over_capacity == []
    assert resource.count == 0
