"""Tests for generator-based processes and interrupts."""

import pytest

from repro.sim import Environment, Interrupt, Process, SimulationError


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        Process(env, lambda: None)


def test_process_return_value():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)
        return 99

    assert env.run(until=env.process(proc(env))) == 99


def test_process_waits_on_other_process():
    env = Environment()

    def child(env):
        yield env.timeout(2.0)
        return "child-result"

    def parent(env):
        value = yield env.process(child(env))
        assert value == "child-result"
        assert env.now == 2.0
        return "parent-done"

    assert env.run(until=env.process(parent(env))) == "parent-done"


def test_interrupt_wakes_waiting_process():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as interrupt:
            log.append((env.now, interrupt.cause))

    def interrupter(env, victim):
        yield env.timeout(1.0)
        victim.interrupt("wake up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(1.0, "wake up")]


def test_interrupt_finished_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(0.1)

    proc = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_self_interrupt_rejected():
    env = Environment()
    failures = []

    def selfish(env):
        yield env.timeout(0.1)
        me = env.active_process
        try:
            me.interrupt()
        except SimulationError:
            failures.append(True)

    env.process(selfish(env))
    env.run()
    assert failures == [True]


def test_interrupted_process_can_resume_waiting():
    env = Environment()
    log = []

    def sleeper(env):
        remaining = 10.0
        started = env.now
        try:
            yield env.timeout(remaining)
        except Interrupt:
            elapsed = env.now - started
            yield env.timeout(remaining - elapsed)
        log.append(env.now)

    def interrupter(env, victim):
        yield env.timeout(4.0)
        victim.interrupt()

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    # Total sleep time is still 10s: 4s before interrupt + 6s after.
    assert log == [10.0]


def test_process_failure_propagates_to_waiter():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise KeyError("gone")

    def parent(env):
        with pytest.raises(KeyError):
            yield env.process(bad(env))
        return "handled"

    assert env.run(until=env.process(parent(env))) == "handled"


def test_yield_non_event_raises_in_process():
    env = Environment()

    def bad(env):
        yield 42  # not an Event

    proc = env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run(until=proc)


def test_is_alive_tracking():
    env = Environment()

    def proc(env):
        yield env.timeout(1.0)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_interrupt_cause_accessible():
    exc = Interrupt({"reason": "test"})
    assert exc.cause == {"reason": "test"}
