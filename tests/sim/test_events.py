"""Tests for primitive events and conditions."""

import pytest

from repro.sim import AllOf, AnyOf, Environment, SimulationError


def test_event_lifecycle_flags():
    env = Environment()
    event = env.event()
    assert not event.triggered
    assert not event.processed
    event.succeed(42)
    assert event.triggered
    assert not event.processed
    env.run()
    assert event.processed
    assert event.ok
    assert event.value == 42


def test_event_value_unavailable_before_trigger():
    env = Environment()
    event = env.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_double_trigger_rejected():
    env = Environment()
    event = env.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)
    with pytest.raises(SimulationError):
        event.fail(RuntimeError())


def test_fail_requires_exception_instance():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")


def test_failed_event_throws_into_waiter():
    env = Environment()
    event = env.event()
    caught = []

    def proc(env):
        try:
            yield event
        except ValueError as exc:
            caught.append(str(exc))

    env.process(proc(env))
    event.fail(ValueError("bad"), delay=1.0)
    env.run()
    assert caught == ["bad"]


def test_delayed_succeed():
    env = Environment()
    event = env.event()
    seen = []

    def proc(env):
        value = yield event
        seen.append((env.now, value))

    env.process(proc(env))
    event.succeed("late", delay=3.0)
    env.run()
    assert seen == [(3.0, "late")]


def test_anyof_triggers_on_first():
    env = Environment()

    def proc(env):
        first = env.timeout(1.0, value="fast")
        second = env.timeout(5.0, value="slow")
        result = yield first | second
        assert env.now == 1.0
        assert first in result
        assert result[first] == "fast"
        assert second not in result

    env.run(until=env.process(proc(env)))


def test_allof_waits_for_all():
    env = Environment()

    def proc(env):
        first = env.timeout(1.0, value="a")
        second = env.timeout(5.0, value="b")
        result = yield first & second
        assert env.now == 5.0
        assert result[first] == "a"
        assert result[second] == "b"

    env.run(until=env.process(proc(env)))


def test_allof_empty_triggers_immediately():
    env = Environment()
    cond = AllOf(env, [])
    env.run()
    assert cond.triggered
    assert cond.value == {}


def test_anyof_propagates_failure():
    env = Environment()
    bad = env.event()

    def proc(env):
        with pytest.raises(RuntimeError):
            yield AnyOf(env, [bad, env.timeout(10.0)])

    env.process(proc(env))
    bad.fail(RuntimeError("broken"), delay=1.0)
    env.run()


def test_condition_rejects_mixed_environments():
    env_a = Environment()
    env_b = Environment()
    with pytest.raises(SimulationError):
        AllOf(env_a, [env_a.event(), env_b.event()])


def test_yield_already_processed_event_resumes_immediately():
    env = Environment()
    done = env.event()
    done.succeed("early")
    values = []

    def proc(env):
        yield env.timeout(2.0)
        value = yield done  # processed long ago
        values.append((env.now, value))

    env.process(proc(env))
    env.run()
    assert values == [(2.0, "early")]
