"""Tests for seeded random streams."""

from repro.sim import RandomStreams


def test_same_seed_same_sequence():
    a = RandomStreams(seed=7).stream("arrivals")
    b = RandomStreams(seed=7).stream("arrivals")
    assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]


def test_different_names_independent():
    streams = RandomStreams(seed=7)
    a = [streams.stream("arrivals").random() for _ in range(10)]
    b = [streams.stream("sizes").random() for _ in range(10)]
    assert a != b


def test_stream_is_cached():
    streams = RandomStreams(seed=1)
    assert streams.stream("x") is streams.stream("x")


def test_draw_order_does_not_perturb_other_streams():
    # Stream "b" must produce the same numbers whether or not "a" was used.
    lone = RandomStreams(seed=3)
    b_alone = [lone.stream("b").random() for _ in range(5)]

    mixed = RandomStreams(seed=3)
    mixed.stream("a").random()
    mixed.stream("a").random()
    b_mixed = [mixed.stream("b").random() for _ in range(5)]
    assert b_alone == b_mixed


def test_fork_changes_streams():
    parent = RandomStreams(seed=5)
    child = parent.fork("worker-1")
    assert child.seed != parent.seed
    a = [parent.stream("x").random() for _ in range(5)]
    b = [child.stream("x").random() for _ in range(5)]
    assert a != b


def test_fork_deterministic():
    a = RandomStreams(seed=5).fork("w").stream("x").random()
    b = RandomStreams(seed=5).fork("w").stream("x").random()
    assert a == b
