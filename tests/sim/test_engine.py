"""Tests for the simulation event loop."""

import pytest

from repro.sim import Environment, SimulationError


def test_clock_starts_at_initial_time():
    env = Environment(initial_time=5.0)
    assert env.now == 5.0


def test_timeout_advances_clock():
    env = Environment()

    def proc(env):
        yield env.timeout(1.5)
        assert env.now == 1.5
        yield env.timeout(0.5)
        assert env.now == 2.0

    env.process(proc(env))
    env.run()
    assert env.now == 2.0


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def proc(env):
        while True:
            yield env.timeout(1.0)

    env.process(proc(env))
    env.run(until=3.5)
    assert env.now == 3.5


def test_run_until_past_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(SimulationError):
        env.run(until=5.0)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(2.0)
        return "done"

    result = env.run(until=env.process(proc(env)))
    assert result == "done"
    assert env.now == 2.0


def test_run_until_event_never_triggered_raises():
    env = Environment()
    orphan = env.event()

    def proc(env):
        yield env.timeout(1.0)

    env.process(proc(env))
    with pytest.raises(SimulationError):
        env.run(until=orphan)


def test_same_time_events_fifo_order():
    env = Environment()
    order = []

    def proc(env, name):
        yield env.timeout(1.0)
        order.append(name)

    for name in ["a", "b", "c", "d"]:
        env.process(proc(env, name))
    env.run()
    assert order == ["a", "b", "c", "d"]


def test_negative_delay_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.schedule(env.event(), delay=-1.0)


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-0.1)


def test_step_with_empty_heap_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_peek_reports_next_event_time():
    env = Environment()
    assert env.peek() == float("inf")
    env.timeout(4.2)
    assert env.peek() == pytest.approx(4.2)


def test_unhandled_process_failure_propagates_from_run():
    env = Environment()

    def bad(env):
        yield env.timeout(1.0)
        raise RuntimeError("boom")

    env.process(bad(env))
    with pytest.raises(RuntimeError, match="boom"):
        env.run()


def test_run_to_completion_drains_heap():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(1)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [1]
    assert env.peek() == float("inf")
