"""Tests for event scheduling priorities and kernel internals."""

from repro.sim import Environment, NORMAL_PRIORITY, URGENT_PRIORITY
from repro.sim.events import Event


def test_urgent_events_run_before_normal_at_same_instant():
    env = Environment()
    order = []

    normal = Event(env)
    normal._ok = True
    normal._value = None
    normal.callbacks.append(lambda e: order.append("normal"))
    env.schedule(normal, delay=1.0, priority=NORMAL_PRIORITY)

    urgent = Event(env)
    urgent._ok = True
    urgent._value = None
    urgent.callbacks.append(lambda e: order.append("urgent"))
    env.schedule(urgent, delay=1.0, priority=URGENT_PRIORITY)

    env.run()
    assert order == ["urgent", "normal"]


def test_resource_grant_preempts_same_time_user_events():
    """Resource grants use the urgent priority so a releasing holder's
    successor acquires before same-instant user timers observe state."""
    from repro.sim import Resource

    env = Environment()
    resource = Resource(env, capacity=1)
    observations = []

    def holder(env):
        with resource.request() as req:
            yield req
            yield env.timeout(1.0)

    def waiter(env):
        with resource.request() as req:
            yield req
            observations.append(("acquired", env.now))
            yield env.timeout(1.0)  # hold while the observer looks

    def observer(env):
        yield env.timeout(1.0)
        observations.append(("count", resource.count))

    env.process(holder(env))
    env.process(waiter(env))
    env.process(observer(env))
    env.run()
    # The waiter was granted at t=1.0 before the observer looked.
    assert ("acquired", 1.0) in observations
    assert ("count", 1) in observations


def test_event_repr_states():
    env = Environment()
    event = env.event()
    assert "untriggered" in repr(event)
    event.succeed()
    assert "triggered" in repr(event)
    env.run()
    assert "processed" in repr(event)


def test_environment_repr():
    env = Environment()
    env.timeout(1.0)
    text = repr(env)
    assert "pending=1" in text


def test_process_repr_and_waiting_on():
    env = Environment()

    def proc(env):
        yield env.timeout(5.0)

    p = env.process(proc(env))
    assert "alive" in repr(p)
    env.run(until=1.0)
    assert p.waiting_on is not None
    env.run()
    assert "finished" in repr(p)
    assert p.waiting_on is None
