"""Determinism guarantees of the simulation kernel and full cluster."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Environment


@settings(max_examples=50, deadline=None)
@given(
    delays=st.lists(
        st.floats(0.0, 10.0, allow_nan=False, allow_infinity=False),
        min_size=1,
        max_size=30,
    )
)
def test_event_order_reproducible(delays):
    """Two runs over the same schedule produce identical event orders."""

    def run_once():
        env = Environment()
        order = []
        for index, delay in enumerate(delays):
            env.call_later(delay, lambda i=index: order.append((env.now, i)))
        env.run()
        return order

    assert run_once() == run_once()


@settings(max_examples=50, deadline=None)
@given(
    delays=st.lists(st.floats(0.0, 5.0, allow_nan=False), min_size=2, max_size=20)
)
def test_equal_time_events_fifo(delays):
    """Events at identical times fire in scheduling order."""
    env = Environment()
    order = []
    when = 1.0
    for index in range(len(delays)):
        env.call_later(when, lambda i=index: order.append(i))
    env.run()
    assert order == list(range(len(delays)))


def test_call_later_passes_arguments():
    env = Environment()
    seen = []
    env.call_later(0.5, seen.append, "payload")
    env.run()
    assert seen == ["payload"]


def test_full_cluster_run_is_deterministic():
    """Two identical cluster runs produce identical completion logs."""
    from repro.core import GageCluster, Subscriber
    from repro.workload import SyntheticWorkload

    def run_once():
        env = Environment()
        subs = [Subscriber("a", 80), Subscriber("b", 40)]
        workload = SyntheticWorkload(
            rates={"a": 70.0, "b": 90.0}, duration_s=3.0, file_bytes=2000, seed=5
        )
        cluster = GageCluster(
            env, subs, {n: workload.site_files(n) for n in ("a", "b")}, num_rpns=2
        )
        cluster.load_trace(workload.generate())
        cluster.run(3.0)
        return cluster.completions

    assert run_once() == run_once()


def test_packet_mode_run_is_deterministic():
    from repro.core import GageCluster, Subscriber
    from repro.workload import SyntheticWorkload

    def run_once():
        env = Environment()
        subs = [Subscriber("a", 100)]
        workload = SyntheticWorkload(rates={"a": 20.0}, duration_s=1.5, file_bytes=2000)
        cluster = GageCluster(
            env, subs, {"a": workload.site_files("a")}, num_rpns=2, fidelity="packet"
        )
        cluster.load_trace(workload.generate())
        cluster.run(3.0)
        stats = cluster.fleet.stats
        return (stats.completed, tuple(stats.latencies_s))

    assert run_once() == run_once()
