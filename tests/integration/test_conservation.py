"""The credit-conservation property of the QoS control loop.

Over a long run with a persistently backlogged queue, the *measured*
usage delivered to a subscriber converges to its credit rate — the
feedback loop replaces every dispatch-time prediction with the measured
usage, so prediction errors cancel instead of accumulating.  This is the
invariant behind every Figure-3 claim, tested here directly across
workload shapes and accounting cycles.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GageCluster, GageConfig, Subscriber
from repro.resources import ResourceVector
from repro.sim import Environment
from repro.workload import SyntheticWorkload


def delivered_usage_rate(cluster, name, start_s, end_s):
    total = ResourceVector.ZERO
    for at, host, usage in cluster.rdn.accounting.usage_log:
        if host == name and start_s <= at < end_s:
            total = total + usage
    return total.scaled(1.0 / (end_s - start_s))


@settings(max_examples=8, deadline=None)
@given(
    file_kb=st.sampled_from([2, 6, 12]),
    cycle_s=st.sampled_from([0.05, 0.1, 0.5]),
)
def test_backlogged_queue_delivers_its_credit(file_kb, cycle_s):
    """For several page sizes and accounting cycles, the dominant-resource
    usage rate of an overloaded subscriber lands within a few percent of
    its reservation."""
    env = Environment()
    reservation = 120.0
    subs = [Subscriber("a", reservation, queue_capacity=4096)]
    file_bytes = file_kb * 1024
    # One request's dominant cost in generic requests (net-bound for
    # pages above 2 KB, roughly CPU-bound at 2 KB).
    generics_per_request = max(file_bytes / 2000.0, 1.0)
    offered = reservation / generics_per_request * 1.6
    workload = SyntheticWorkload(
        rates={"a": offered}, duration_s=20.0, file_bytes=file_bytes
    )
    config = GageConfig(accounting_cycle_s=cycle_s, spare_policy="none")
    cluster = GageCluster(
        env, subs, {"a": workload.site_files("a")}, num_rpns=4, config=config
    )
    cluster.prewarm_caches()
    cluster.load_trace(workload.generate())
    cluster.run(20.0)
    usage = delivered_usage_rate(cluster, "a", 4.0, 20.0)
    delivered_grps = usage.in_generic_requests(config.generic_request)
    assert delivered_grps == pytest.approx(reservation, rel=0.06)
