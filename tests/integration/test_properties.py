"""Property-based tests of system-level invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import GageCluster, Subscriber
from repro.sim import Environment
from repro.workload import SyntheticWorkload


@settings(max_examples=10, deadline=None)
@given(
    res_a=st.integers(30, 120),
    res_b=st.integers(30, 120),
    overload=st.floats(2.0, 6.0),
)
def test_isolation_invariant(res_a, res_b, overload):
    """For any reservations fitting the cluster and any overload factor on
    subscriber b, subscriber a (offered within its reservation) is served
    at its offered rate."""
    env = Environment()
    subs = [
        Subscriber("a", res_a, queue_capacity=256),
        Subscriber("b", res_b, queue_capacity=256),
    ]
    rate_a = 0.9 * res_a
    rate_b = overload * res_b
    workload = SyntheticWorkload(
        rates={"a": rate_a, "b": rate_b}, duration_s=5.0, file_bytes=2000
    )
    # 3 RPNs = ~300 GRPS; reservations sum to at most 240.
    cluster = GageCluster(
        env, subs, {n: workload.site_files(n) for n in ("a", "b")}, num_rpns=3
    )
    cluster.prewarm_caches()
    cluster.load_trace(workload.generate())
    cluster.run(5.0)
    report = cluster.service_report("a", 2.0, 5.0)
    assert report.served_rate >= 0.9 * rate_a
    # And b never exceeds what physics allows.  Measured over the full
    # run: inside a sub-window, draining backlog queued *before* the
    # window can legitimately push served above the arrival rate.
    report_b = cluster.service_report("b", 0.0, 5.0)
    assert report_b.served <= report_b.arrived
    assert report_b.served_rate <= rate_b + 1


@settings(max_examples=8, deadline=None)
@given(
    reservations=st.lists(st.integers(20, 80), min_size=2, max_size=4),
)
def test_work_conservation_under_total_overload(reservations):
    """When every queue is overloaded, total service approaches cluster
    capacity: the scheduler never idles resources while work waits."""
    env = Environment()
    names = ["s{}".format(i) for i in range(len(reservations))]
    subs = [
        Subscriber(name, grps, queue_capacity=512)
        for name, grps in zip(names, reservations)
    ]
    rates = {name: 250.0 for name in names}
    workload = SyntheticWorkload(rates=rates, duration_s=5.0, file_bytes=2000)
    cluster = GageCluster(
        env, subs, {n: workload.site_files(n) for n in names}, num_rpns=2
    )
    cluster.prewarm_caches()
    cluster.load_trace(workload.generate())
    cluster.run(5.0)
    total = sum(r.served_rate for r in cluster.all_reports(2.0, 5.0))
    # 2 RPNs of ~99 effective GRPS each (includes the 56.7us overhead).
    assert total > 0.85 * 195.0


@settings(max_examples=8, deadline=None)
@given(sizes=st.lists(st.integers(1, 8000), min_size=1, max_size=6))
def test_tcp_delivers_any_payload_sequence(sizes):
    """Random message sizes arrive complete and in order over simulated TCP."""
    from tests.net.conftest import TwoHostNet

    env = Environment()
    net = TwoHostNet(env)
    received = []

    def serve(conn):
        def server(env):
            expected = sum(sizes)
            total = 0
            while total < expected:
                payload, length = yield conn.receive()
                total += length
                if payload is not None:
                    received.append(payload)
        env.process(server(env))

    net.b.stack.listen(80, serve)

    def client(env):
        conn = net.a.stack.connect(net.b.ip, 80)
        yield conn.established
        for index, size in enumerate(sizes):
            yield conn.send(size, payload=index)

    env.run(until=env.process(client(env)))
    env.run()
    assert received == list(range(len(sizes)))


@settings(max_examples=10, deadline=None)
@given(
    res_hi=st.integers(100, 200),
    ratio=st.floats(1.2, 3.0),
)
def test_spare_split_tracks_reservation_ratio(res_hi, ratio):
    """With two persistently overloaded queues, spare throughput divides
    roughly in proportion to reservations (the Table 2 law), for any
    reservation pair that fits the cluster."""
    res_lo = int(res_hi / ratio)
    env = Environment()
    subs = [
        Subscriber("hi", res_hi, queue_capacity=512),
        Subscriber("lo", res_lo, queue_capacity=512),
    ]
    workload = SyntheticWorkload(
        rates={"hi": 900.0, "lo": 900.0}, duration_s=6.0, file_bytes=2000
    )
    cluster = GageCluster(
        env, subs, {n: workload.site_files(n) for n in ("hi", "lo")}, num_rpns=8
    )
    cluster.prewarm_caches()
    cluster.load_trace(workload.generate())
    cluster.run(6.0)
    hi = cluster.service_report("hi", 2.0, 6.0)
    lo = cluster.service_report("lo", 2.0, 6.0)
    assert hi.spare_rate > 0
    assert lo.spare_rate > 0
    measured = hi.spare_rate / lo.spare_rate
    expected = res_hi / res_lo
    assert measured == pytest.approx(expected, rel=0.35)
