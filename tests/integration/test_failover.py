"""End-to-end node failure, degraded-mode QoS, and recovery.

The acceptance scenario: four RPNs, three subscribers, one RPN crashes
mid-run.  The RDN must detect the death from the silent accounting
stream within K+1 accounting cycles, stop dispatching to the dead node,
redistribute its capacity through the spare pool, and restore the
original allocation once the node restarts and reports again.
"""

import pytest

from repro.core import GageCluster, GageConfig, Subscriber
from repro.core.metrics import (
    DELEGATE_TIMEOUT,
    NODE_DOWN,
    NODE_UP,
    REQUESTS_REQUEUED,
    SECONDARY_DOWN,
    SECONDARY_UP,
)
from repro.faults import CRASH, RESTART, FaultAction, FaultSchedule
from repro.sim import Environment
from repro.workload import SyntheticWorkload

CRASH_AT = 4.0
RESTART_AT = 8.0
#: K missed accounting cycles declare death; detection must land within
#: K+1 cycles of the crash.
K = 3
CYCLE = 0.100


def build_failover_cluster(env):
    # Capacity 4 x 100 = 400 GRPS; reservations 120 + 90 + 60 = 270.
    # 2000-byte pages cost exactly one generic request, so GRPS == req/s.
    subs = [
        Subscriber("a", reservation_grps=120, queue_capacity=256),
        Subscriber("b", reservation_grps=90, queue_capacity=256),
        Subscriber("c", reservation_grps=60, queue_capacity=256),
    ]
    rates = {"a": 115.0, "b": 85.0, "c": 200.0}
    workload = SyntheticWorkload(rates=rates, duration_s=12.0, file_bytes=2000)
    cluster = GageCluster(
        env,
        subs,
        {name: workload.site_files(name) for name in rates},
        num_rpns=4,
        fidelity="flow",
        config=GageConfig(heartbeat_miss_limit=K, accounting_cycle_s=CYCLE),
    )
    cluster.load_trace(workload.generate())
    cluster.install_faults(FaultSchedule.crash_restart("rpn3", CRASH_AT, RESTART_AT - CRASH_AT))
    return cluster


def run_failover(seed=0):
    env = Environment()
    cluster = build_failover_cluster(env)
    probes = {}

    def snapshot(label):
        status = cluster.rdn.node_scheduler.node("rpn3")
        probes[label] = (status.up, status.dispatched)

    # Just after the detection deadline, and just before the restart.
    env.call_later(CRASH_AT + (K + 1) * CYCLE + 0.2, snapshot, "after_detect")
    env.call_later(RESTART_AT - 0.1, snapshot, "before_restart")
    cluster.run(12.0)
    return cluster, probes


@pytest.fixture(scope="module")
def failover():
    return run_failover()


def test_death_detected_within_k_plus_one_cycles(failover):
    cluster, _probes = failover
    latency = cluster.rdn.failures.detection_latency_s(CRASH_AT, "rpn3")
    assert latency is not None
    assert latency <= (K + 1) * CYCLE + CYCLE  # +1 scheduling-cycle slack


def test_no_dispatch_to_dead_node(failover):
    cluster, probes = failover
    up_after_detect, dispatched_after_detect = probes["after_detect"]
    up_before_restart, dispatched_before_restart = probes["before_restart"]
    assert not up_after_detect
    assert not up_before_restart
    # Not a single dispatch between detection and restart.
    assert dispatched_after_detect == dispatched_before_restart


def test_in_flight_requests_requeued_not_lost(failover):
    cluster, _probes = failover
    event = cluster.rdn.failures.first(REQUESTS_REQUEUED, "rpn3")
    assert event is not None and event.detail >= 1
    requeued = sum(q.requeued for q in cluster.rdn.queues)
    assert requeued == int(event.detail)


def test_degraded_shares_within_15_percent(failover):
    """Survivor capacity 300: a=115, b=85 ride their reservations; c gets
    its 60 plus the shrunken spare pool (300 - 270 = 30) => ~90."""
    cluster, _probes = failover
    reports = {r.subscriber: r for r in cluster.all_reports(5.5, 7.5)}
    assert reports["a"].served_rate == pytest.approx(115.0, rel=0.15)
    assert reports["b"].served_rate == pytest.approx(85.0, rel=0.15)
    assert reports["c"].served_rate == pytest.approx(90.0, rel=0.15)


def test_recovered_shares_within_15_percent(failover):
    """Back to 400 GRPS: spare returns to 130 and c drains its backlog at
    60 + 130 = ~190 while a and b stay at their offered rates."""
    cluster, _probes = failover
    assert cluster.rdn.failures.first(NODE_UP, "rpn3") is not None
    reports = {r.subscriber: r for r in cluster.all_reports(9.5, 11.5)}
    assert reports["a"].served_rate == pytest.approx(115.0, rel=0.15)
    assert reports["b"].served_rate == pytest.approx(85.0, rel=0.15)
    assert reports["c"].served_rate == pytest.approx(190.0, rel=0.15)


def test_recovery_restores_dispatching(failover):
    cluster, probes = failover
    status = cluster.rdn.node_scheduler.node("rpn3")
    assert status.up
    # The restored node took new work after re-admission.
    assert status.dispatched > probes["before_restart"][1]


def test_failover_run_is_deterministic():
    first, _ = run_failover()
    second, _ = run_failover()
    events_a = [(e.at_s, e.kind, e.target) for e in first.rdn.failures.events]
    events_b = [(e.at_s, e.kind, e.target) for e in second.rdn.failures.events]
    assert events_a == events_b
    assert first.completions == second.completions
    assert first.lost_in_flight == second.lost_in_flight


def test_detection_records_node_down_event(failover):
    cluster, _probes = failover
    down = cluster.rdn.failures.first(NODE_DOWN, "rpn3")
    assert down is not None
    assert down.at_s >= CRASH_AT
    # The silence that triggered detection spans at least K cycles.
    assert down.detail >= K * CYCLE


def test_dead_secondary_times_out_and_primary_takes_over():
    """A crashed secondary RDN answers no DelegateHandshake orders: each
    delegation times out, the primary emulates the handshake itself,
    and after ``secondary_failure_limit`` consecutive timeouts the
    secondary leaves the rotation — until revived."""
    env = Environment()
    subs = [Subscriber("a", 100, queue_capacity=256)]
    workload = SyntheticWorkload(rates={"a": 30.0}, duration_s=4.0, file_bytes=2000)
    cluster = GageCluster(
        env,
        subs,
        {"a": workload.site_files("a")},
        num_rpns=2,
        fidelity="packet",
        num_secondaries=1,
        config=GageConfig(secondary_failure_limit=2),
    )
    cluster.load_trace(workload.generate())
    cluster.install_faults(
        FaultSchedule(
            [
                FaultAction(0.0, CRASH, "secondary0"),
                FaultAction(3.0, RESTART, "secondary0"),
            ]
        )
    )
    cluster.run(6.0)
    log = cluster.rdn.failures
    # At least the two strikes needed to eject; SYNs already delegated
    # before the ejection each still time out individually.
    assert log.count(DELEGATE_TIMEOUT) >= 2
    assert log.count(SECONDARY_DOWN) == 1
    assert log.count(SECONDARY_UP) == 1
    # No client was stranded: timed-out handshakes were emulated locally.
    assert cluster.fleet.stats.completed == cluster.fleet.stats.issued
    # After revival the secondary really does handshakes again.
    assert cluster.secondaries[0].handshakes_completed > 0


def test_partitioned_rpn_detected_and_recovers_on_heal():
    """Cutting an RPN's link silences its accounting stream: the
    detector declares it dead; healing the link re-admits it."""
    env = Environment()
    subs = [Subscriber("a", 100, queue_capacity=256)]
    workload = SyntheticWorkload(rates={"a": 20.0}, duration_s=6.0, file_bytes=2000)
    cluster = GageCluster(
        env,
        subs,
        {"a": workload.site_files("a")},
        num_rpns=2,
        fidelity="packet",
        config=GageConfig(heartbeat_miss_limit=K, accounting_cycle_s=CYCLE),
    )
    cluster.load_trace(workload.generate())
    cluster.install_faults(FaultSchedule.partition_heal("rpn0", 1.5, 2.0))
    cluster.run(7.0)
    log = cluster.rdn.failures
    down = log.first(NODE_DOWN, "rpn0")
    up = log.first(NODE_UP, "rpn0")
    assert down is not None and down.at_s == pytest.approx(1.5, abs=(K + 2) * CYCLE)
    assert up is not None and up.at_s > 3.5  # only after the heal
    # Service never stopped: completions happened during the partition.
    during = [at for at, _h in cluster.completions if 2.0 <= at < 3.5]
    assert during
    # And the healed node took work again afterwards.
    assert cluster.rdn.node_scheduler.node("rpn0").up


def test_partition_rejected_in_flow_mode():
    env = Environment()
    subs = [Subscriber("a", 100)]
    cluster = GageCluster(env, subs, {"a": {}}, num_rpns=1, fidelity="flow")
    with pytest.raises(ValueError):
        cluster.partition("rpn0")
    with pytest.raises(ValueError):
        cluster.heal("rpn0")
