"""Heterogeneous clusters end to end: capacity accounting, isolation.

Satellite coverage for the topology-first refactor: per-node capacities
feed the spare pool and the credit scheduler, the homogeneous default
is exactly the degenerate topology, undersized explicit switches are
refused, and the per-node telemetry (capacity gauge, spare-share
counter) reports the real shape of the cluster.
"""

import pytest

from repro.core import GageCluster, GageConfig, Subscriber
from repro.core.topology import (
    ClusterTopology,
    LinkSpec,
    NodeSpec,
    SwitchSpec,
    grps_capacity,
)
from repro.sim import Environment
from repro.telemetry.registry import get_registry
from repro.workload import SyntheticWorkload


def two_speed_topology(standard=2, slow=2):
    """Standard nodes sustain 100 GRPS; slow (0.6x CPU) nodes 60."""
    return ClusterTopology(
        nodes=tuple(
            [NodeSpec(kind="standard") for _ in range(standard)]
            + [NodeSpec(kind="slow", cpu_speed=0.6) for _ in range(slow)]
        )
    )


def build_cluster(env, subscribers, rates, topology, duration=8.0, config=None):
    workload = SyntheticWorkload(rates=rates, duration_s=duration, file_bytes=2000)
    site_files = {name: workload.site_files(name) for name in rates}
    cluster = GageCluster(
        env,
        subscribers,
        site_files,
        config=config,
        fidelity="flow",
        topology=topology,
    )
    cluster.load_trace(workload.generate())
    return cluster


def test_default_equals_degenerate_topology():
    """num_rpns=N and ClusterTopology.homogeneous(N) are the same cluster."""
    logs = []
    for topology in (None, ClusterTopology.homogeneous(4)):
        env = Environment()
        subs = [Subscriber("a", reservation_grps=100, queue_capacity=256)]
        workload = SyntheticWorkload(
            rates={"a": 150.0}, duration_s=5.0, file_bytes=2000
        )
        cluster = GageCluster(
            env,
            subs,
            {"a": workload.site_files("a")},
            num_rpns=4,
            fidelity="flow",
            topology=topology,
        )
        cluster.load_trace(workload.generate())
        cluster.run(5.0)
        logs.append(list(cluster.rdn.accounting.usage_log))
    assert logs[0] == logs[1]


def test_node_capacity_gauge_reports_per_node_grps():
    env = Environment()
    topo = two_speed_topology(standard=1, slow=1)
    subs = [Subscriber("a", reservation_grps=50)]
    build_cluster(env, subs, {"a": 10.0}, topo, duration=1.0)
    registry = get_registry()
    assert registry.gauge(
        "repro.cluster.node.capacity", node="rpn0"
    ).value == pytest.approx(100.0)
    assert registry.gauge(
        "repro.cluster.node.capacity", node="rpn1"
    ).value == pytest.approx(60.0)
    assert grps_capacity(topo.nodes[1].capacity_per_s()) == pytest.approx(60.0)


def test_spare_pool_redistributes_by_node_capacity():
    """A backlogged subscriber's spare lands mostly on the big nodes."""
    env = Environment()
    topo = two_speed_topology(standard=1, slow=1)  # 100 + 60 GRPS
    subs = [Subscriber("a", reservation_grps=40, queue_capacity=512)]
    cluster = build_cluster(env, subs, {"a": 250.0}, topo, duration=8.0)
    cluster.run(8.0)
    report = cluster.service_report("a", 2.0, 8.0)
    assert report.spare_rate > 0
    registry = get_registry()
    fast_share = registry.counter("repro.scheduler.spare_share", node="rpn0").value
    slow_share = registry.counter("repro.scheduler.spare_share", node="rpn1").value
    # Both speed classes absorb spare, and the faster node absorbs more
    # — the spare pool follows real per-node capacity, not a uniform
    # cluster-wide constant.
    assert fast_share > 0
    assert slow_share > 0
    assert fast_share > slow_share


def test_isolation_holds_on_two_speed_cluster():
    """Table 2 on a mixed cluster: spare still splits by reservation."""
    env = Environment()
    topo = two_speed_topology(standard=2, slow=2)  # 320 GRPS total
    subs = [
        Subscriber("hi", reservation_grps=120, queue_capacity=512),
        Subscriber("lo", reservation_grps=80, queue_capacity=512),
    ]
    cluster = build_cluster(
        env, subs, {"hi": 400.0, "lo": 300.0}, topo, duration=10.0
    )
    cluster.run(10.0)
    hi = cluster.service_report("hi", 2.0, 10.0)
    lo = cluster.service_report("lo", 2.0, 10.0)
    # Reservations are honored on the mixed cluster...
    assert hi.served_rate > 120.0
    assert lo.served_rate > 80.0
    # ...and the spare pool splits proportionally to reservations
    # (Table 2's policy), slow nodes notwithstanding.
    assert hi.spare_rate > 0
    assert lo.spare_rate > 0
    assert hi.spare_rate / lo.spare_rate == pytest.approx(120 / 80, rel=0.25)


def test_misbehaver_cannot_hurt_conforming_on_mixed_cluster():
    """Isolation is comparative: the misbehaver must change nothing.

    On a mixed cluster a GRPS buys fewer completions when requests land
    on slow metal (accounting charges wall CPU seconds), so the
    conforming subscriber's absolute rate is topology-dependent — the
    guarantee is that a neighbor offering 5x its reservation leaves
    that rate untouched.
    """
    served = {}
    for label, greedy_rate in (("conforming", 60.0), ("hostile", 500.0)):
        env = Environment()
        topo = two_speed_topology(standard=2, slow=2)
        subs = [
            Subscriber("good", reservation_grps=150, queue_capacity=512),
            Subscriber("greedy", reservation_grps=100, queue_capacity=512),
        ]
        config = GageConfig(spare_policy="none")
        cluster = build_cluster(
            env, subs, {"good": 145.0, "greedy": greedy_rate}, topo,
            duration=10.0, config=config,
        )
        cluster.run(10.0)
        served[label] = cluster.service_report("good", 2.0, 10.0).served_rate
        if label == "hostile":
            assert cluster.service_report("greedy", 2.0, 10.0).dropped > 0
    assert served["hostile"] == pytest.approx(served["conforming"], rel=0.03)


def test_undersized_explicit_switch_raises():
    env = Environment()
    topo = ClusterTopology(
        nodes=tuple(NodeSpec() for _ in range(6)),
        switches=(SwitchSpec(ports=4),),
    )
    subs = [Subscriber("a", reservation_grps=10)]
    with pytest.raises(ValueError, match="ports"):
        GageCluster(
            env, subs, {"a": {"index.html": 2000}},
            fidelity="packet", topology=topo,
        )


def test_packet_mode_builds_tiered_fabric():
    env = Environment()
    topo = ClusterTopology(
        nodes=(
            NodeSpec(),
            NodeSpec(switch=1, link=LinkSpec(bandwidth_bps=25e6, latency_s=1e-4)),
        ),
        switches=(
            SwitchSpec(),
            SwitchSpec(uplink=LinkSpec(bandwidth_bps=1e9, latency_s=5e-6)),
        ),
    )
    subs = [Subscriber("a", reservation_grps=20, queue_capacity=256)]
    workload = SyntheticWorkload(rates={"a": 30.0}, duration_s=3.0, file_bytes=2000)
    cluster = GageCluster(
        env,
        subs,
        {"a": workload.site_files("a")},
        fidelity="packet",
        topology=topo,
    )
    assert len(cluster.switches) == 2
    assert cluster.switch is cluster.switches[0]
    cluster.load_trace(workload.generate())
    cluster.run(3.0)
    report = cluster.service_report("a", 1.0, 3.0)
    assert report.served_rate > 20.0
