"""End-to-end subscriber churn through the full simulated data plane.

`GageCluster.add_subscriber` must make a mid-run join *servable* —
hosting the site on every RPN before registering — and `remove_subscriber`
must stop the control plane cleanly.  These pin the failure mode churn
originally exposed: a registered-but-unhosted subscriber's requests were
answered as unattributable 404s whose dispatch-time predictions were
never backed out, so the node's outstanding-load estimate grew without
bound and starved every other subscriber placed there.
"""

import dataclasses

import pytest

from repro.core import GageCluster, GageConfig, Subscriber
from repro.sim import Environment
from repro.workload import SyntheticWorkload


def _shifted(records, offset_s):
    return [dataclasses.replace(r, at_s=r.at_s + offset_s) for r in records]


def build_cluster(env, subscribers, rates, duration=6.0, num_rpns=4, config=None,
                  extra_sites=()):
    workload = SyntheticWorkload(rates=rates, duration_s=duration, file_bytes=2000)
    hosts = list(rates) + list(extra_sites)
    site_files = {name: workload.site_files(name) for name in hosts}
    cluster = GageCluster(
        env, subscribers, site_files, num_rpns=num_rpns, config=config,
        fidelity="flow",
    )
    cluster.load_trace(workload.generate())
    return cluster, site_files


def test_mid_run_join_is_served_end_to_end():
    env = Environment()
    subs = [Subscriber("early", reservation_grps=80, queue_capacity=256)]
    cluster, site_files = build_cluster(
        env, subs, {"early": 60.0}, duration=6.0, extra_sites=("late",)
    )
    cluster.run(2.0)

    late = Subscriber("late", reservation_grps=60, queue_capacity=256)
    cluster.add_subscriber(late, files=site_files["late"])
    late_load = SyntheticWorkload(rates={"late": 50.0}, duration_s=4.0, file_bytes=2000)
    cluster.load_trace(_shifted(late_load.generate(), 2.0))
    cluster.run(6.0)

    report = cluster.service_report("late", 3.0, 6.0)
    assert report.served_rate == pytest.approx(50.0, rel=0.1)
    assert report.dropped == 0


def test_mid_run_join_does_not_starve_colocated_subscriber():
    """The regression: with placement restricting dispatch to one node, a
    joiner sharing that node must not poison its outstanding-load window."""
    env = Environment()
    config = GageConfig(placement_policy="utilization", placement_k_backup=1)
    subs = [
        Subscriber("gold", reservation_grps=80, queue_capacity=256),
        Subscriber("silver", reservation_grps=60, queue_capacity=256),
    ]
    cluster, site_files = build_cluster(
        env, subs, {"gold": 75.0, "silver": 55.0}, duration=8.0,
        config=config, extra_sites=("late",)
    )
    cluster.run(2.0)

    late = Subscriber("late", reservation_grps=40, queue_capacity=256)
    cluster.add_subscriber(late, files=site_files["late"])
    placement = cluster.rdn.placement
    assert placement is not None
    assert len(placement.allowed_nodes("late")) == 1
    late_load = SyntheticWorkload(rates={"late": 35.0}, duration_s=6.0, file_bytes=2000)
    cluster.load_trace(_shifted(late_load.generate(), 2.0))
    cluster.run(8.0)

    # Utilization packing co-locates late with an existing subscriber;
    # everyone within reservation must still be fully served.
    for name, rate in (("gold", 75.0), ("silver", 55.0), ("late", 35.0)):
        report = cluster.service_report(name, 4.0, 8.0)
        assert report.served_rate == pytest.approx(rate, rel=0.1), name


def test_duplicate_join_rejected():
    env = Environment()
    subs = [Subscriber("a", reservation_grps=50)]
    cluster, _ = build_cluster(env, subs, {"a": 10.0}, duration=1.0)
    with pytest.raises(ValueError):
        cluster.add_subscriber(Subscriber("a", reservation_grps=50))


def test_mid_run_leave_stops_scheduling():
    env = Environment()
    subs = [
        Subscriber("stays", reservation_grps=80, queue_capacity=256),
        Subscriber("leaves", reservation_grps=80, queue_capacity=256),
    ]
    cluster, _ = build_cluster(
        env, subs, {"stays": 60.0, "leaves": 60.0}, duration=6.0
    )
    cluster.run(2.0)
    cluster.remove_subscriber("leaves")
    cluster.run(6.0)

    stays = cluster.service_report("stays", 3.0, 6.0)
    assert stays.served_rate == pytest.approx(60.0, rel=0.1)
    # Post-leave arrivals for the departed name are refused at the RDN.
    refused = sum(
        1 for at, host, ok in cluster.arrivals
        if host == "leaves" and at >= 3.0 and not ok
    )
    assert refused > 0
    served_after = sum(
        1 for at, host in cluster.completions if host == "leaves" and at >= 4.0
    )
    assert served_after == 0


def test_missing_file_404_backs_out_prediction():
    """An error page is an answered request: the node's outstanding-load
    window must drain back to zero, not leak one prediction per 404."""
    env = Environment()
    subs = [Subscriber("a", reservation_grps=80, queue_capacity=256)]
    workload = SyntheticWorkload(rates={"a": 40.0}, duration_s=4.0, file_bytes=2000)
    site_files = {"a": workload.site_files("a")}
    cluster = GageCluster(env, subs, site_files, num_rpns=2, fidelity="flow")
    # Every request names a file outside the hosted tree -> pure-404 load.
    records = [dataclasses.replace(r, path="/no-such-file.html")
               for r in workload.generate()]
    cluster.load_trace(records)
    cluster.run(6.0)

    total_errors = sum(site.errors for server in cluster.webservers
                      for site in server.sites.values())
    total_completed = sum(site.completed for server in cluster.webservers
                         for site in server.sites.values())
    assert total_errors > 100
    assert total_completed == total_errors
    # With every 404 reported complete, the predictions all came back.
    for status in cluster.rdn.node_scheduler.nodes():
        assert status.outstanding.dominant_fraction_of(status.capacity_per_s) \
            == pytest.approx(0.0, abs=0.05)
