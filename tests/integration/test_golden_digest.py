"""The golden-digest determinism gate.

``golden_fig3.sha256`` was computed from the pre-refactor engine
(dataclass packets, Event-per-``call_later``, per-slice CPU processes).
Every later engine change must reproduce it byte-for-byte: same
accounting stream, same completions, same latencies, down to the last
float ulp.  If an intentional *semantic* change to the scenario ever
lands (new workload model, different topology), recompute the digest
with ``python -m repro.harness.golden`` style driver below and say so
loudly in the commit message — never update this file to paper over an
unexplained mismatch.
"""

from pathlib import Path

from repro.harness.golden import (
    SCENARIO,
    accounting_digest,
    accounting_lines,
    golden_fig3_cluster,
)

GOLDEN_FILE = Path(__file__).with_name("golden_fig3.sha256")


def test_fixed_seed_run_matches_committed_digest():
    committed = GOLDEN_FILE.read_text().strip()
    cluster = golden_fig3_cluster()
    assert accounting_digest(cluster) == committed, (
        "fixed-seed accounting output diverged from the committed golden "
        "digest ({}) — the engine is no longer bit-exact".format(SCENARIO)
    )


def test_golden_run_produces_substantial_output():
    # Guard against the scenario silently degenerating (e.g. the workload
    # no longer reaching the back ends) while the digest still "matches"
    # a trivially empty log.
    cluster = golden_fig3_cluster()
    lines = accounting_lines(cluster)
    assert len(lines) > 500
    kinds = {line.split(" ", 1)[0] for line in lines}
    assert kinds == {"arr", "done", "lat", "usage"}


def test_digest_is_order_canonical():
    # The digest must not depend on log append order for same-instant
    # entries: serialization sorts, so two identical runs always agree.
    a = golden_fig3_cluster()
    b = golden_fig3_cluster()
    assert accounting_lines(a) == accounting_lines(b)
    assert accounting_digest(a) == accounting_digest(b)
