"""Chaos integration: hedging rescues the tail when one RPN degrades.

A four-node flow-mode cluster takes a steady workload while a
:class:`FaultInjector` slows one RPN to 5% speed.  Without hedging the
requests stranded on the slow node dominate p99; with the fixed-delay
policy the straggling copies are cloned onto healthy nodes, the first
completion wins, and the loser is cancelled with its credits refunded.
The test pins three properties at once: the tail actually recovers, the
credit-conservation ledger still balances exactly, and no request is
ever counted twice (cancelled losers are suppressed from the samples).
"""

import pytest

from repro.core import GageCluster, GageConfig, Subscriber
from repro.faults import SLOW, FaultAction, FaultSchedule
from repro.harness.benchstore import percentile
from repro.sim import Environment
from repro.workload import SyntheticWorkload

DURATION_S = 8.0
SLOW_AT_S = 1.0
SLOW_FACTOR = 0.05  # 20x slower CPU on the degraded node


def run_cluster(hedge_policy):
    env = Environment()
    subscribers = [Subscriber("a", 120.0, queue_capacity=4096)]
    workload = SyntheticWorkload(rates={"a": 80.0}, duration_s=DURATION_S, file_bytes=2048)
    config = GageConfig(hedge_policy=hedge_policy, hedge_delay_s=0.050)
    cluster = GageCluster(
        env,
        subscribers,
        {"a": workload.site_files("a")},
        num_rpns=4,
        config=config,
    )
    cluster.prewarm_caches()
    injector = cluster.install_faults(
        FaultSchedule(
            [FaultAction(at_s=SLOW_AT_S, kind=SLOW, target="rpn0", factor=SLOW_FACTOR)]
        )
    )
    cluster.load_trace(workload.generate())
    cluster.run(DURATION_S)
    assert injector.applied  # the fault really fired
    return cluster


@pytest.fixture(scope="module")
def runs():
    return {"off": run_cluster("off"), "fixed": run_cluster("fixed")}


def p99(cluster):
    return percentile([latency for _, _, latency in cluster.latencies], 0.99)


def test_hedging_recovers_the_tail(runs):
    baseline, hedged = p99(runs["off"]), p99(runs["fixed"])
    assert hedged < baseline
    assert baseline / hedged >= 2.0, (
        "p99 {:.3f}s unhedged vs {:.3f}s hedged: less than 2x recovery".format(
            baseline, hedged
        )
    )


def test_hedging_actually_fired_clones(runs):
    assert runs["off"].rdn.hedges is None
    hedges = runs["fixed"].rdn.hedges
    assert hedges is not None
    # Every completed request passed through the manager's resolution.
    assert hedges.latency.count == len(runs["fixed"].completions)
    assert hedges._tm_fired.value > 0
    assert hedges._tm_cancelled.value > 0
    assert hedges._tm_refunded_grps.value > 0


def test_credit_conservation_holds_with_cancellations(runs):
    for cluster in runs.values():
        delta = cluster.rdn.accounting.conservation_delta()
        assert delta.cpu_s == pytest.approx(0.0, abs=1e-9)
        assert delta.disk_s == pytest.approx(0.0, abs=1e-9)
        assert delta.net_bytes == pytest.approx(0.0, abs=1e-3)


def test_no_request_is_counted_twice(runs):
    for cluster in runs.values():
        admitted = sum(1 for _, _, ok in cluster.arrivals if ok)
        assert len(cluster.completions) == len(cluster.latencies)
        assert len(cluster.completions) <= admitted


def test_guarantee_delivery_is_not_regressed(runs):
    """Hedging must not trade throughput for tail latency: the hedged
    run serves at least as many requests as the unhedged one."""
    report_off = runs["off"].service_report("a", SLOW_AT_S, DURATION_S)
    report_hedged = runs["fixed"].service_report("a", SLOW_AT_S, DURATION_S)
    assert report_hedged.served >= report_off.served
    assert report_hedged.dropped <= report_off.dropped
