"""Tests that per-connection state is reclaimed after teardown."""

from repro.core import GageCluster, GageConfig, Subscriber
from repro.sim import Environment
from repro.workload import SyntheticWorkload


def build(env, linger=0.5, rate=20.0, duration=2.0):
    subs = [Subscriber("a", 100)]
    workload = SyntheticWorkload(rates={"a": rate}, duration_s=duration, file_bytes=2000)
    cluster = GageCluster(
        env,
        subs,
        {"a": workload.site_files("a")},
        num_rpns=2,
        fidelity="packet",
        config=GageConfig(conntable_linger_s=linger),
    )
    cluster.load_trace(workload.generate())
    return cluster


def test_conntable_entries_reclaimed_after_linger():
    env = Environment()
    cluster = build(env, linger=0.5)
    cluster.run(2.2)
    mid_size = len(cluster.rdn.conntable)
    assert mid_size > 0  # recent connections still lingering
    cluster.run(6.0)  # all connections closed and lingered out
    assert len(cluster.rdn.conntable) == 0
    assert cluster.fleet.stats.completed == cluster.fleet.stats.issued


def test_splice_rules_reclaimed_after_linger():
    env = Environment()
    cluster = build(env, linger=0.5)
    cluster.run(6.0)
    for lsm in cluster.lsms:
        assert lsm._rules_in == {}
        assert lsm._rules_out == {}
    # Connections also drained from the RPN stacks.
    for lsm in cluster.lsms:
        assert len(lsm.stack.connections) == 0


def test_state_survives_while_connections_active():
    env = Environment()
    cluster = build(env, linger=5.0, rate=30.0, duration=3.0)
    cluster.run(1.5)
    # Mid-run: active + lingering state present and service unbroken.
    assert len(cluster.rdn.conntable) > 0
    assert any(lsm._rules_in for lsm in cluster.lsms)
    cluster.run(10.0)
    assert cluster.fleet.stats.completed == cluster.fleet.stats.issued
