"""End-to-end tests of the flow-fidelity Gage cluster."""

import pytest

from repro.core import GageCluster, GageConfig, Subscriber
from repro.sim import Environment
from repro.workload import SyntheticWorkload


def build_cluster(env, subscribers, rates, duration=5.0, num_rpns=4, config=None, **kw):
    # 2000-byte pages cost exactly one generic request each (§3.1), so
    # GRPS reservations translate 1:1 to request rates.
    workload = SyntheticWorkload(rates=rates, duration_s=duration, file_bytes=2000)
    site_files = {name: workload.site_files(name) for name in rates}
    cluster = GageCluster(
        env,
        subscribers,
        site_files,
        num_rpns=num_rpns,
        config=config,
        fidelity="flow",
        **kw,
    )
    cluster.load_trace(workload.generate())
    return cluster


def test_underloaded_subscriber_fully_served():
    env = Environment()
    subs = [Subscriber("a", reservation_grps=100)]
    cluster = build_cluster(env, subs, {"a": 50.0}, duration=5.0)
    cluster.run(5.0)
    report = cluster.service_report("a", 1.0, 5.0)
    assert report.served_rate == pytest.approx(50.0, rel=0.05)
    assert report.dropped == 0


def test_isolation_overloaded_neighbor_cannot_steal():
    """A wildly overloaded site must not degrade a reserved site (§4.1)."""
    env = Environment()
    subs = [
        Subscriber("good", reservation_grps=200, queue_capacity=256),
        Subscriber("greedy", reservation_grps=100, queue_capacity=256),
    ]
    # Cluster capacity: 4 RPNs x 100 GRPS = 400; greedy offers 600.
    cluster = build_cluster(
        env, subs, {"good": 190.0, "greedy": 600.0}, duration=8.0, num_rpns=4
    )
    cluster.run(8.0)
    good = cluster.service_report("good", 2.0, 8.0)
    greedy = cluster.service_report("greedy", 2.0, 8.0)
    assert good.served_rate == pytest.approx(190.0, rel=0.08)
    assert greedy.dropped > 0
    # Spare (capacity - reservations = 100) flows to the greedy site.
    assert greedy.served_rate > 100.0


def test_completions_tracked_with_usage():
    env = Environment()
    subs = [Subscriber("a", reservation_grps=100)]
    cluster = build_cluster(env, subs, {"a": 20.0}, duration=3.0)
    cluster.run(3.0)
    events = cluster.completion_events_by_subscriber()
    assert "a" in events
    assert len(events["a"]) > 40
    for _at, weight in events["a"]:
        assert weight > 0


def test_accounting_messages_flow_back():
    env = Environment()
    subs = [Subscriber("a", reservation_grps=100)]
    config = GageConfig(accounting_cycle_s=0.05)
    cluster = build_cluster(env, subs, {"a": 50.0}, duration=2.0, config=config)
    cluster.run(2.0)
    assert all(agent.messages_sent >= 30 for agent in cluster.agents)
    account = cluster.rdn.accounting.account("a")
    assert account.reported_complete > 50
    # Estimators learned that real requests are cheaper than generic.
    predicted = cluster.rdn.scheduler.estimator("a").predict()
    assert predicted.cpu_s < 0.011


def test_spare_split_proportional_to_reservations():
    """Table 2's policy at integration level."""
    env = Environment()
    subs = [
        Subscriber("hi", reservation_grps=250, queue_capacity=512),
        Subscriber("lo", reservation_grps=200, queue_capacity=512),
    ]
    cluster = build_cluster(
        env, subs, {"hi": 700.0, "lo": 600.0}, duration=10.0, num_rpns=8
    )
    cluster.run(10.0)
    hi = cluster.service_report("hi", 2.0, 10.0)
    lo = cluster.service_report("lo", 2.0, 10.0)
    assert hi.spare_rate > 0
    assert lo.spare_rate > 0
    assert hi.spare_rate / lo.spare_rate == pytest.approx(250 / 200, rel=0.25)


def test_flow_mode_rejects_secondaries():
    env = Environment()
    with pytest.raises(ValueError):
        GageCluster(
            env,
            [Subscriber("a", 10)],
            {"a": {}},
            fidelity="flow",
            num_secondaries=1,
        )


def test_unknown_fidelity_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        GageCluster(env, [Subscriber("a", 10)], {"a": {}}, fidelity="warp")
