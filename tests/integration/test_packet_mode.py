"""End-to-end tests of the packet-fidelity Gage cluster.

These exercise the full Figure-2 machinery: handshake emulation at the
RDN, dispatch orders, second-leg local handshakes at the RPN, splice
remapping in both directions, and L2 bridging via the connection table.
"""

import pytest

from repro.core import GageCluster, Subscriber
from repro.sim import Environment
from repro.workload import SyntheticWorkload


def build(env, rates, reservations, duration=3.0, num_rpns=2, **kw):
    subs = [Subscriber(name, grps) for name, grps in reservations.items()]
    workload = SyntheticWorkload(rates=rates, duration_s=duration, file_bytes=2000)
    site_files = {name: workload.site_files(name) for name in rates}
    cluster = GageCluster(
        env, subs, site_files, num_rpns=num_rpns, fidelity="packet", **kw
    )
    cluster.load_trace(workload.generate())
    return cluster


def test_single_request_end_to_end():
    env = Environment()
    cluster = build(env, {"a": 5.0}, {"a": 100}, duration=1.0, num_rpns=1)
    cluster.run(2.5)
    stats = cluster.fleet.stats
    assert stats.issued == 4  # 5/s for 1s, first at t=0.2
    assert stats.completed == 4
    assert stats.failed == 0
    assert stats.bytes_received == 4 * 2000
    # Splices were actually established and used.
    assert sum(lsm.splices_established for lsm in cluster.lsms) == 4
    rules_used = [
        rule
        for lsm in cluster.lsms
        for rule in lsm._rules_in.values()
    ]
    assert all(r.outgoing_remapped > 0 and r.incoming_remapped > 0 for r in rules_used)


def test_client_sees_cluster_ip_only():
    """The splice illusion: responses appear to come from the cluster IP."""
    env = Environment()
    cluster = build(env, {"a": 5.0}, {"a": 100}, duration=1.0, num_rpns=2)
    cluster.run(2.5)
    # Client stacks only ever created connections to the cluster IP, and
    # those connections completed, which is only possible if RPN packets
    # were remapped to impersonate it.
    assert cluster.fleet.stats.completed > 0
    for stack in cluster.fleet.stacks:
        for quad in list(stack.connections):
            assert quad.dst_ip == cluster.cluster_ip


def test_rdn_bridges_but_never_touches_responses():
    """Responses bypass the RDN (the scalability property of §3.2)."""
    env = Environment()
    cluster = build(env, {"a": 20.0}, {"a": 100}, duration=2.0, num_rpns=2)
    cluster.run(4.0)
    stats = cluster.fleet.stats
    assert stats.completed > 30
    # The RDN forwarded client ACKs/FINs but no response-sized payloads:
    # its NIC transmitted only control frames, handshake frames, and
    # bridged client->RPN packets, all small.
    rdn_bytes = cluster.rdn.nic.iface.tx_bytes
    response_bytes = stats.bytes_received
    assert rdn_bytes < response_bytes  # responses did not flow through RDN


def test_throughput_matches_offered_load_when_underloaded():
    env = Environment()
    cluster = build(env, {"a": 50.0}, {"a": 100}, duration=4.0, num_rpns=2)
    cluster.run(6.0)
    report = cluster.service_report("a", 1.0, 4.0)
    assert report.served_rate == pytest.approx(50.0, rel=0.1)


def test_two_subscribers_isolated_in_packet_mode():
    env = Environment()
    cluster = build(
        env,
        {"good": 80.0, "greedy": 260.0},
        {"good": 80, "greedy": 20},
        duration=6.0,
        num_rpns=2,
        workers_per_site=4,
    )
    cluster.run(8.0)
    good = cluster.service_report("good", 2.0, 6.0)
    assert good.served_rate == pytest.approx(80.0, rel=0.1)
    greedy = cluster.service_report("greedy", 2.0, 6.0)
    # 2 RPNs = 200 GRPS capacity; greedy gets its 20 + ~100 spare.
    assert greedy.served_rate < 260.0 * 0.8


def test_feedback_messages_arrive_via_wire():
    env = Environment()
    cluster = build(env, {"a": 10.0}, {"a": 50}, duration=2.0, num_rpns=2)
    cluster.run(3.0)
    assert cluster.rdn.ops.feedback_messages > 10
    assert cluster.rdn.accounting.account("a").reported_complete > 0


def test_conntable_populated_on_dispatch():
    env = Environment()
    cluster = build(env, {"a": 10.0}, {"a": 50}, duration=1.0, num_rpns=2)
    cluster.run(2.0)
    assert len(cluster.rdn.conntable) == cluster.rdn.ops.dispatches
    assert cluster.rdn.conntable.hits > 0  # bridged ACK/FIN packets


def test_secondary_rdn_offloads_handshakes():
    env = Environment()
    cluster = build(
        env, {"a": 20.0}, {"a": 100}, duration=2.0, num_rpns=2, num_secondaries=2
    )
    cluster.run(4.0)
    stats = cluster.fleet.stats
    assert stats.completed > 30
    done = sum(s.handshakes_completed for s in cluster.secondaries)
    assert done == stats.issued
    # Both secondaries shared the work.
    assert all(s.handshakes_completed > 0 for s in cluster.secondaries)
