"""Robustness integration tests: loss, CGI, and mixed workloads."""

import random

import pytest

from repro.core import GageCluster, Subscriber
from repro.sim import Environment
from repro.workload import SyntheticWorkload
from repro.workload.request import RequestRecord


def test_qos_survives_client_uplink_loss():
    """5% frame loss on a client uplink: retransmission recovers every
    request and the service rate still meets the offered load."""
    env = Environment()
    subs = [Subscriber("a", 100)]
    workload = SyntheticWorkload(rates={"a": 30.0}, duration_s=3.0, file_bytes=2000)
    cluster = GageCluster(
        env, subs, {"a": workload.site_files("a")}, num_rpns=2, fidelity="packet"
    )
    lossy = cluster.fleet.stacks[0].nic.iface
    lossy.loss_rate = 0.05
    lossy._loss_rng = random.Random(11)
    cluster.load_trace(workload.generate())
    cluster.run(8.0)  # headroom for retransmission delays
    stats = cluster.fleet.stats
    assert stats.completed == stats.issued
    assert stats.failed == 0
    assert lossy.dropped_loss > 0  # losses actually happened


def test_cgi_and_static_mixed_workload_isolation():
    """A site serving dynamic CGI traffic is throttled like any other;
    its CGI processes' CPU counts against its reservation."""
    env = Environment()
    subs = [
        Subscriber("static-site", 60, queue_capacity=128),
        Subscriber("cgi-site", 40, queue_capacity=128),
    ]
    workload = SyntheticWorkload(
        rates={"static-site": 55.0}, duration_s=6.0, file_bytes=2000
    )
    records = list(workload.generate())
    # CGI requests: 25ms of program CPU each => ~2.5 generics of CPU; at
    # 120/s offered, demand is ~300 GRPS against a 40-GRPS reservation.
    period = 1.0 / 120.0
    at = period
    while at < 6.0:
        records.append(
            RequestRecord(
                at_s=at, host="cgi-site", path="/cgi/app",
                size_bytes=1000, cpu_extra_s=0.025,
            )
        )
        at += period
    records.sort(key=lambda r: r.at_s)
    cluster = GageCluster(
        env,
        subs,
        {"static-site": workload.site_files("static-site"), "cgi-site": {}},
        num_rpns=2,
        fidelity="flow",
    )
    cluster.prewarm_caches()
    cluster.load_trace(records)
    cluster.run(6.0)
    static = cluster.service_report("static-site", 2.0, 6.0)
    cgi = cluster.service_report("cgi-site", 2.0, 6.0)
    # The static site is untouched by the CGI flood.
    assert static.served_rate == pytest.approx(55.0, rel=0.1)
    # The CGI site is throttled: its measured (CPU-heavy) usage, not its
    # request count, is what the credit scheduler meters.
    assert cgi.served_rate < 120.0 * 0.8
    assert cgi.dropped > 0
    # And the CGI processes' CPU landed in the accounting.
    account = cluster.rdn.accounting.account("cgi-site")
    per_request_cpu = (
        account.measured_usage_total.cpu_s / account.reported_complete
    )
    assert per_request_cpu > 0.025  # includes the forked program's time


def test_packet_mode_mixed_subscribers_with_loss_and_overload():
    """Loss + overload + two subscribers at packet fidelity: reserved
    traffic is unaffected."""
    env = Environment()
    subs = [
        Subscriber("good", 80, queue_capacity=64),
        Subscriber("flood", 20, queue_capacity=64),
    ]
    workload = SyntheticWorkload(
        rates={"good": 60.0, "flood": 200.0}, duration_s=5.0, file_bytes=2000
    )
    cluster = GageCluster(
        env,
        subs,
        {n: workload.site_files(n) for n in ("good", "flood")},
        num_rpns=2,
        fidelity="packet",
    )
    lossy = cluster.fleet.stacks[1].nic.iface
    lossy.loss_rate = 0.02
    lossy._loss_rng = random.Random(3)
    cluster.load_trace(workload.generate())
    cluster.run(9.0)
    good = cluster.service_report("good", 1.5, 5.0)
    assert good.served_rate == pytest.approx(60.0, rel=0.15)
