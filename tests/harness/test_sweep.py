"""Tests for the cartesian sweep utility."""

import pytest

from repro.harness.sweep import Sweep


def test_sweep_runs_cartesian_product():
    calls = []

    def runner(a, b):
        calls.append((a, b))
        return a * b

    sweep = Sweep(runner, a=[1, 2], b=[10, 20, 30]).run()
    assert len(sweep) == 6
    assert sweep.size == 6
    assert calls == [(1, 10), (1, 20), (1, 30), (2, 10), (2, 20), (2, 30)]


def test_result_lookup():
    sweep = Sweep(lambda a, b: a + b, a=[1, 2], b=[10, 20]).run()
    assert sweep.result(a=2, b=10) == 12
    with pytest.raises(KeyError):
        sweep.result(a=1)  # two matches
    with pytest.raises(KeyError):
        sweep.result(a=9, b=9)  # zero matches


def test_column_extraction():
    sweep = Sweep(lambda a, b: a * b, a=[1, 2, 3], b=[10, 20]).run()
    column = sweep.column("a", b=20)
    assert column == [(1, 20), (2, 40), (3, 60)]
    with pytest.raises(KeyError):
        sweep.column("nope")


def test_map_results():
    sweep = Sweep(lambda a: {"value": a}, a=[1, 2]).run()
    mapped = sweep.map_results(lambda r: r["value"] * 100)
    assert mapped.result(a=2) == 200
    # Original untouched.
    assert sweep.result(a=2) == {"value": 2}


def test_progress_callback():
    seen = []
    Sweep(lambda a: a, a=[1, 2, 3]).run(progress=lambda p: seen.append(p["a"]))
    assert seen == [1, 2, 3]


def test_validation():
    with pytest.raises(ValueError):
        Sweep(lambda: None)
    with pytest.raises(ValueError):
        Sweep(lambda a: a, a=[])


def test_sweep_with_simulation_runner():
    """A miniature version of the Fig-3 grid, via the sweep utility."""
    from repro.harness import run_deviation_experiment

    def runner(cycle_s):
        curve = run_deviation_experiment(
            cycle_s, intervals_s=[1.0], duration_s=8.0,
            num_rpns=2, num_subscribers=2, reservation_grps=80.0,
        )
        return curve.by_interval[1.0]

    sweep = Sweep(runner, cycle_s=[0.1, 2.0]).run()
    assert sweep.result(cycle_s=2.0) > sweep.result(cycle_s=0.1)
