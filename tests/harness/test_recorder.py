"""Tests for the time-series recorder."""

import pytest

from repro.harness.recorder import Recorder
from repro.sim import Environment


def test_recorder_samples_on_period():
    env = Environment()
    recorder = Recorder(env, period_s=0.5)
    counter = {"v": 0.0}
    recorder.add_gauge("v", lambda: counter["v"])

    def bump(env):
        while True:
            yield env.timeout(0.5)
            counter["v"] += 1

    env.process(bump(env))
    env.run(until=2.6)
    samples = recorder.series("v")
    assert len(samples) == 5
    times = [t for t, _v in samples]
    assert times == pytest.approx([0.5, 1.0, 1.5, 2.0, 2.5])


def test_recorder_statistics():
    env = Environment()
    recorder = Recorder(env, period_s=1.0)
    values = iter([10.0, 20.0, 30.0, 40.0])
    recorder.add_gauge("v", lambda: next(values))
    env.run(until=4.5)
    assert recorder.latest("v") == 40.0
    assert recorder.mean("v") == pytest.approx(25.0)
    assert recorder.mean("v", start_s=2.5) == pytest.approx(35.0)
    assert recorder.maximum("v") == 40.0


def test_recorder_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Recorder(env, period_s=0)
    recorder = Recorder(env, period_s=1.0)
    recorder.add_gauge("x", lambda: 1.0)
    with pytest.raises(RuntimeError):
        recorder.add_gauge("x", lambda: 2.0)
    assert recorder.names() == ["x"]
    assert recorder.latest("x") == 0.0  # no samples yet


def test_recorder_watches_cluster_queues():
    """Recorder + GageCluster: queue depth of an overloaded subscriber."""
    from repro.core import GageCluster, Subscriber
    from repro.workload import SyntheticWorkload

    env = Environment()
    subs = [Subscriber("a", 50, queue_capacity=512)]
    workload = SyntheticWorkload(rates={"a": 150.0}, duration_s=4.0, file_bytes=2000)
    cluster = GageCluster(
        env, subs, {"a": workload.site_files("a")}, num_rpns=1
    )
    recorder = Recorder(env, period_s=0.25)
    recorder.add_gauge("qlen", lambda: len(cluster.rdn.queues.get("a")))
    cluster.prewarm_caches()
    cluster.load_trace(workload.generate())
    cluster.run(4.0)
    # The queue grows while input (150/s) exceeds service (~100/s max).
    assert recorder.maximum("qlen") > recorder.series("qlen")[0][1]
    assert recorder.maximum("qlen") > 20
