"""Tests for ASCII chart rendering."""

import pytest

from repro.harness.charts import line_chart


def test_single_series_renders():
    chart = line_chart(
        {"u": [(0, 0.0), (50, 0.5), (100, 1.0)]},
        title="utilization",
        x_label="req/s",
        y_label="util",
    )
    lines = chart.split("\n")
    assert lines[0] == "utilization"
    assert any("o" in line for line in lines)
    assert "x: req/s" in lines[-1]
    assert "o=u" in lines[-1]
    # Axis labels carry the extremes: y-max on the top grid row, y-min on
    # the bottom grid row (above the axis line and x-label rows).
    assert "1" in lines[1]
    assert "0" in lines[-4]


def test_multiple_series_distinct_marks():
    chart = line_chart({
        "a": [(0, 1.0), (1, 2.0)],
        "b": [(0, 2.0), (1, 1.0)],
    })
    assert "o" in chart
    assert "x" in chart
    assert "o=a" in chart
    assert "x=b" in chart


def test_degenerate_ranges_handled():
    # Flat series and single points must not divide by zero.
    chart = line_chart({"flat": [(1, 5.0), (2, 5.0)]})
    assert "o" in chart
    chart2 = line_chart({"point": [(3, 7.0)]})
    assert "o" in chart2


def test_validation():
    with pytest.raises(ValueError):
        line_chart({})
    with pytest.raises(ValueError):
        line_chart({"a": []})
    with pytest.raises(ValueError):
        line_chart({"a": [(0, 1)]}, width=5)


def test_fig3_shape_plot_smoke():
    """Plot a Figure-3-like family; purely a rendering smoke test."""
    family = {
        "50ms": [(i, 1.0 / i) for i in range(1, 11)],
        "2s": [(1, 102.0), (2, 11.0), (4, 4.0), (10, 3.0)],
    }
    chart = line_chart(family, title="Fig 3", x_label="interval (s)", y_label="deviation %")
    assert "Fig 3" in chart
    assert len(chart.split("\n")) > 10
