"""Tests for the experiment harness (short configurations)."""

import pytest

from repro.harness import (
    RDNCostModel,
    format_table,
    run_deviation_experiment,
    run_isolation,
    run_scalability,
)


def test_format_table_alignment():
    table = format_table(
        ["name", "value"], [("a", 1.5), ("longer", 20.25)], title="T"
    )
    lines = table.split("\n")
    assert lines[0] == "T"
    assert "name" in lines[1]
    assert "1.5" in lines[3]
    assert "20.2" in lines[4]
    # All rows have identical width.
    assert len(set(len(line) for line in lines[1:])) == 1


def test_format_table_without_title():
    table = format_table(["x"], [(1,)])
    assert table.split("\n")[0].strip() == "x"


def test_run_isolation_short():
    reports = run_isolation(
        reservations={"a": 100.0, "b": 50.0},
        input_rates={"a": 90.0, "b": 200.0},
        num_rpns=2,
        duration_s=4.0,
        warmup_s=1.0,
    )
    by_name = {r.subscriber: r for r in reports}
    assert by_name["a"].served_rate == pytest.approx(90.0, rel=0.1)
    assert by_name["b"].served_rate > 50.0  # reservation + spare
    assert by_name["b"].served_rate < 200.0


def test_run_deviation_monotone_in_interval():
    curve = run_deviation_experiment(
        2.0, intervals_s=[1.0, 4.0], duration_s=14.0, num_rpns=4,
        num_subscribers=2, reservation_grps=100.0,
    )
    assert curve.by_interval[1.0] > curve.by_interval[4.0]
    assert curve.series()[0][0] == 1.0


def test_run_deviation_rejects_unknown_workload():
    with pytest.raises(ValueError):
        run_deviation_experiment(0.1, workload="bogus")


def test_run_scalability_single_point():
    points = run_scalability(rpn_counts=[1], duration_s=3.0, warmup_s=1.0)
    assert len(points) == 1
    point = points[0]
    assert 400 < point.with_gage_rps < 700
    assert point.without_gage_rps > point.with_gage_rps * 0.95
    assert -5 < point.penalty_percent < 10


def test_rdn_cost_model_shapes():
    model = RDNCostModel()
    assert model.operations_us_per_request() == pytest.approx(70.3)
    # Utilization is monotone in the request rate.
    assert model.utilization(1000) < model.utilization(2000)
    # The intelligent NIC strictly helps.
    assert model.utilization(4000, intelligent_nic=True) < model.utilization(4000)
    with pytest.raises(ValueError):
        model.utilization(-1)


def test_rdn_cost_model_saturation_bisection():
    model = RDNCostModel()
    saturation = model.saturation_rate_rps()
    assert model.utilization(saturation) == pytest.approx(1.0, abs=0.01)
