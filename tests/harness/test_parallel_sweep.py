"""ParallelSweep: pool-of-1 == serial, assignment-independent seeds,
and attributable worker failures."""

import random

import pytest

from repro.harness.parallel import (
    ParallelSweep,
    SweepPointError,
    derive_seed,
)


# -- runners (module-level: the pool pickles them) ------------------------


def seeded_sum(rate, size, seed):
    """A deterministic stand-in for a simulation: params + seeded RNG."""
    rng = random.Random(seed)
    return {
        "rate": rate,
        "size": size,
        "seed": seed,
        "draw": rng.random(),
    }


def mini_simulation(rate, seed):
    """Drive a tiny real simulation so the engine path is exercised too."""
    from repro.sim import Environment

    env = Environment()
    rng = random.Random(seed)
    ticks = []
    env.call_later(0.0, lambda: None)

    def arrival_chain(t):
        ticks.append(round(t, 9))
        if t < 1.0:
            env.call_later(rng.expovariate(rate), arrival_chain, env.now)

    env.call_later(0.0, arrival_chain, 0.0)
    env.run(until=2.0)
    return (len(ticks), sum(ticks))


def boom(rate, seed):
    if rate == 13:
        raise ValueError("unlucky rate")
    return rate


# -- seed derivation -------------------------------------------------------


def test_derived_seed_depends_only_on_point_identity():
    a = derive_seed(7, {"rate": 50, "size": 4})
    # Key order must not matter...
    b = derive_seed(7, {"size": 4, "rate": 50})
    assert a == b
    # ...but the base seed and every param value must.
    assert derive_seed(8, {"rate": 50, "size": 4}) != a
    assert derive_seed(7, {"rate": 51, "size": 4}) != a


def test_grid_is_axis_ordered_with_injected_seeds():
    sweep = ParallelSweep(seeded_sum, base_seed=3, rate=[1, 2], size=[10])
    grid = sweep.grid()
    assert [(p["rate"], p["size"]) for p in grid] == [(1, 10), (2, 10)]
    assert all("seed" in p for p in grid)
    assert grid[0]["seed"] != grid[1]["seed"]


def test_seed_axis_collision_rejected():
    with pytest.raises(ValueError):
        ParallelSweep(seeded_sum, base_seed=1, seed=[1, 2], rate=[1])


# -- pool-of-1 == serial ---------------------------------------------------


def test_pool_of_one_equals_serial_exactly():
    kwargs = dict(base_seed=11, rate=[10.0, 50.0], size=[1, 2, 3])
    serial = ParallelSweep(seeded_sum, processes=0, **kwargs).run()
    pooled = ParallelSweep(seeded_sum, processes=1, **kwargs).run()
    assert [p.params for p in serial.points] == [p.params for p in pooled.points]
    assert [p.result for p in serial.points] == [p.result for p in pooled.points]


def test_pool_of_one_equals_serial_for_real_engine_runs():
    kwargs = dict(base_seed=5, rate=[40.0, 80.0])
    serial = ParallelSweep(mini_simulation, processes=0, **kwargs).run()
    pooled = ParallelSweep(mini_simulation, processes=1, **kwargs).run()
    assert [p.result for p in serial.points] == [p.result for p in pooled.points]


# -- worker-assignment independence ---------------------------------------


def test_results_independent_of_pool_size():
    kwargs = dict(base_seed=23, rate=[1, 2, 3, 4, 5], size=[7])
    one = ParallelSweep(seeded_sum, processes=1, **kwargs).run()
    two = ParallelSweep(seeded_sum, processes=2, **kwargs).run()
    assert [p.result for p in one.points] == [p.result for p in two.points]
    # The seeds each point received are embedded in its result: identical
    # seeds across pool sizes proves derivation ignores worker assignment.
    assert [p.result["seed"] for p in one.points] == [
        p.result["seed"] for p in two.points
    ]


# -- failure attribution ---------------------------------------------------


def test_crashing_worker_surfaces_the_failing_point():
    sweep = ParallelSweep(boom, processes=2, base_seed=1, rate=[12, 13, 14])
    with pytest.raises(SweepPointError) as excinfo:
        sweep.run()
    assert excinfo.value.params["rate"] == 13
    assert "unlucky rate" in str(excinfo.value)
    assert "ValueError" in excinfo.value.cause


# -- queries inherited from Sweep ------------------------------------------


def test_inherited_queries_work_on_merged_results():
    sweep = ParallelSweep(
        seeded_sum, processes=0, base_seed=2, rate=[1, 2], size=[5, 6]
    ).run()
    assert sweep.result(rate=2, size=6)["rate"] == 2
    column = sweep.column("rate", size=5)
    assert [value for value, _ in column] == [1, 2]


def test_telemetry_snapshots_merge_in_grid_order():
    sweep = ParallelSweep(
        mini_simulation,
        processes=1,
        base_seed=9,
        capture_telemetry=True,
        rate=[30.0, 60.0],
    ).run()
    assert len(sweep.telemetry) == 2
    assert all(snapshot is not None for snapshot in sweep.telemetry)
