"""Benchstore documents and the bench_compare gating script."""

import json
import os
import subprocess
import sys

import pytest

from repro.harness.benchstore import (
    SCHEMA,
    load_suite,
    percentile,
    suite_document,
    validate_suite,
    write_suite,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
COMPARE = os.path.join(REPO_ROOT, "scripts", "bench_compare.py")


def record(name, median, extra=None):
    return {
        "name": name,
        "group": None,
        "rounds": 5,
        "median_s": median,
        "p95_s": median * 1.2,
        "mean_s": median * 1.05,
        "min_s": median * 0.9,
        "max_s": median * 1.3,
        "extra_info": extra or {},
    }


class TestPercentile:
    def test_median_and_extremes(self):
        data = [5.0, 1.0, 3.0, 2.0, 4.0]
        assert percentile(data, 0.5) == 3.0
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 1.0) == 5.0

    def test_interpolates(self):
        assert percentile([1.0, 2.0], 0.5) == 1.5

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)
        with pytest.raises(ValueError):
            percentile([1.0], 1.5)


class TestSuiteDocuments:
    def test_write_load_round_trip(self, tmp_path):
        path = write_suite(str(tmp_path), "demo", [record("test_a", 0.01)])
        assert os.path.basename(path) == "BENCH_demo.json"
        doc = load_suite(path)
        assert doc["schema"] == SCHEMA
        assert doc["suite"] == "demo"
        assert doc["benchmarks"]["test_a"]["median_s"] == 0.01
        assert "python" in doc["environment"]

    def test_validate_rejects_wrong_schema(self):
        doc = suite_document("demo", [record("test_a", 0.01)])
        doc["schema"] = "repro.bench/999"
        with pytest.raises(ValueError):
            validate_suite(doc)

    def test_validate_rejects_missing_stats(self):
        bad = record("test_a", 0.01)
        del bad["median_s"]
        doc = suite_document("demo", [bad])
        with pytest.raises(ValueError):
            validate_suite(doc)


def run_compare(*args):
    return subprocess.run(
        [sys.executable, COMPARE, *args], capture_output=True, text=True
    )


class TestBenchCompare:
    def test_identical_inputs_exit_zero(self, tmp_path):
        path = write_suite(
            str(tmp_path), "demo", [record("test_a", 0.01, {"figure": 5.0})]
        )
        result = run_compare(path, path)
        assert result.returncode == 0, result.stdout + result.stderr
        assert "within tolerance" in result.stdout

    def test_timing_regression_fails(self, tmp_path):
        old = write_suite(str(tmp_path / "old"), "demo", [record("test_a", 0.01)])
        new = write_suite(str(tmp_path / "new"), "demo", [record("test_a", 0.02)])
        result = run_compare(old, new, "--tolerance", "0.2")
        assert result.returncode == 1
        assert "REGRESSED" in result.stdout

    def test_speedup_within_tolerance(self, tmp_path):
        old = write_suite(str(tmp_path / "old"), "demo", [record("test_a", 0.02)])
        new = write_suite(str(tmp_path / "new"), "demo", [record("test_a", 0.005)])
        assert run_compare(old, new).returncode == 0

    def test_extra_info_drift_fails(self, tmp_path):
        old = write_suite(
            str(tmp_path / "old"), "demo", [record("test_a", 0.01, {"figure": 5.0})]
        )
        new = write_suite(
            str(tmp_path / "new"), "demo", [record("test_a", 0.01, {"figure": 9.0})]
        )
        result = run_compare(old, new, "--tolerance", "0.2")
        assert result.returncode == 1
        assert "drifted" in result.stdout

    def test_figure_tolerance_gates_figures_independently(self, tmp_path):
        # 10% figure drift under a forgiving 50% timing tolerance: passes
        # by default, fails once the figure gate is tightened to 5%.
        old = write_suite(
            str(tmp_path / "old"), "demo", [record("test_a", 0.01, {"figure": 10.0})]
        )
        new = write_suite(
            str(tmp_path / "new"), "demo", [record("test_a", 0.01, {"figure": 11.0})]
        )
        assert run_compare(old, new, "--tolerance", "0.5").returncode == 0
        result = run_compare(
            old, new, "--tolerance", "0.5", "--figure-tolerance", "0.05"
        )
        assert result.returncode == 1
        assert "drifted" in result.stdout

    def test_figure_tolerance_does_not_loosen_timing_gate(self, tmp_path):
        # A 2x timing regression must still fail even when the figure
        # tolerance is huge.
        old = write_suite(str(tmp_path / "old"), "demo", [record("test_a", 0.01)])
        new = write_suite(str(tmp_path / "new"), "demo", [record("test_a", 0.02)])
        result = run_compare(
            old, new, "--tolerance", "0.5", "--figure-tolerance", "10.0"
        )
        assert result.returncode == 1
        assert "REGRESSED" in result.stdout

    def test_perf_prefixed_figures_use_timing_tolerance(self, tmp_path):
        # perf_* extra_info values are timing-derived (RPS, latency
        # percentiles): they wobble with hardware and get the forgiving
        # timing tolerance, not the tight figure gate.
        old = write_suite(
            str(tmp_path / "old"), "demo", [record("test_a", 0.01, {"perf_rps": 3000.0})]
        )
        new = write_suite(
            str(tmp_path / "new"), "demo", [record("test_a", 0.01, {"perf_rps": 2400.0})]
        )
        assert (
            run_compare(
                old, new, "--tolerance", "0.5", "--figure-tolerance", "0.05"
            ).returncode
            == 0
        )

    def test_perf_prefixed_figures_still_gated_at_timing_tolerance(self, tmp_path):
        old = write_suite(
            str(tmp_path / "old"), "demo", [record("test_a", 0.01, {"perf_rps": 3000.0})]
        )
        new = write_suite(
            str(tmp_path / "new"), "demo", [record("test_a", 0.01, {"perf_rps": 1000.0})]
        )
        result = run_compare(
            old, new, "--tolerance", "0.5", "--figure-tolerance", "0.05"
        )
        assert result.returncode == 1
        assert "drifted" in result.stdout

    def test_unprefixed_figure_keeps_tight_gate_alongside_perf_keys(self, tmp_path):
        # The same 20% drift: fine on a perf_ key, fatal on a figure key.
        old = write_suite(
            str(tmp_path / "old"),
            "demo",
            [record("test_a", 0.01, {"perf_rps": 3000.0, "figure": 10.0})],
        )
        new = write_suite(
            str(tmp_path / "new"),
            "demo",
            [record("test_a", 0.01, {"perf_rps": 2400.0, "figure": 12.0})],
        )
        result = run_compare(
            old, new, "--tolerance", "0.5", "--figure-tolerance", "0.05"
        )
        assert result.returncode == 1
        assert "figure" in result.stdout

    def test_mismatched_workers_configuration_fails(self, tmp_path):
        # A 4-worker baseline vs a 1-worker candidate is not comparable:
        # the mismatch must fail even at the loosest tolerances.
        old = write_suite(
            str(tmp_path / "old"),
            "demo",
            [record("test_a", 0.01, {"workers": 4, "perf_rps": 1000.0})],
        )
        new = write_suite(
            str(tmp_path / "new"),
            "demo",
            [record("test_a", 0.01, {"workers": 1, "perf_rps": 1000.0})],
        )
        result = run_compare(old, new, "--tolerance", "100.0")
        assert result.returncode == 1
        assert "not comparable" in result.stdout

    def test_matching_workers_configuration_passes(self, tmp_path):
        old = write_suite(
            str(tmp_path / "old"),
            "demo",
            [record("test_a", 0.01, {"workers": 4, "perf_rps": 1000.0})],
        )
        new = write_suite(
            str(tmp_path / "new"),
            "demo",
            [record("test_a", 0.01, {"workers": 4, "perf_rps": 1100.0})],
        )
        assert run_compare(old, new, "--tolerance", "0.5").returncode == 0

    def test_missing_benchmark_fails(self, tmp_path):
        old = write_suite(
            str(tmp_path / "old"),
            "demo",
            [record("test_a", 0.01), record("test_b", 0.01)],
        )
        new = write_suite(str(tmp_path / "new"), "demo", [record("test_a", 0.01)])
        result = run_compare(old, new)
        assert result.returncode == 1
        assert "missing from NEW" in result.stdout

    def test_directory_mode(self, tmp_path):
        old_dir, new_dir = str(tmp_path / "old"), str(tmp_path / "new")
        write_suite(old_dir, "one", [record("test_a", 0.01)])
        write_suite(new_dir, "one", [record("test_a", 0.011)])
        assert run_compare(old_dir, new_dir).returncode == 0

    def test_invalid_document_exits_two(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text(json.dumps({"schema": "nope"}))
        good = write_suite(str(tmp_path / "ok"), "demo", [record("test_a", 0.01)])
        result = run_compare(str(bad), good)
        assert result.returncode == 2
