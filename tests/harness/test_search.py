"""Search-harness determinism: same seed reproduces the trajectory,
resume matches an uninterrupted run exactly, memo hits are unchanged
objects, and both optimizers actually optimize."""

import json
import random

import pytest

from repro.harness.parallel import EvalMemo, WarmPool
from repro.harness.search import (
    FIG3_SPACE,
    PROXY_SPACE,
    SPACES,
    SUITES,
    Evaluator,
    Objective,
    canonical_point,
    read_checkpoint,
    run_search,
    trajectory_chart,
)

#: Tiny but real simulations: long enough for one deviation interval
#: past warmup, short enough to keep this file fast.
DURATION_S = 3.0


def quick(**overrides):
    defaults = dict(
        suite="fig3",
        algo="random",
        budget=4,
        seed=11,
        duration_s=DURATION_S,
        processes=0,
        batch_size=2,
        mu=2,
        lam=3,
    )
    defaults.update(overrides)
    return run_search(**defaults)


def snapshot(result):
    return [(r.index, r.params, r.metrics, r.objective) for r in result.records]


# -- objective and spaces ---------------------------------------------------


def test_objective_is_the_documented_weighted_sum():
    metrics = {"deviation_pct": 2.0, "p95_ms": 30.0, "underutil_pct": 1.0}
    assert Objective().score(metrics) == 33.0
    assert Objective(2.0, 0.5, 10.0).score(metrics) == 4.0 + 15.0 + 10.0


def test_spaces_draw_only_registered_legal_values():
    rng = random.Random(1)
    for space in (FIG3_SPACE, PROXY_SPACE):
        for _ in range(20):
            params = space.sample(rng)
            assert set(params) == set(space.names())
            child = space.mutate(params, rng)
            assert set(child) == set(space.names())


def test_proxy_space_narrows_hedging_to_active_policies():
    rng = random.Random(2)
    drawn = {PROXY_SPACE.sample(rng)["hedge_policy"] for _ in range(30)}
    assert drawn <= {"fixed", "p95"}
    assert "off" not in drawn


# -- determinism ------------------------------------------------------------


def test_same_seed_and_budget_reproduce_the_identical_run():
    first = quick()
    second = quick()
    assert snapshot(first) == snapshot(second)
    assert first.best().params == second.best().params
    assert first.trajectory() == second.trajectory()


def test_different_seeds_diverge():
    assert snapshot(quick(seed=11)) != snapshot(quick(seed=12))


def test_record_zero_is_always_the_default_config():
    result = quick()
    assert result.records[0].params == {}
    assert result.default() is result.records[0]


def test_trajectory_is_monotone_best_so_far():
    trajectory = quick(budget=6).trajectory()
    values = [value for _, value in trajectory]
    assert values == sorted(values, reverse=True) or all(
        b <= a for a, b in zip(values, values[1:])
    )
    assert trajectory_chart(quick(budget=3))  # renders without raising


def test_es_is_deterministic_too():
    first = quick(algo="es", budget=7)
    second = quick(algo="es", budget=7)
    assert snapshot(first) == snapshot(second)


# -- checkpoint + resume ----------------------------------------------------


def test_resume_from_mid_run_checkpoint_matches_uninterrupted(tmp_path):
    full_path = tmp_path / "full.jsonl"
    full = quick(budget=6, checkpoint_path=str(full_path))

    cut_path = tmp_path / "cut.jsonl"
    lines = full_path.read_text().splitlines(keepends=True)
    cut_path.write_text("".join(lines[:4]))  # header + 3 of 6 records

    resumed = quick(budget=6, checkpoint_path=str(cut_path), resume=True)
    assert snapshot(resumed) == snapshot(full)
    # The resumed checkpoint file is byte-identical to the full one.
    assert cut_path.read_text() == full_path.read_text()


def test_resume_replays_without_re_simulating(tmp_path):
    path = tmp_path / "ck.jsonl"
    quick(budget=4, checkpoint_path=str(path))
    memo = EvalMemo()
    quick(budget=4, checkpoint_path=str(path), resume=True, memo=memo)
    # Every prior evaluation was served from the preloaded memo.
    assert memo.hits >= 4


def test_resume_may_extend_the_budget(tmp_path):
    path = tmp_path / "ck.jsonl"
    quick(budget=3, checkpoint_path=str(path))
    extended = quick(budget=5, checkpoint_path=str(path), resume=True)
    assert len(extended.records) == 5
    assert snapshot(extended)[:3] == snapshot(quick(budget=3))


def test_resume_rejects_mismatched_settings(tmp_path):
    path = tmp_path / "ck.jsonl"
    quick(budget=3, checkpoint_path=str(path))
    with pytest.raises(ValueError, match="seed mismatch"):
        quick(budget=3, seed=99, checkpoint_path=str(path), resume=True)
    with pytest.raises(ValueError, match="weights mismatch"):
        quick(
            budget=3,
            objective=Objective(2.0, 1.0, 1.0),
            checkpoint_path=str(path),
            resume=True,
        )
    with pytest.raises(ValueError):
        run_search("fig3", resume=True, processes=0)  # no checkpoint path


def test_checkpoint_round_trips_exactly(tmp_path):
    path = tmp_path / "ck.jsonl"
    result = quick(budget=4, checkpoint_path=str(path))
    header, records = read_checkpoint(str(path))
    assert header["suite"] == "fig3" and header["seed"] == 11
    assert [(r.index, r.params, r.metrics, r.objective) for r in records] == snapshot(
        result
    )
    # JSON round-trip is exact for the plain-float metrics.
    for line in path.read_text().splitlines()[1:]:
        payload = json.loads(line)
        assert json.loads(json.dumps(payload)) == payload


def test_read_checkpoint_rejects_garbage(tmp_path):
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(ValueError):
        read_checkpoint(str(empty))
    bad = tmp_path / "bad.jsonl"
    bad.write_text('{"kind": "something-else"}\n')
    with pytest.raises(ValueError):
        read_checkpoint(str(bad))


# -- memoized evaluation ----------------------------------------------------


def test_memoized_re_evaluation_returns_the_cached_object_unchanged():
    memo = EvalMemo()
    evaluator = Evaluator("fig3", DURATION_S, base_seed=5, processes=0, memo=memo)
    params = {"accounting_cycle_s": 0.5}
    first = evaluator.evaluate([params])[0]
    second = evaluator.evaluate([params])[0]
    assert second is first  # the exact cached object, not a copy
    assert memo.hits == 1


def test_preload_reconstructs_the_exact_memo_key():
    memo = EvalMemo()
    evaluator = Evaluator("fig3", DURATION_S, base_seed=5, processes=0, memo=memo)
    params = {"accounting_cycle_s": 0.5}
    sentinel = {"deviation_pct": 1.0, "p95_ms": 2.0, "underutil_pct": 3.0}
    evaluator.preload(params, sentinel)
    assert evaluator.evaluate([params])[0] is sentinel


def test_memoized_search_shares_across_runs():
    memo = EvalMemo()
    first = quick(memo=memo)
    hits_before = memo.hits
    second = quick(memo=memo)
    assert snapshot(first) == snapshot(second)
    assert memo.hits == hits_before + len(second.records)


# -- optimization sanity ----------------------------------------------------


def test_search_actually_improves_on_the_default():
    result = quick(budget=6, seed=3)
    assert result.best().objective <= result.default().objective
    assert result.improvement_pct() >= 0.0


def test_unknown_suite_and_algo_rejected():
    with pytest.raises(ValueError):
        Evaluator("nope", 1.0, base_seed=0)
    with pytest.raises(ValueError):
        run_search("fig3", algo="annealing", processes=0)
    with pytest.raises(ValueError):
        run_search("fig3", budget=0, processes=0)


def test_warm_pool_search_equals_serial_search():
    serial = quick(budget=3)
    with WarmPool(processes=2) as pool:
        warm = run_search(
            "fig3",
            algo="random",
            budget=3,
            seed=11,
            duration_s=DURATION_S,
            pool=pool,
            batch_size=2,
        )
    assert snapshot(serial) == snapshot(warm)


def test_suites_and_spaces_stay_in_sync():
    assert set(SUITES) == set(SPACES) == {"fig3", "proxy"}
