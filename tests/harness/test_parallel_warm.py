"""Warm-pool ParallelSweep: warm == fresh == serial exactly, memo hits
byte-identical, and per-completion progress reporting."""

import pickle

import pytest

from repro.harness.parallel import EvalMemo, ParallelSweep, SweepPointError, WarmPool
from tests.harness.test_parallel_sweep import boom, mini_simulation, seeded_sum


# -- warm == fresh == serial ------------------------------------------------


def test_warm_pool_equals_fresh_pool_equals_serial_exactly():
    kwargs = dict(base_seed=11, rate=[10.0, 50.0], size=[1, 2, 3])
    serial = ParallelSweep(seeded_sum, processes=0, **kwargs).run()
    fresh = ParallelSweep(seeded_sum, processes=2, **kwargs).run()
    with WarmPool(processes=2) as pool:
        warm = ParallelSweep(seeded_sum, pool=pool, **kwargs).run()
    for other in (fresh, warm):
        assert [p.params for p in serial.points] == [p.params for p in other.points]
        assert [p.result for p in serial.points] == [p.result for p in other.points]


def test_warm_pool_equals_serial_for_real_engine_runs():
    kwargs = dict(base_seed=5, rate=[40.0, 80.0])
    serial = ParallelSweep(mini_simulation, processes=0, **kwargs).run()
    with WarmPool(processes=1) as pool:
        warm = ParallelSweep(mini_simulation, pool=pool, **kwargs).run()
    assert [p.result for p in serial.points] == [p.result for p in warm.points]


def test_one_warm_pool_serves_many_sweeps():
    with WarmPool(processes=2) as pool:
        results = []
        for base_seed in (1, 2, 3):
            sweep = ParallelSweep(
                seeded_sum, pool=pool, base_seed=base_seed, rate=[1.0, 2.0], size=[4]
            ).run()
            results.append([p.result for p in sweep.points])
    fresh = [
        [
            p.result
            for p in ParallelSweep(
                seeded_sum, processes=2, base_seed=s, rate=[1.0, 2.0], size=[4]
            )
            .run()
            .points
        ]
        for s in (1, 2, 3)
    ]
    assert results == fresh


def test_warm_pool_rejects_zero_processes_and_pool_plus_processes():
    with pytest.raises(ValueError):
        WarmPool(processes=0)
    with WarmPool(processes=1) as pool:
        with pytest.raises(ValueError):
            ParallelSweep(seeded_sum, processes=1, pool=pool, base_seed=1, rate=[1])


def test_warm_pool_close_is_idempotent():
    pool = WarmPool(processes=1)
    ParallelSweep(seeded_sum, pool=pool, base_seed=1, rate=[1.0], size=[1]).run()
    pool.close()
    pool.close()


def test_warm_pool_surfaces_worker_failures():
    with WarmPool(processes=2) as pool:
        sweep = ParallelSweep(boom, pool=pool, base_seed=1, rate=[12, 13, 14])
        with pytest.raises(SweepPointError) as excinfo:
            sweep.run()
        assert excinfo.value.params["rate"] == 13
        # The completed prefix is merged before the failure surfaces.
        assert [p.params["rate"] for p in sweep.points] == [12]
        # The pool survives a failed sweep and can run the next one.
        ok = ParallelSweep(boom, pool=pool, base_seed=1, rate=[12, 14]).run()
        assert [p.result for p in ok.points] == [12, 14]


# -- evaluation memo --------------------------------------------------------


def test_memo_hit_returns_the_cached_result_object_unchanged():
    memo = EvalMemo()
    kwargs = dict(base_seed=7, memo=memo, rate=[1.0, 2.0], size=[3])
    first = ParallelSweep(seeded_sum, processes=0, **kwargs).run()
    assert (memo.hits, memo.misses) == (0, 2)
    blob = pickle.dumps([p.result for p in first.points])

    second = ParallelSweep(seeded_sum, processes=0, **kwargs).run()
    assert (memo.hits, memo.misses) == (2, 2)
    # Same object identity — the outcome never re-ran or round-tripped.
    for a, b in zip(first.points, second.points):
        assert b.result is a.result
    assert pickle.dumps([p.result for p in second.points]) == blob


def test_memo_is_shared_across_pool_modes():
    memo = EvalMemo()
    kwargs = dict(base_seed=3, memo=memo, rate=[5.0], size=[1, 2])
    serial = ParallelSweep(seeded_sum, processes=0, **kwargs).run()
    with WarmPool(processes=2) as pool:
        warm = ParallelSweep(seeded_sum, pool=pool, **kwargs).run()
    assert memo.hits == 2  # the warm run never touched a worker
    for a, b in zip(serial.points, warm.points):
        assert b.result is a.result


def test_memo_key_distinguishes_runner_params_and_telemetry():
    params = {"rate": 1.0, "seed": 9}
    base = EvalMemo.key_for(seeded_sum, params, False)
    assert EvalMemo.key_for(seeded_sum, dict(reversed(params.items())), False) == base
    assert EvalMemo.key_for(seeded_sum, params, True) != base
    assert EvalMemo.key_for(mini_simulation, params, False) != base
    assert EvalMemo.key_for(seeded_sum, {"rate": 2.0, "seed": 9}, False) != base


def test_memo_does_not_cache_failures():
    memo = EvalMemo()
    sweep = ParallelSweep(boom, processes=0, base_seed=1, memo=memo, rate=[13])
    with pytest.raises(SweepPointError):
        sweep.run()
    assert len(memo) == 0


def test_partial_memo_mixes_cached_and_fresh_in_grid_order():
    memo = EvalMemo()
    ParallelSweep(seeded_sum, processes=0, base_seed=2, memo=memo, rate=[1.0], size=[5]).run()
    sweep = ParallelSweep(
        seeded_sum, processes=0, base_seed=2, memo=memo, rate=[1.0, 2.0], size=[5]
    ).run()
    assert memo.hits == 1 and memo.misses == 2
    plain = ParallelSweep(
        seeded_sum, processes=0, base_seed=2, rate=[1.0, 2.0], size=[5]
    ).run()
    assert [p.result for p in sweep.points] == [p.result for p in plain.points]


# -- per-completion progress ------------------------------------------------


def test_progress_fires_after_each_completion_not_up_front():
    seen = []

    def observe(params):
        # By the time the callback fires, the point's result is merged:
        # the old implementation fired all callbacks before any
        # evaluation, so points would still be empty here.
        assert sweep.points[-1].params == params
        seen.append((params["rate"], params["size"], len(sweep.points)))

    sweep = ParallelSweep(seeded_sum, processes=2, base_seed=4, rate=[1.0, 2.0], size=[3])
    sweep.run(progress=observe)
    assert seen == [(1.0, 3, 1), (2.0, 3, 2)]


def test_progress_fires_in_grid_order_inline_and_warm():
    for mode in ("inline", "warm"):
        order = []
        if mode == "inline":
            sweep = ParallelSweep(seeded_sum, processes=0, base_seed=6, rate=[1, 2, 3], size=[1])
            sweep.run(progress=lambda p: order.append(p["rate"]))
        else:
            with WarmPool(processes=2) as pool:
                sweep = ParallelSweep(seeded_sum, pool=pool, base_seed=6, rate=[1, 2, 3], size=[1])
                sweep.run(progress=lambda p: order.append(p["rate"]))
        assert order == [1, 2, 3]


def test_progress_fires_for_memo_hits_too():
    memo = EvalMemo()
    kwargs = dict(processes=0, base_seed=8, memo=memo, rate=[1.0, 2.0], size=[1])
    ParallelSweep(seeded_sum, **kwargs).run()
    order = []
    ParallelSweep(seeded_sum, **kwargs).run(progress=lambda p: order.append(p["rate"]))
    assert order == [1.0, 2.0]
