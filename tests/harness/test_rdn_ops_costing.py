"""Tests tying a packet-mode run's RDN op counters to the cost model."""

import pytest

from repro.core import GageCluster, Subscriber
from repro.core.rdn import RDNOpCounters
from repro.harness import RDNCostModel
from repro.sim import Environment
from repro.workload import SyntheticWorkload


def test_cpu_seconds_for_ops_arithmetic():
    model = RDNCostModel()
    ops = RDNOpCounters(
        packets=100, classifications=20, connection_setups=10, forwards=50
    )
    expected = (10 * 29.3 + 20 * 3.0 + 50 * 7.0 + 100 * 13.0) / 1e6
    assert model.cpu_seconds_for_ops(ops) == pytest.approx(expected)


def test_modeled_rdn_utilization_from_real_run():
    """Run the packet-mode cluster and cost the front end's actual work."""
    env = Environment()
    duration = 3.0
    rate = 40.0
    subs = [Subscriber("a", 100)]
    workload = SyntheticWorkload(rates={"a": rate}, duration_s=duration, file_bytes=2000)
    cluster = GageCluster(
        env, subs, {"a": workload.site_files("a")}, num_rpns=2, fidelity="packet"
    )
    cluster.load_trace(workload.generate())
    cluster.run(duration + 2.0)

    model = RDNCostModel()
    busy_s = model.cpu_seconds_for_ops(cluster.rdn.ops)
    utilization = busy_s / duration
    # At 40 req/s the front end should be a few percent busy — far from
    # the ~4,800 req/s saturation the paper projects.
    assert 0.001 < utilization < 0.05
    # Consistency with the analytic per-request model (within 2x: the
    # analytic model assumes slightly different packet counts).
    analytic = model.utilization(rate)
    assert utilization == pytest.approx(analytic, rel=1.0)
