"""The scenario-matrix harness: single cells, the sweep, the report."""

import pytest

from repro.harness.scenarios import (
    FAULTS,
    FIG3_BOUND_PCT,
    TOPOLOGIES,
    WORKLOADS,
    format_report,
    generated_topology,
    mixed_2tier_topology,
    run_matrix,
    run_scenario,
)


def test_builtin_topologies_are_valid():
    assert set(TOPOLOGIES) == {"homogeneous", "mixed_2tier", "generated"}
    for name, factory in TOPOLOGIES.items():
        topo = factory()
        assert topo.num_rpns >= 1, name
    mixed = mixed_2tier_topology()
    assert mixed.num_rpns == 8
    assert len(mixed.switches) == 2
    assert mixed.total_capacity_grps() == pytest.approx(600.0)
    # The seeded draw is stable across calls.
    assert generated_topology() == generated_topology()


def test_run_scenario_reports_one_cell():
    result = run_scenario(
        topology="mixed_2tier", workload="misbehave", fault="none",
        seed=0, duration_s=8.0,
    )
    assert result["topology"] == "mixed_2tier"
    assert result["num_rpns"] == 8
    assert result["misbehavers"] == ["site4"]
    assert set(result["deviation_pct_by_host"]) == {"site1", "site2", "site3"}
    assert result["bound_pct"] == FIG3_BOUND_PCT
    assert result["within_bound"]
    assert result["max_conforming_deviation_pct"] == pytest.approx(
        max(result["deviation_pct_by_host"].values())
    )
    # Everyone got service, misbehaver included (isolated, not starved).
    for host in ("site1", "site2", "site3", "site4"):
        assert result["served"][host] > 0


def test_run_scenario_rejects_unknown_inputs():
    with pytest.raises(ValueError):
        run_scenario(topology="torus")
    with pytest.raises(ValueError):
        run_scenario(workload="chaos", duration_s=5.0)


def test_short_runs_trim_warmup_to_keep_a_window():
    # duration 5 < warmup 4 + interval 4: the harness trims the warmup
    # so at least one complete averaging window survives.
    result = run_scenario(
        topology="homogeneous", workload="steady", fault="none",
        seed=0, duration_s=5.0,
    )
    assert result["max_conforming_deviation_pct"] > 0.0


def test_run_matrix_inline_covers_the_grid():
    seen = []
    results = run_matrix(
        topologies=["homogeneous"],
        workloads=["steady", "misbehave"],
        faults=["none"],
        duration_s=8.0,
        processes=0,
        progress=seen.append,
    )
    assert len(results) == 2
    assert len(seen) == 2
    assert {r["workload"] for r in results} == {"steady", "misbehave"}
    for result in results:
        assert result["within_bound"]


def test_fault_injection_runs():
    assert FAULTS == ("none", "crash", "slow")
    for fault in ("crash", "slow"):
        result = run_scenario(
            topology="mixed_2tier", workload="steady", fault=fault,
            seed=0, duration_s=8.0,
        )
        assert result["within_bound"], fault


def test_format_report_flags_violations():
    ok = run_scenario(
        topology="homogeneous", workload="steady", fault="none",
        seed=0, duration_s=5.0,
    )
    bad = dict(ok, within_bound=False, max_conforming_deviation_pct=55.0)
    text = format_report([ok, bad])
    lines = text.splitlines()
    assert "topology" in lines[0] and "verdict" in lines[0]
    assert lines[2].rstrip().endswith("ok")
    assert lines[3].rstrip().endswith("VIOLATED")
    assert "55.00" in lines[3]
    assert set(WORKLOADS) >= {"steady", "misbehave"}
