"""Open-loop load generation under misbehaving backends.

The open-loop driver fires at a fixed rate regardless of completions, so
a stalled or refusing server must never wedge it: the drain window
bounds the total wall time, unanswered requests are abandoned, and
failed ones are counted as errors.  With the hedging proxy in the path,
every request still yields exactly one client-side sample — cancelled
hedge losers are suppressed server-side and can never double-count.
"""

import asyncio

import pytest

from repro.core import GageConfig, Subscriber
from repro.harness.loadgen import open_loop
from repro.proxy import BackendServer, GageProxy

from ..proxy.test_chaos import free_port, start_hanging_server

SITES = {"a.com": {"/index.html": 500}}


def test_open_loop_refusing_server_counts_errors():
    """Nothing listens: every shot fails fast and is counted."""

    async def main():
        return await open_loop(
            "127.0.0.1",
            free_port(),
            site="a.com",
            rate=40.0,
            duration_s=0.25,
            drain_s=1.0,
        )

    result = asyncio.run(main())
    assert result.completed == 0
    assert result.errors >= 10  # ~0.25s at 40/s
    assert result.latencies_s == []


def test_open_loop_hanging_server_returns_within_drain_window():
    """A server that accepts and never answers: the generator abandons
    the in-flight shots at the drain deadline instead of hanging."""

    async def main():
        server, _opened, port = await start_hanging_server()
        loop = asyncio.get_event_loop()
        started = loop.time()
        result = await open_loop(
            "127.0.0.1",
            port,
            site="a.com",
            rate=20.0,
            duration_s=0.25,
            drain_s=0.5,
        )
        elapsed = loop.time() - started
        server.close()
        await server.wait_closed()
        return result, elapsed

    result, elapsed = asyncio.run(main())
    assert result.completed == 0
    # duration + drain plus scheduling slack — bounded, never 3600s.
    assert elapsed < 3.0
    assert result.duration_s == pytest.approx(elapsed, abs=0.5)


def test_open_loop_through_hedging_proxy_has_no_duplicate_samples():
    """Hedged requests answer once: client samples, proxy completions,
    and the credit ledger all agree that no request counted twice."""

    async def main():
        slow = BackendServer(SITES, time_scale=0.0, extra_delay_fn=lambda h, p: 0.3)
        fast = BackendServer(SITES, time_scale=0.0)
        slow_port = await slow.start()
        fast_port = await fast.start()
        proxy = GageProxy(
            [Subscriber("a.com", 100_000)],
            {"slowpoke": ("127.0.0.1", slow_port), "fast": ("127.0.0.1", fast_port)},
            config=GageConfig(
                hedge_policy="fixed",
                hedge_delay_s=0.05,
                scheduling_cycle_s=0.005,
                proxy_failure_threshold=100,
            ),
        )
        proxy_port = await proxy.start()
        result = await open_loop(
            "127.0.0.1",
            proxy_port,
            site="a.com",
            rate=30.0,
            duration_s=0.5,
            drain_s=3.0,
        )
        await asyncio.sleep(0.5)  # let loser drains and reaps settle
        stats = proxy.stats
        delta = proxy.accounting.conservation_delta()
        await proxy.stop()
        await slow.stop()
        await fast.stop()
        return result, stats, delta

    result, stats, delta = asyncio.run(main())
    assert result.errors == 0
    assert result.completed >= 10
    # One sample per completed request, never one per hedge copy.
    assert len(result.latencies_s) == result.completed
    assert sum(result.status_counts.values()) == result.completed
    assert stats.completed == result.completed
    # Some requests landed on the slow backend and were rescued.
    assert stats.hedges_fired > 0
    assert stats.hedges_cancelled == stats.hedges_fired
    assert delta.cpu_s == pytest.approx(0.0, abs=1e-9)
    assert delta.disk_s == pytest.approx(0.0, abs=1e-9)
    assert delta.net_bytes == pytest.approx(0.0, abs=1e-3)
