"""Metric primitives: counters, gauges, histogram bucket semantics."""

import pytest

from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    exponential_buckets,
    label_key,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("repro.test.count")
        assert counter.value == 0.0
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative_increment(self):
        counter = Counter("repro.test.count")
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_reset(self):
        counter = Counter("repro.test.count")
        counter.inc(7)
        counter.reset()
        assert counter.value == 0.0


class TestGauge:
    def test_tracks_extremes(self):
        gauge = Gauge("repro.test.depth")
        gauge.set(4.0)
        gauge.set(-2.0)
        gauge.set(1.0)
        assert gauge.value == 1.0
        assert gauge.max_seen == 4.0
        assert gauge.min_seen == -2.0

    def test_add_adjusts(self):
        gauge = Gauge("repro.test.depth")
        gauge.add(3.0)
        gauge.add(-1.0)
        assert gauge.value == 2.0

    def test_value_dict_before_any_set(self):
        values = Gauge("repro.test.depth").value_dict()
        assert values == {"value": 0.0, "max": None, "min": None}


class TestHistogramBuckets:
    def test_boundary_value_lands_in_its_bucket(self):
        # Bounds are inclusive upper edges: an observation exactly equal
        # to a bound belongs to that bound's bucket, not the next one.
        hist = Histogram("repro.test.latency", bounds=[1.0, 2.0, 4.0])
        hist.observe(1.0)
        hist.observe(2.0)
        hist.observe(4.0)
        assert hist.buckets == [1, 1, 1, 0]

    def test_below_first_and_above_last(self):
        hist = Histogram("repro.test.latency", bounds=[1.0, 2.0])
        hist.observe(0.5)   # first bucket
        hist.observe(1.5)   # second bucket
        hist.observe(99.0)  # overflow bucket
        assert hist.buckets == [1, 1, 1]
        assert hist.count == 3
        assert hist.min_seen == 0.5
        assert hist.max_seen == 99.0

    def test_bounds_must_be_sorted_and_distinct(self):
        with pytest.raises(ValueError):
            Histogram("repro.test.bad", bounds=[2.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("repro.test.bad", bounds=[1.0, 1.0])
        with pytest.raises(ValueError):
            Histogram("repro.test.bad", bounds=[])

    def test_mean_and_sum(self):
        hist = Histogram("repro.test.latency", bounds=[10.0])
        assert hist.mean == 0.0
        hist.observe(1.0)
        hist.observe(3.0)
        assert hist.sum == 4.0
        assert hist.mean == 2.0

    def test_quantile_returns_bucket_upper_bound(self):
        hist = Histogram("repro.test.latency", bounds=[1.0, 2.0, 4.0])
        for value in [0.5, 0.6, 0.7, 0.8, 3.0]:
            hist.observe(value)
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(1.0) == 4.0
        assert hist.quantile(0.0) == 1.0

    def test_quantile_overflow_bucket_reports_max_seen(self):
        hist = Histogram("repro.test.latency", bounds=[1.0])
        hist.observe(50.0)
        assert hist.quantile(0.99) == 50.0

    def test_quantile_empty_and_bad_q(self):
        hist = Histogram("repro.test.latency", bounds=[1.0])
        assert hist.quantile(0.5) == 0.0
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_reset_keeps_bounds(self):
        hist = Histogram("repro.test.latency", bounds=[1.0, 2.0])
        hist.observe(0.5)
        hist.reset()
        assert hist.count == 0
        assert hist.buckets == [0, 0, 0]
        assert hist.bounds == (1.0, 2.0)


def test_exponential_buckets():
    assert exponential_buckets(1.0, 2.0, 4) == [1.0, 2.0, 4.0, 8.0]
    with pytest.raises(ValueError):
        exponential_buckets(0.0, 2.0, 4)
    with pytest.raises(ValueError):
        exponential_buckets(1.0, 1.0, 4)


def test_label_key_is_order_insensitive():
    assert label_key({"b": "2", "a": "1"}) == label_key({"a": "1", "b": "2"})
    assert label_key({}) == ()


def test_full_name_renders_sorted_labels():
    gauge = Gauge("repro.test.depth", labels={"site": "s1", "kind": "web"})
    assert gauge.full_name == "repro.test.depth{kind=web,site=s1}"
    assert Counter("repro.test.plain").full_name == "repro.test.plain"
