"""Registry get-or-create semantics, sinks, snapshots, reset."""

import pytest

from repro.telemetry import (
    InMemorySink,
    MetricRegistry,
    get_registry,
    set_registry,
)
from repro.telemetry import registry as registry_module


class TestGetOrCreate:
    def test_same_name_same_instance(self):
        registry = MetricRegistry()
        assert registry.counter("repro.x") is registry.counter("repro.x")

    def test_labels_distinguish_instances(self):
        registry = MetricRegistry()
        a = registry.gauge("repro.q", subscriber="site1")
        b = registry.gauge("repro.q", subscriber="site2")
        assert a is not b
        assert registry.gauge("repro.q", subscriber="site1") is a

    def test_kind_mismatch_raises(self):
        registry = MetricRegistry()
        registry.counter("repro.x")
        with pytest.raises(TypeError):
            registry.gauge("repro.x")
        with pytest.raises(TypeError):
            registry.histogram("repro.x")

    def test_histogram_bounds_frozen_at_creation(self):
        registry = MetricRegistry()
        hist = registry.histogram("repro.h", bounds=[1.0, 2.0])
        again = registry.histogram("repro.h", bounds=[9.0])
        assert again is hist
        assert hist.bounds == (1.0, 2.0)

    def test_get_does_not_create(self):
        registry = MetricRegistry()
        assert registry.get("repro.absent") is None
        assert len(registry) == 0


def test_metrics_listing_sorted_and_filtered():
    registry = MetricRegistry()
    registry.counter("repro.b.two")
    registry.counter("repro.a.one")
    registry.gauge("other.metric")
    names = [metric.full_name for metric in registry.metrics()]
    assert names == ["other.metric", "repro.a.one", "repro.b.two"]
    assert [m.full_name for m in registry.metrics(prefix="repro.")] == [
        "repro.a.one",
        "repro.b.two",
    ]


def test_snapshot_and_flush_fan_out():
    registry = MetricRegistry(name="test")
    registry.counter("repro.x").inc(3)
    sink = registry.add_sink(InMemorySink())
    snapshot = registry.flush(now=12.5)
    assert registry.flushes == 1
    assert snapshot["registry"] == "test"
    assert snapshot["at"] == 12.5
    assert snapshot["metrics"]["repro.x"]["value"] == 3.0
    assert sink.snapshots == [snapshot]


def test_emit_reaches_every_sink():
    registry = MetricRegistry()
    first, second = InMemorySink(), InMemorySink()
    registry.add_sink(first)
    registry.add_sink(second)
    registry.emit({"event": "node_down", "target": "rpn3"})
    assert first.events == second.events == [{"event": "node_down", "target": "rpn3"}]
    registry.remove_sink(second)
    registry.emit({"event": "node_up", "target": "rpn3"})
    assert len(first.events) == 2
    assert len(second.events) == 1


def test_reset_clears_metrics_and_sinks():
    registry = MetricRegistry()
    registry.counter("repro.x").inc()
    registry.add_sink(InMemorySink())
    registry.reset()
    assert len(registry) == 0
    assert registry.sinks == []
    assert registry.flushes == 0


def test_reset_values_keeps_registrations():
    registry = MetricRegistry()
    counter = registry.counter("repro.x")
    counter.inc(5)
    registry.reset_values()
    assert registry.counter("repro.x") is counter
    assert counter.value == 0.0


def test_default_registry_swap_and_reset():
    original = get_registry()
    replacement = MetricRegistry(name="swapped")
    try:
        previous = set_registry(replacement)
        assert previous is original
        assert get_registry() is replacement
        # Module-level conveniences follow the swap.
        registry_module.counter("repro.conv").inc()
        assert replacement.get("repro.conv").value == 1.0
    finally:
        set_registry(original)
    assert get_registry() is original


def test_registry_reset_isolates_tests():
    # The autouse fixture in tests/conftest.py resets the default
    # registry around every test: whatever instrumented code recorded in
    # other tests must not be visible here.
    assert get_registry().get("repro.sim.events_dispatched") is None
