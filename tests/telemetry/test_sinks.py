"""Sink behavior: JSONL round-trip, console reporter rate limiting."""

import io

from repro.telemetry import (
    ConsoleReporter,
    JSONLSink,
    MetricRegistry,
    read_jsonl,
)


class TestJSONLSink:
    def test_round_trip_through_file(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        registry = MetricRegistry(name="rt")
        registry.counter("repro.x").inc(2)
        registry.histogram("repro.h", bounds=[1.0]).observe(0.5)
        sink = registry.add_sink(JSONLSink(path))
        registry.flush(now=3.0)
        registry.emit({"event": "node_down", "target": "rpn1", "at": 3.5})
        registry.flush(now=4.0)
        sink.close()

        records = read_jsonl(path)
        assert [r["type"] for r in records] == ["snapshot", "event", "snapshot"]
        first, event, second = records
        assert first["at"] == 3.0
        assert first["metrics"]["repro.x"] == {"kind": "counter", "value": 2.0}
        assert first["metrics"]["repro.h"]["count"] == 1
        assert first["metrics"]["repro.h"]["buckets"] == [1, 0]
        assert event["target"] == "rpn1"
        assert second["at"] == 4.0
        assert sink.lines_written == 3

    def test_append_mode_preserves_existing_lines(self, tmp_path):
        path = str(tmp_path / "telemetry.jsonl")
        for round_number in range(2):
            sink = JSONLSink(path)
            sink.on_event({"round": round_number})
            sink.close()
        assert [r["round"] for r in read_jsonl(path)] == [0, 1]

    def test_external_stream_not_closed(self):
        stream = io.StringIO()
        sink = JSONLSink(stream)
        sink.on_event({"event": "mark"})
        sink.close()
        # close() must not close a stream it did not open.
        assert not stream.closed
        assert '"event": "mark"' in stream.getvalue()


class TestConsoleReporter:
    def test_rate_limited_by_wall_clock(self):
        fake_now = [0.0]
        out = io.StringIO()
        reporter = ConsoleReporter(
            interval_s=1.0, stream=out, clock=lambda: fake_now[0]
        )
        registry = MetricRegistry()
        registry.counter("repro.x").inc(4)
        registry.add_sink(reporter)

        for _ in range(100):
            registry.tick()  # same instant: nothing printed
        assert reporter.reports == 0

        fake_now[0] = 1.5
        registry.tick()
        assert reporter.reports == 1
        registry.tick()  # interval not elapsed again
        assert reporter.reports == 1

        fake_now[0] = 3.0
        registry.tick()
        assert reporter.reports == 2
        lines = out.getvalue().strip().splitlines()
        assert lines == ["[telemetry] repro.x=4"] * 2

    def test_prefix_filter_and_field_cap(self):
        fake_now = [10.0]
        out = io.StringIO()
        reporter = ConsoleReporter(
            interval_s=1.0,
            prefixes=("repro.core.",),
            max_fields=2,
            stream=out,
            clock=lambda: fake_now[0],
        )
        registry = MetricRegistry()
        registry.counter("repro.core.a").inc()
        registry.counter("repro.core.b").inc()
        registry.counter("repro.core.c").inc()
        registry.counter("repro.sim.hidden").inc()
        registry.add_sink(reporter)
        fake_now[0] = 20.0
        registry.tick()
        line = out.getvalue().strip()
        assert line == "[telemetry] repro.core.a=1 repro.core.b=1"
