"""Telemetry wired through the simulated cluster, and the determinism
guarantee: sinks are pure observers — a fixed-seed simulation produces
byte-identical accounting output with sinks on and off."""

import json

from repro.core import GageCluster, Subscriber
from repro.sim import Environment
from repro.telemetry import (
    ConsoleReporter,
    InMemorySink,
    JSONLSink,
    get_registry,
    read_jsonl,
)
from repro.workload import SyntheticWorkload


def run_small_cluster(duration=3.0, seed=7):
    env = Environment()
    subs = [
        Subscriber("site1", reservation_grps=100),
        Subscriber("site2", reservation_grps=50),
    ]
    workload = SyntheticWorkload(
        rates={"site1": 60.0, "site2": 30.0},
        duration_s=duration,
        file_bytes=2000,
        seed=seed,
    )
    site_files = {name: workload.site_files(name) for name in ("site1", "site2")}
    cluster = GageCluster(env, subs, site_files, num_rpns=2, fidelity="flow")
    cluster.load_trace(workload.generate())
    cluster.run(duration)
    return cluster


def accounting_fingerprint(cluster):
    """Byte-exact serialization of what the RDN accounted."""
    usage = [
        (at, name, vec.cpu_s, vec.disk_s, vec.net_bytes)
        for at, name, vec in cluster.rdn.accounting.usage_log
    ]
    failures = [
        (event.at_s, event.kind, event.target, event.detail)
        for event in cluster.rdn.failures.events
    ]
    return json.dumps({"usage": usage, "failures": failures}, sort_keys=True)


def test_simulation_populates_core_metrics():
    cluster = run_small_cluster()
    registry = get_registry()

    events = registry.get("repro.sim.events_dispatched")
    assert events is not None and events.value > 0
    assert cluster.env.events_dispatched > 0

    cycles = registry.get("repro.core.wrr_cycles")
    assert cycles is not None and cycles.value > 0

    dispatches = registry.get("repro.core.dispatches", credit="reserved")
    assert dispatches is not None and dispatches.value > 0

    arrivals = registry.get("repro.core.queue_arrivals", subscriber="site1")
    assert arrivals is not None and arrivals.value > 0

    feedback = registry.get("repro.core.feedback_messages")
    assert feedback is not None and feedback.value > 0

    lag = registry.get("repro.core.report_lag_s")
    assert lag is not None and lag.count > 0

    latency = registry.get("repro.core.dispatch_latency_s", subscriber="site1")
    assert latency is not None and latency.count > 0

    cpu = registry.get("repro.cluster.cpu_utilization", machine="rpn0")
    assert cpu is not None
    assert 0.0 <= cpu.value <= 1.0


def test_fixed_seed_identical_with_and_without_sinks(tmp_path):
    without_sinks = accounting_fingerprint(run_small_cluster())

    get_registry().reset()
    jsonl_path = str(tmp_path / "telemetry.jsonl")
    registry = get_registry()
    registry.add_sink(InMemorySink())
    registry.add_sink(JSONLSink(jsonl_path))
    registry.add_sink(ConsoleReporter(interval_s=3600.0))  # never fires
    with_sinks = accounting_fingerprint(run_small_cluster())
    registry.reset()  # closes the JSONL sink

    assert with_sinks == without_sinks

    # The sinks did observe the run: final flush wrote a snapshot.
    records = read_jsonl(jsonl_path)
    snapshots = [r for r in records if r["type"] == "snapshot"]
    assert snapshots
    metrics = snapshots[-1]["metrics"]
    assert metrics["repro.core.wrr_cycles"]["value"] > 0


def test_repeat_run_is_deterministic():
    first = accounting_fingerprint(run_small_cluster())
    get_registry().reset()
    second = accounting_fingerprint(run_small_cluster())
    assert first == second
