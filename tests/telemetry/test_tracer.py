"""Tracer spans on simulated and wall clocks."""

from repro.sim import Environment
from repro.telemetry import InMemorySink, MetricRegistry, sim_tracer, wall_tracer


def test_sim_span_measures_virtual_time():
    env = Environment()
    registry = MetricRegistry()
    tracer = sim_tracer(env, registry=registry, bounds=[0.1, 1.0, 10.0])

    def proc():
        with tracer.span("repro.test.op", site="s1"):
            yield env.timeout(0.5)

    env.process(proc())
    env.run(until=2.0)

    hist = registry.get("repro.test.op", site="s1")
    assert hist is not None
    assert hist.count == 1
    assert abs(hist.sum - 0.5) < 1e-12
    assert hist.buckets == [0, 1, 0, 0]
    assert tracer.spans_recorded == 1


def test_span_end_is_idempotent():
    env = Environment()
    registry = MetricRegistry()
    tracer = sim_tracer(env, registry=registry)
    span = tracer.span("repro.test.op")
    first = span.end()
    assert span.end() == first
    assert registry.get("repro.test.op").count == 1


def test_span_events_emitted_only_with_sinks():
    env = Environment()
    registry = MetricRegistry()
    tracer = sim_tracer(env, registry=registry)
    tracer.span("repro.test.quiet").end()

    sink = registry.add_sink(InMemorySink())
    with tracer.span("repro.test.loud", site="s1"):
        pass
    assert len(sink.events) == 1
    event = sink.events[0]
    assert event["event"] == "span"
    assert event["name"] == "repro.test.loud"
    assert event["clock"] == "sim"
    assert event["labels"] == {"site": "s1"}


def test_wall_tracer_measures_real_time():
    registry = MetricRegistry()
    tracer = wall_tracer(registry=registry)
    with tracer.span("repro.test.wall"):
        pass
    hist = registry.get("repro.test.wall")
    assert hist.count == 1
    assert hist.sum >= 0.0
    assert tracer.clock_name == "wall"
