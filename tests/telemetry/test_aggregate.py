"""Merging per-worker metric snapshots into one coherent view."""

from repro.telemetry import MetricRegistry
from repro.telemetry.aggregate import merge_snapshots


def _snapshot(build):
    registry = MetricRegistry()
    build(registry)
    return registry.snapshot()


class TestCounters:
    def test_values_sum_across_snapshots(self):
        a = _snapshot(lambda r: r.counter("repro.x").inc(3))
        b = _snapshot(lambda r: r.counter("repro.x").inc(4))
        merged = merge_snapshots([a, b])
        assert merged["metrics"]["repro.x"]["value"] == 7

    def test_disjoint_names_are_kept(self):
        a = _snapshot(lambda r: r.counter("repro.a").inc(1))
        b = _snapshot(lambda r: r.counter("repro.b").inc(2))
        merged = merge_snapshots([a, b])
        assert merged["metrics"]["repro.a"]["value"] == 1
        assert merged["metrics"]["repro.b"]["value"] == 2


class TestGauges:
    def test_values_sum_and_extremes_span_workers(self):
        def build_a(r):
            g = r.gauge("repro.depth")
            g.set(10)
            g.set(2)

        def build_b(r):
            g = r.gauge("repro.depth")
            g.set(5)

        merged = merge_snapshots([_snapshot(build_a), _snapshot(build_b)])
        entry = merged["metrics"]["repro.depth"]
        assert entry["value"] == 7  # 2 + 5: shard slices of one whole
        assert entry["max"] == 10
        assert entry["min"] == 2


class TestHistograms:
    def test_counts_sums_buckets_merge_and_mean_recomputes(self):
        def build_a(r):
            h = r.histogram("repro.lat", bounds=[1.0, 10.0])
            h.observe(0.5)
            h.observe(5.0)

        def build_b(r):
            h = r.histogram("repro.lat", bounds=[1.0, 10.0])
            h.observe(20.0)

        merged = merge_snapshots([_snapshot(build_a), _snapshot(build_b)])
        entry = merged["metrics"]["repro.lat"]
        assert entry["count"] == 3
        assert entry["sum"] == 25.5
        assert entry["mean"] == 25.5 / 3
        assert entry["buckets"] == [1, 1, 1]
        assert merged["skipped"] == []

    def test_mismatched_bounds_are_skipped_not_misbucketed(self):
        a = _snapshot(
            lambda r: r.histogram("repro.lat", bounds=[1.0]).observe(0.5)
        )
        b = _snapshot(
            lambda r: r.histogram("repro.lat", bounds=[2.0]).observe(0.5)
        )
        merged = merge_snapshots([a, b])
        assert merged["skipped"] == ["repro.lat"]
        # First snapshot wins untouched.
        assert merged["metrics"]["repro.lat"]["count"] == 1


class TestShape:
    def test_kind_mismatch_is_skipped(self):
        a = _snapshot(lambda r: r.counter("repro.x").inc(1))
        b = _snapshot(lambda r: r.gauge("repro.x").set(9))
        merged = merge_snapshots([a, b])
        assert merged["skipped"] == ["repro.x"]
        assert merged["metrics"]["repro.x"]["kind"] == "counter"

    def test_result_is_snapshot_shaped(self):
        a = _snapshot(lambda r: r.counter("repro.x").inc(1))
        merged = merge_snapshots([a], name="proxy-workers")
        assert merged["registry"] == "proxy-workers"
        assert merged["at"] == a["at"]
        assert set(merged) == {"registry", "at", "metrics", "skipped"}

    def test_empty_input(self):
        merged = merge_snapshots([])
        assert merged["metrics"] == {}
        assert merged["at"] is None
