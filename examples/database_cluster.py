"""The paper's §5 future work, built with the same framework: a
virtualizing *database* cluster guaranteeing each tenant a number of
"generic SQL transactions" per second.

§3.6 argues Gage's service-specific surface is tiny: a different
classification key, a different generic-request definition, a different
cost profile.  This example exercises exactly those three knobs:

- the **generic SQL transaction** is defined as 15 ms CPU + 25 ms disk
  channel + 500 bytes of network (result sets are small; I/O dominates);
- "queries" are CGI-style dynamic requests whose CPU demand models query
  execution and whose result size models the rows returned;
- tenants (databases) get distinct TPS reservations on a shared cluster.

Run:  python examples/database_cluster.py
"""

from repro import Environment, GageCluster, GageConfig, ResourceVector, Subscriber
from repro.workload import CostModel
from repro.workload.request import RequestRecord

#: One generic SQL transaction (the §5 analogue of the §3.1 definition).
GENERIC_SQL_TXN = ResourceVector(cpu_s=0.015, disk_s=0.025, net_bytes=500.0)

#: Tenant databases with their TPS reservations.
TENANTS = {
    "orders-db": 20.0,
    "analytics-db": 8.0,
    "sessions-db": 12.0,
}

#: Offered load: analytics floods the cluster with heavy queries.
OFFERED_TPS = {"orders-db": 18.0, "analytics-db": 60.0, "sessions-db": 11.0}

DURATION = 20.0
NUM_NODES = 1  # one node ≈ 66 TPS of CPU; the flood must be throttled


def query_trace():
    """Constant-rate query streams; each query is a dynamic (CGI) request
    costing ~one generic SQL transaction."""
    records = []
    for tenant, tps in OFFERED_TPS.items():
        period = 1.0 / tps
        at = period
        index = 0
        while at < DURATION:
            records.append(
                RequestRecord(
                    at_s=at,
                    host=tenant,
                    path="/cgi/query{:03d}".format(index % 40),
                    size_bytes=500,          # result set
                    cpu_extra_s=0.012,       # query execution CPU
                )
            )
            at += period
            index += 1
    records.sort(key=lambda record: record.at_s)
    return records


def main():
    env = Environment()
    subscribers = [
        Subscriber(name, tps, queue_capacity=256) for name, tps in TENANTS.items()
    ]
    config = GageConfig(generic_request=GENERIC_SQL_TXN)
    # Query cost model: small base cost; disk time per transaction is
    # modeled by the storage engine's page reads (here: uncached results
    # would add seek time; with cpu_extra carrying execution cost, the
    # base model stays light).
    cost_model = CostModel(base_cpu_s=0.003, per_kb_cpu_s=0.0001)
    cluster = GageCluster(
        env,
        subscribers,
        site_files={name: {} for name in TENANTS},  # all content is dynamic
        num_rpns=NUM_NODES,
        config=config,
        cost_model=cost_model,
        workers_per_site=8,
    )
    cluster.load_trace(query_trace())
    cluster.run(DURATION)

    print("virtual database cluster: {} nodes, {} tenants".format(
        NUM_NODES, len(TENANTS)))
    print("generic SQL txn = 15ms CPU + 25ms disk + 500B network\n")
    print("{:<14} {:>12} {:>12} {:>12} {:>10}".format(
        "tenant", "reserved TPS", "offered TPS", "served TPS", "dropped/s"))
    for report in cluster.all_reports(4.0, DURATION):
        print("{:<14} {:>12.0f} {:>12.1f} {:>12.1f} {:>10.1f}".format(
            report.subscriber,
            report.reservation_grps,
            report.input_rate,
            report.served_rate,
            report.dropped_rate,
        ))
    print()
    print("orders-db and sessions-db run inside their reservations and are")
    print("untouched by analytics-db's 7.5x overload - the same guarantee,")
    print("a different Internet service (the paper's §5 plan, via §3.6's")
    print("three service-specific knobs).")


if __name__ == "__main__":
    main()
