"""Watch distributed TCP splicing happen, packet by packet.

Runs the packet-fidelity cluster for a single request and prints the
message sequence of the paper's Figure 2: the client's handshake with the
RDN, the dispatch order, the RPN-local second-leg handshake (which never
touches the wire), and the remapped response flowing straight from the
RPN to the client while impersonating the cluster IP.

Run:  python examples/packet_splicing_trace.py
"""

from repro import Environment, GageCluster, Subscriber, SyntheticWorkload
from repro.core.control import DispatchOrder
from repro.net import PacketTracer
from repro.net.packet import TCPFlags


def main():
    env = Environment()
    subscribers = [Subscriber("site1.example.com", 100)]
    workload = SyntheticWorkload(
        rates={"site1.example.com": 4.0}, duration_s=0.3, file_bytes=2000
    )
    cluster = GageCluster(
        env,
        subscribers,
        {"site1.example.com": workload.site_files("site1.example.com")},
        num_rpns=1,
        fidelity="packet",
        num_clients=1,
    )

    FIRST_CLIENT_PORT = 10000  # the first connection's ephemeral port

    def first_request_only(packet):
        return (
            packet.src_port == FIRST_CLIENT_PORT
            or packet.dst_port == FIRST_CLIENT_PORT
            or (
                isinstance(packet.payload, DispatchOrder)
                and packet.payload.quad.src_port == FIRST_CLIENT_PORT
            )
        )

    interfaces = [cluster.rdn.nic.iface]
    interfaces.extend(lsm.stack.nic.iface for lsm in cluster.lsms)
    interfaces.extend(stack.nic.iface for stack in cluster.fleet.stacks)
    with PacketTracer(env, interfaces, packet_filter=first_request_only) as tracer:
        cluster.load_trace(workload.generate())
        cluster.run(2.0)
    log = [(entry.at_s, entry.interface, entry.packet) for entry in tracer.captured]

    def describe(packet):
        if isinstance(packet.payload, DispatchOrder):
            return "DISPATCH ORDER (request + splice state) -> RPN"
        flags = [f.name for f in TCPFlags if f and f in packet.flags]
        body = " +{}B".format(packet.payload_len) if packet.payload_len else ""
        return "{} {} -> {}  seq={} ack={}{}".format(
            "|".join(flags) or "-", packet.src_ip, packet.dst_ip,
            packet.seq, packet.ack, body,
        )

    print("Figure 2, live (one request through the spliced path):\n")
    for at, where, packet in log:
        print("  t={:9.6f}s  [{:<13}] {}".format(at, where, describe(packet)))

    lsm = cluster.lsms[0]
    rule = next(iter(lsm._rules_in.values()))
    print()
    print("splice rule at the RPN's local service manager:")
    print("  client quad : {}".format(rule.client_quad))
    print("  RDN ISN     : {}".format(rule.rdn_isn))
    print("  RPN ISN     : {}".format(rule.rpn_isn))
    print("  seq delta   : {} (added to every outgoing sequence number)".format(
        rule.seq_delta))
    print("  remapped    : {} outgoing, {} incoming packets".format(
        rule.outgoing_remapped, rule.incoming_remapped))
    print()
    print("note: the second-leg SYN/SYN-ACK/ACK (steps 6-8 of Figure 2) are")
    print("local to the RPN - they never appear on the wire above.")
    stats = cluster.fleet.stats
    print("\nclient outcome: {} issued, {} completed, {} bytes received".format(
        stats.issued, stats.completed, stats.bytes_received))


if __name__ == "__main__":
    main()
