"""Quickstart: a Gage cluster with two subscribers in ~20 lines.

Run:  python examples/quickstart.py
"""

from repro import Environment, GageCluster, Subscriber, SyntheticWorkload

# Two hosting customers: gold reserves 200 generic requests/sec, bronze 50.
subscribers = [
    Subscriber("gold.example.com", reservation_grps=200),
    Subscriber("bronze.example.com", reservation_grps=50, queue_capacity=128),
]

# gold offers load within its reservation; bronze floods far beyond its.
workload = SyntheticWorkload(
    rates={"gold.example.com": 190.0, "bronze.example.com": 400.0},
    duration_s=10.0,
    file_bytes=2000,  # one page == one generic request (10ms CPU, 10ms disk, 2000B)
)

env = Environment()
cluster = GageCluster(
    env,
    subscribers,
    site_files={s.name: workload.site_files(s.name) for s in subscribers},
    num_rpns=4,  # 4 back-end nodes -> ~400 GRPS of cluster capacity
)
cluster.load_trace(workload.generate())
cluster.run(10.0)

print("{:<22} {:>11} {:>8} {:>8} {:>8}".format(
    "subscriber", "reservation", "input", "served", "dropped"))
for report in cluster.all_reports(2.0, 10.0):
    print("{:<22} {:>11.0f} {:>8.1f} {:>8.1f} {:>8.1f}".format(
        report.subscriber,
        report.reservation_grps,
        report.input_rate,
        report.served_rate,
        report.dropped_rate,
    ))

print()
print("gold is fully served; bronze gets its reservation plus whatever")
print("spare capacity remains, and drops the rest - that is the QoS guarantee.")
