"""A declarative fault plan against a live cluster — and what survives it.

Where `overload_storm.py` pokes the machines by hand, this example uses
the `repro.faults` subsystem: a validated, time-ordered `FaultSchedule`
of crash / restart / slow / hang actions, fired into the cluster by a
`FaultInjector`.  The plan is plain data, so the whole chaotic run is
exactly as deterministic as a clean one.

Timeline (flow fidelity, 4 RPNs, 2000-byte pages so GRPS == req/s):

- t=2    rpn3 crashes; the RDN's heartbeat detector (3 missed
         accounting cycles) declares it dead ~0.4s later, requeues its
         in-flight requests, and water-fills the survivors' capacity;
- t=5    rpn3 restarts; its first accounting report re-admits it;
- t=7    rpn2 slows to half speed for two seconds (requests cost more
         CPU-time; the accounting loop charges them accordingly);
- t=10   rpn1 hangs for 150 ms — a stop-the-world pause *shorter* than
         the detection window: dispatches buffer and drain on resume,
         the detector never fires, no work is lost.

Run:  python examples/fault_injection.py
"""

from repro import Environment, GageCluster, Subscriber
from repro.core import GageConfig
from repro.core.metrics import NODE_DOWN, NODE_UP, REQUESTS_REQUEUED
from repro.faults import FaultSchedule
from repro.workload import SyntheticWorkload

DURATION = 13.0
RATES = {"gold": 110.0, "silver": 80.0, "bulk": 180.0}


def build_plan():
    plan = FaultSchedule.crash_restart("rpn3", at_s=2.0, down_s=3.0)
    plan.extend(FaultSchedule.degrade("rpn2", at_s=7.0, factor=0.5, for_s=2.0))
    plan.extend(FaultSchedule.hang_resume("rpn1", at_s=10.0, hung_s=0.15))
    return plan


def main():
    env = Environment()
    workload = SyntheticWorkload(rates=RATES, duration_s=DURATION, file_bytes=2000)
    subscribers = [
        Subscriber("gold", 120, queue_capacity=256),
        Subscriber("silver", 90, queue_capacity=256),
        Subscriber("bulk", 50, queue_capacity=256),
    ]
    cluster = GageCluster(
        env,
        subscribers,
        {name: workload.site_files(name) for name in RATES},
        num_rpns=4,
        fidelity="flow",
        config=GageConfig(heartbeat_miss_limit=3, accounting_cycle_s=0.1),
    )
    cluster.load_trace(workload.generate())
    injector = cluster.install_faults(build_plan())

    print("running {}s with {} scheduled faults ...".format(
        DURATION, len(build_plan().actions())))
    cluster.run(DURATION + 2.0)

    print()
    print("fault actions fired:")
    for at, action in injector.applied:
        print("  t={:>5.2f}s  {:<9} {}".format(at, action.kind, action.target))

    print()
    print("failure events the RDN recorded:")
    for event in cluster.rdn.failures.events:
        detail = "  ({:.0f})".format(event.detail) if event.kind == REQUESTS_REQUEUED else ""
        print("  t={:>5.2f}s  {:<18} {}{}".format(
            event.at_s, event.kind, event.target, detail))

    latency = cluster.rdn.failures.detection_latency_s(2.0, "rpn3")
    print()
    print("rpn3 death detected {:.0f} ms after the crash".format(1000 * latency))

    print()
    print("service while rpn3 was dead [3s, 5s) — 300 GRPS survive:")
    _print_reports(cluster, 3.0, 5.0)
    print()
    print("service after full recovery [11.5s, {:.0f}s) — 400 GRPS again:".format(DURATION))
    _print_reports(cluster, 11.5, DURATION)
    print()
    print("gold and silver never feel the crash; bulk's spare share")
    print("shrinks with the lost node and returns with it.")

    down = cluster.rdn.failures.count(NODE_DOWN)
    up = cluster.rdn.failures.count(NODE_UP)
    assert down == 1 and up == 1, "expected exactly one death and one recovery"


def _print_reports(cluster, start_s, end_s):
    print("  {:<8} {:>11} {:>9} {:>9}".format(
        "site", "reservation", "offered", "served"))
    for report in cluster.all_reports(start_s, end_s):
        print("  {:<8} {:>11.0f} {:>9.1f} {:>9.1f}".format(
            report.subscriber,
            report.reservation_grps,
            report.input_rate,
            report.served_rate,
        ))


if __name__ == "__main__":
    main()
