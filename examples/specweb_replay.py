"""Generate a SPECWeb99-shaped trace, save it, reload it, replay it, and
report how tightly Gage tracked each subscriber's reservation (§4.1's
realistic-workload experiment).

Run:  python examples/specweb_replay.py
"""

import os
import tempfile

from repro import Environment, GageCluster, GageConfig, Subscriber
from repro.core.metrics import deviation_from_reservation_vectors
from repro.workload import SpecWeb99Config, SpecWeb99Workload, load_trace, save_trace

DURATION = 30.0
RESERVATION_GRPS = 350.0
SITES = ["shop.example.com", "news.example.com"]


def main():
    # 1. Synthesize the SPECWeb99-shaped trace (classes 0-2; see DESIGN.md
    #    for why class 3 is excluded from the QoS-deviation experiment).
    config = SpecWeb99Config(directories=10, class_probabilities=(0.35, 0.50, 0.15, 0.0))
    site_files = {}
    records = []
    for index, site in enumerate(SITES):
        generator = SpecWeb99Workload(config, seed=index)
        site_files[site] = generator.site_files()
        rate = RESERVATION_GRPS / (generator.mean_request_bytes() / 2000.0) * 1.5
        records.extend(generator.generate(site, rate, DURATION, arrival="poisson"))
    records.sort(key=lambda record: record.at_s)

    # 2. Round-trip through a trace file, like the paper's clients that
    #    "load the trace from a file" (§4).
    with tempfile.NamedTemporaryFile(suffix=".tsv", delete=False) as handle:
        trace_path = handle.name
    count = save_trace(records, trace_path)
    records = load_trace(trace_path)
    os.unlink(trace_path)
    print("trace: {} requests over {:.0f}s for {} sites".format(
        count, DURATION, len(SITES)))
    print("mean request size: {:.0f} bytes".format(
        sum(r.size_bytes for r in records) / len(records)))

    # 3. Replay against the cluster, both sites overloaded 1.5x.
    env = Environment()
    subscribers = [
        Subscriber(site, RESERVATION_GRPS, queue_capacity=4096) for site in SITES
    ]
    cluster = GageCluster(
        env,
        subscribers,
        site_files,
        num_rpns=8,
        config=GageConfig(accounting_cycle_s=0.1, spare_policy="none"),
        rpn_cache_bytes=64 * 1024 * 1024,
    )
    cluster.load_trace(records)
    cluster.run(DURATION)

    # 4. Deviation of delivered usage from the reservation, per interval.
    events = {site: [] for site in SITES}
    for at, site, usage in cluster.rdn.accounting.usage_log:
        events[site].append((at, usage))
    print()
    print("deviation of delivered usage from the {:.0f}-GRPS reservations:".format(
        RESERVATION_GRPS))
    for interval in (1.0, 2.0, 4.0, 8.0):
        deviation = deviation_from_reservation_vectors(
            events, {site: RESERVATION_GRPS for site in SITES}, 2.0, DURATION, interval
        )
        print("  averaged over {:>4.0f}s windows: {:5.1f}%".format(interval, deviation))
    print()
    print("(the paper reports <5% at intervals of 4s and above)")


if __name__ == "__main__":
    main()
