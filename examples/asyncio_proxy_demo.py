"""The Gage architecture on real sockets: asyncio front end + back ends.

Starts two back-end HTTP servers and the Gage proxy on localhost, then
drives two subscribers — one inside its reservation, one flooding — and
prints per-subscriber outcomes.  The scheduler, queues, and accounting
are the *same code* the simulator runs (repro.core); only the transport
differs.

Run:  python examples/asyncio_proxy_demo.py
"""

import asyncio

from repro.proxy.demo import run_demo

RESERVATIONS = {"gold.example.com": 120.0, "flood.example.com": 25.0}
RATES = {"gold.example.com": 60.0, "flood.example.com": 150.0}
DURATION = 4.0


async def main():
    print("starting 2 backends + Gage proxy on 127.0.0.1 ...")
    result = await run_demo(
        reservations=RESERVATIONS,
        rates=RATES,
        duration_s=DURATION,
        num_backends=2,
        time_scale=0.25,  # shrink modeled service times 4x for the demo
        queue_capacity=64,
    )
    print()
    print("{:<22} {:>11} {:>8} {:>9} {:>9} {:>10}".format(
        "subscriber", "reservation", "offered", "completed", "refused", "mean lat"))
    for site, grps in RESERVATIONS.items():
        print("{:<22} {:>11.0f} {:>8.0f} {:>9} {:>9} {:>8.1f}ms".format(
            site,
            grps,
            RATES[site],
            result.completed.get(site, 0),
            result.refused.get(site, 0) + result.errors.get(site, 0),
            1000 * result.mean_latency_s(site),
        ))
    print()
    print("gold (inside its reservation) sails through; flood queues behind")
    print("its credit and sees higher latency / refusals - on real sockets.")


if __name__ == "__main__":
    asyncio.run(main())
