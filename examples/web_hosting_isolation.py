"""The paper's motivating scenario: a web hosting provider multiplexing
many logical web servers on one physical cluster (§1).

Twelve subscribers with distinct reservations share an 8-node cluster.
At t=8s one of them is hit by a flash crowd (10x its normal load).  The
same scenario is then replayed on a best-effort dispatcher (no QoS) to
show what the flash crowd does without Gage.

Run:  python examples/web_hosting_isolation.py
"""

from repro import Environment, GageCluster, Subscriber, SyntheticWorkload
from repro.baselines import BestEffortDispatcher
from repro.cluster import Machine, WebServer

NUM_RPNS = 8
DURATION = 16.0
FLASH_AT = 8.0

# A mix of plan sizes, summing to 730 GRPS on an ~800 GRPS cluster.
PLANS = {
    "mega.example.com": 200.0,
    "large1.example.com": 100.0,
    "large2.example.com": 100.0,
    "medium1.example.com": 60.0,
    "medium2.example.com": 60.0,
    "medium3.example.com": 60.0,
    "small1.example.com": 25.0,
    "small2.example.com": 25.0,
    "small3.example.com": 25.0,
    "small4.example.com": 25.0,
    "small5.example.com": 25.0,
    "small6.example.com": 25.0,
}
FLASH_VICTIM = "medium2.example.com"


def build_workload():
    """Steady load near reservations, plus a flash crowd on one site."""
    steady = SyntheticWorkload(
        rates={name: 0.92 * grps for name, grps in PLANS.items()},
        duration_s=DURATION,
        file_bytes=2000,
    )
    records = steady.generate()
    flash = SyntheticWorkload(
        rates={FLASH_VICTIM: 9.0 * PLANS[FLASH_VICTIM]},
        duration_s=DURATION - FLASH_AT,
        file_bytes=2000,
        seed=99,
    )
    for record in flash.generate():
        records.append(
            type(record)(
                at_s=record.at_s + FLASH_AT,
                host=record.host,
                path=record.path,
                size_bytes=record.size_bytes,
            )
        )
    records.sort(key=lambda r: r.at_s)
    return steady, records


def run_with_gage():
    env = Environment()
    steady, records = build_workload()
    subscribers = [
        Subscriber(name, grps, queue_capacity=128) for name, grps in PLANS.items()
    ]
    cluster = GageCluster(
        env,
        subscribers,
        {name: steady.site_files(name) for name in PLANS},
        num_rpns=NUM_RPNS,
    )
    cluster.prewarm_caches()
    cluster.load_trace(records)
    cluster.run(DURATION)
    return {
        report.subscriber: report
        for report in cluster.all_reports(FLASH_AT + 1.0, DURATION)
    }


def run_without_gage():
    env = Environment()
    steady, records = build_workload()
    servers = []
    for index in range(NUM_RPNS):
        machine = Machine(env, "rpn{}".format(index))
        server = WebServer(machine)
        for name in PLANS:
            server.host_site(name, files=steady.site_files(name))
        for path, size in machine.fs.walk():
            machine.cache.insert(path, size)
        servers.append(server)
    dispatcher = BestEffortDispatcher(env, servers, max_in_flight_per_server=64)
    dispatcher.load_trace(records)
    env.run(until=DURATION)
    window = DURATION - FLASH_AT - 1.0
    return {
        name: dispatcher.completed_rate(FLASH_AT + 1.0, DURATION, host=name)
        for name in PLANS
    }


def main():
    with_gage = run_with_gage()
    without = run_without_gage()

    print("During the flash crowd on {} (10x load):".format(FLASH_VICTIM))
    print()
    print("{:<24} {:>11} {:>12} {:>14}".format(
        "subscriber", "reservation", "Gage served", "no-QoS served"))
    victims = 0
    for name, grps in sorted(PLANS.items(), key=lambda kv: -kv[1]):
        gage_rate = with_gage[name].served_rate
        raw_rate = without[name]
        marker = " <- flash crowd" if name == FLASH_VICTIM else ""
        print("{:<24} {:>11.0f} {:>12.1f} {:>14.1f}{}".format(
            name, grps, gage_rate, raw_rate, marker))
        if name != FLASH_VICTIM and raw_rate < 0.8 * min(0.92 * grps, gage_rate):
            victims += 1
    print()
    print("Without QoS, {} innocent subscribers lost >20% of their".format(victims))
    print("throughput to the flash crowd; under Gage every reservation held.")


if __name__ == "__main__":
    main()
