"""Stress the guarantee: a flash crowd, a degraded node, and a NIC outage
in one run — and the reservations still hold.

Timeline (packet fidelity, 3 RPNs):

- t=0      steady state: two subscribers inside their reservations,
           one best-effort bulk site;
- t=3      flash crowd: bulk's load ramps 8x in one second;
- t=6      rpn0's CPU degrades to half speed (thermal throttling) and
           the operator updates the node scheduler's capacity view;
- t=9      rpn2's NIC goes down for one second (cable pull) — TCP
           retransmission and the least-load dispatcher ride it out.

Run:  python examples/overload_storm.py
"""

from repro import Environment, GageCluster, Subscriber
from repro.workload import LoadProfile, ProfiledWorkload

DURATION = 15.0


def main():
    env = Environment()
    profiles = {
        "shop.example.com": LoadProfile.constant(60.0),
        "api.example.com": LoadProfile.constant(35.0),
        "bulk.example.com": LoadProfile.flash_crowd(
            base_rate=15.0, peak_rate=120.0, start_s=3.0,
            ramp_s=1.0, hold_s=9.0, decay_s=1.0,
        ),
    }
    workload = ProfiledWorkload(profiles, duration_s=DURATION, seed=7)
    subscribers = [
        Subscriber("shop.example.com", 70, queue_capacity=128),
        Subscriber("api.example.com", 40, queue_capacity=128,
                   delay_target_s=0.5),  # response-time bound extension
        Subscriber("bulk.example.com", 20, queue_capacity=128),
    ]
    cluster = GageCluster(
        env,
        subscribers,
        {name: workload.site_files(name) for name in profiles},
        num_rpns=3,
        fidelity="packet",
        workers_per_site=6,
    )
    cluster.prewarm_caches()
    cluster.load_trace(workload.generate())

    def storm(env):
        yield env.timeout(6.0)
        cluster.machines[0].cpu.speed = 0.5
        # The operator (or a monitoring agent) tells the RDN about the
        # degraded node so least-load dispatch sizes it correctly.
        from repro.core import default_rpn_capacity

        cluster.rdn.node_scheduler.node("rpn0").capacity_per_s = (
            default_rpn_capacity(cpu_speed=0.5)
        )
        print("t= 6.0s  !! rpn0 CPU throttled to half speed (scheduler notified)")
        yield env.timeout(3.0)
        cluster.machines[2].nic.iface.up = False
        print("t= 9.0s  !! rpn2 NIC down (cable pull)")
        yield env.timeout(1.0)
        cluster.machines[2].nic.iface.up = True
        print("t=10.0s  !! rpn2 NIC restored")

    env.process(storm(env))
    print("running {}s packet-fidelity storm ...".format(DURATION))
    cluster.run(DURATION + 3.0)

    print()
    print("service during the storm window [6s, {:.0f}s):".format(DURATION))
    print("{:<20} {:>11} {:>9} {:>9} {:>9}".format(
        "subscriber", "reservation", "offered", "served", "dropped"))
    for report in cluster.all_reports(6.0, DURATION):
        print("{:<20} {:>11.0f} {:>9.1f} {:>9.1f} {:>9.1f}".format(
            report.subscriber.split(".")[0],
            report.reservation_grps,
            report.input_rate,
            report.served_rate,
            report.dropped_rate,
        ))
    stats = cluster.fleet.stats
    print()
    print("clients: {} issued, {} completed, {} failed, mean latency {:.0f}ms".format(
        stats.issued, stats.completed, stats.failed, 1000 * stats.mean_latency_s))
    drops = sum(m.nic.iface.dropped_loss for m in cluster.machines)
    print("frames blackholed during the outage: {}".format(drops))
    print()
    print("shop and api stay at their offered loads through the flash crowd,")
    print("the slow node, and the outage; bulk absorbs what spare remains.")


if __name__ == "__main__":
    main()
