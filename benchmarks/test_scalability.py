"""§4.3 — throughput scalability with the number of RPNs.

Paper: "The throughput grows linearly from about 540 requests/sec to
around 4800 requests/sec with the number of RPNs increased from 1 to 8.
We also measured the throughput each RPN can support without Gage.  It
was 550.5 requests/sec, compared to 540 requests/sec when Gage is in
place ... the throughput penalty because of Gage's QoS guarantee
mechanism is about 1.8%."
"""

from repro.harness import run_scalability

from .conftest import print_banner


def test_scalability_with_rpn_count(benchmark):
    points = benchmark.pedantic(
        lambda: run_scalability(duration_s=6.0), rounds=1, iterations=1
    )
    print_banner("§4.3: throughput vs number of RPNs")
    print("{:>5} {:>12} {:>14} {:>10}".format("RPNs", "Gage (r/s)", "no-Gage (r/s)", "penalty"))
    for p in points:
        print("{:>5} {:>12.0f} {:>14.0f} {:>9.1f}%".format(
            p.num_rpns, p.with_gage_rps, p.without_gage_rps, p.penalty_percent
        ))

    by_count = {p.num_rpns: p for p in points}
    one = by_count[1]
    eight = by_count[8]
    # Single-RPN throughput lands in the paper's regime (~540 r/s).
    assert 450 < one.with_gage_rps < 650
    # Linear scaling: 8 RPNs deliver ~8x one RPN (within 10%).
    assert eight.with_gage_rps > 7.2 * one.with_gage_rps
    assert eight.with_gage_rps < 8.8 * one.with_gage_rps
    # Monotone growth across every cluster size.
    rates = [p.with_gage_rps for p in points]
    assert all(b > a for a, b in zip(rates, rates[1:]))
    # The Gage penalty is small (paper: 1.8% throughput, 3.06% CPU).
    for p in points:
        assert -1.0 < p.penalty_percent < 6.0
    benchmark.extra_info["one_rpn_rps"] = round(one.with_gage_rps)
    benchmark.extra_info["eight_rpn_rps"] = round(eight.with_gage_rps)
    benchmark.extra_info["penalty_percent"] = round(eight.penalty_percent, 2)
