"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper and prints
the paper's numbers next to the measured ones.  Absolute values are not
expected to match (the substrate is a simulator, not the authors'
Celeron/P-III testbed); the *shape* — who wins, by what factor, where
crossovers fall — is the reproduction target, and each benchmark asserts
it.
"""


def print_banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)
