"""Shared helpers for the benchmark suite.

Every benchmark regenerates one table or figure of the paper and prints
the paper's numbers next to the measured ones.  Absolute values are not
expected to match (the substrate is a simulator, not the authors'
Celeron/P-III testbed); the *shape* — who wins, by what factor, where
crossovers fall — is the reproduction target, and each benchmark asserts
it.

Running with ``--benchstore DIR`` additionally serializes each module's
results into ``DIR/BENCH_<suite>.json`` (see
:mod:`repro.harness.benchstore`); CI diffs those against the committed
baselines in ``benchmarks/baselines/``.
"""

import pytest

from repro.harness import benchstore


def print_banner(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def pytest_addoption(parser):
    parser.addoption(
        "--benchstore",
        action="store",
        default=None,
        metavar="DIR",
        help="serialize benchmark results into DIR/BENCH_<suite>.json",
    )


def _suite_name(item) -> str:
    """test_fig3_deviation.py -> 'fig3_deviation'.

    A module may override the derived name by defining a module-level
    ``BENCHSTORE_SUITE`` string (e.g. test_proxy_throughput.py ->
    'proxy').
    """
    override = getattr(item.module, "BENCHSTORE_SUITE", None)
    if override:
        return override
    stem = item.path.stem
    return stem[len("test_"):] if stem.startswith("test_") else stem


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_teardown(item, nextitem):
    yield
    directory = item.config.getoption("--benchstore", default=None)
    if not directory:
        return
    bench = getattr(item, "funcargs", {}).get("benchmark")
    if bench is None or bench.stats is None:
        return
    suites = item.config.stash.setdefault(_BENCHSTORE_KEY, {})
    suites.setdefault(_suite_name(item), []).append(
        benchstore.record_benchmark(bench)
    )


_BENCHSTORE_KEY = pytest.StashKey()


def pytest_sessionfinish(session, exitstatus):
    config = session.config
    directory = config.getoption("--benchstore", default=None)
    if not directory:
        return
    suites = config.stash.get(_BENCHSTORE_KEY, {})
    for suite, records in sorted(suites.items()):
        path = benchstore.write_suite(directory, suite, records)
        print("benchstore: wrote {} ({} benchmarks)".format(path, len(records)))
