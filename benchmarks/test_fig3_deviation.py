"""Figure 3 — deviation from the ideal reservation.

Paper (§4.1, Figure 3): deviation of actual resource usage from the
reservation, for accounting cycles of 50 ms / 100 ms / 500 ms / 2 s,
against averaging intervals of 1-10 s.  Key claims:

- deviation **increases with the accounting cycle** for a fixed interval
  (staler feedback ⇒ less accurate usage observation);
- deviation **decreases with the averaging interval** (short-term jitter
  averages out);
- at (cycle 2 s, interval 1 s) deviation exceeds **100%** — the RDN
  observes usage as "either 0 or around twice the reservation";
- for intervals ≥ 4 s and cycles ≤ 500 ms, deviation stays **under 8%**;
- with a SPECWeb99-derived workload, deviation is **under 5%** for
  intervals ≥ 4 s.
"""

from repro.harness import run_deviation_experiment

from .conftest import print_banner

CYCLES_S = [0.05, 0.1, 0.5, 2.0]
INTERVALS_S = [1.0, 2.0, 4.0, 6.0, 8.0, 10.0]


def test_fig3_deviation_synthetic(benchmark):
    def run_all():
        return {
            cycle: run_deviation_experiment(
                cycle, intervals_s=INTERVALS_S, duration_s=42.0
            )
            for cycle in CYCLES_S
        }

    curves = benchmark.pedantic(run_all, rounds=1, iterations=1)
    print_banner("Figure 3: deviation from ideal reservation (synthetic, 6KB)")
    header = "cycle      " + "".join("{:>8.0f}s".format(i) for i in INTERVALS_S)
    print(header)
    for cycle in CYCLES_S:
        row = curves[cycle].by_interval
        print("{:>7.0f}ms  ".format(cycle * 1000)
              + "".join("{:>8.1f}%".format(row[i]) for i in INTERVALS_S))
    from repro.harness import line_chart

    print()
    print(line_chart(
        {
            "{:.0f}ms".format(cycle * 1000): curves[cycle].series()
            for cycle in CYCLES_S
        },
        title="Figure 3 (measured)",
        x_label="averaging interval (s)",
        y_label="deviation from reservation (%)",
        height=12,
    ))

    # The (2s cycle, 1s interval) blow-up: usage observed as 0 or ~2x.
    assert curves[2.0].by_interval[1.0] > 80.0
    # Deviation decreases with the averaging interval for the 2s cycle.
    assert curves[2.0].by_interval[4.0] < curves[2.0].by_interval[1.0]
    assert curves[2.0].by_interval[10.0] < curves[2.0].by_interval[1.0]
    # Intervals >= 4s with cycles <= 500ms stay under the paper's 8%.
    for cycle in (0.05, 0.1, 0.5):
        for interval in (4.0, 6.0, 8.0, 10.0):
            assert curves[cycle].by_interval[interval] < 8.0
    # The coarse cycle deviates more than the fine ones at short intervals.
    assert curves[2.0].by_interval[1.0] > curves[0.05].by_interval[1.0]
    benchmark.extra_info["dev_2s_1s_percent"] = round(curves[2.0].by_interval[1.0], 1)


def test_fig3_deviation_specweb(benchmark):
    curve = benchmark.pedantic(
        lambda: run_deviation_experiment(
            0.1,
            intervals_s=INTERVALS_S,
            workload="specweb",
            duration_s=42.0,
            reservation_grps=350.0,
            num_subscribers=2,
        ),
        rounds=1,
        iterations=1,
    )
    print_banner("Figure 3 (realistic): SPECWeb99-shaped trace, 100ms cycle")
    for interval, deviation in curve.series():
        print("  interval {:>4.0f}s: {:6.2f}%".format(interval, deviation))
    # Paper: "under realistic web access workloads, the QoS deviation from
    # reservation is less than 5% with the averaging interval 4s or higher".
    for interval in (4.0, 6.0, 8.0, 10.0):
        assert curve.by_interval[interval] < 5.0
    benchmark.extra_info["dev_4s_percent"] = round(curve.by_interval[4.0], 2)
