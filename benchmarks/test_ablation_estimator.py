"""Ablation A2 — per-request usage prediction policy.

§3.4: Gage predicts each dispatched request's usage as "a weighted
average resource consumption of the past requests that belong to the same
queue".  This ablation compares that EWMA scheme against (a) a static
generic-cost assumption and (b) last-sample-only prediction, on a
workload whose requests cost ~3x the generic assumption: the static
policy systematically *over-admits* (balances are charged too little at
dispatch and must be repaid after feedback, producing oscillation), which
shows up as a larger deviation from the reservation.
"""

from repro.core import GageConfig, GageCluster, Subscriber
from repro.core.metrics import deviation_from_reservation_vectors
from repro.sim import Environment
from repro.workload import SyntheticWorkload

from .conftest import print_banner


def run(estimator_policy, duration=30.0):
    env = Environment()
    names = ["site1", "site2"]
    reservation = 150.0
    subs = [Subscriber(n, reservation, queue_capacity=2048) for n in names]
    config = GageConfig(
        estimator_policy=estimator_policy,
        spare_policy="none",
        accounting_cycle_s=0.1,
    )
    # 6 KB pages: one request ~3.07 generics, so the static (generic)
    # prediction underestimates usage threefold.
    workload = SyntheticWorkload(
        rates={n: reservation / 3.07 * 1.5 for n in names},
        duration_s=duration,
        file_bytes=6 * 1024,
    )
    cluster = GageCluster(
        env,
        subs,
        {n: workload.site_files(n) for n in names},
        num_rpns=8,
        config=config,
        fidelity="flow",
    )
    cluster.prewarm_caches()
    cluster.load_trace(workload.generate())
    cluster.run(duration)
    events = {n: [] for n in names}
    for at, name, usage in cluster.rdn.accounting.usage_log:
        events[name].append((at, usage))
    return deviation_from_reservation_vectors(
        events, {n: reservation for n in names}, 2.0, duration, 2.0
    )


def test_estimator_ablation(benchmark):
    deviations = benchmark.pedantic(
        lambda: {policy: run(policy) for policy in ("ewma", "last", "static")},
        rounds=1,
        iterations=1,
    )
    print_banner("Ablation A2: usage predictor (deviation at 2s interval)")
    for policy, deviation in deviations.items():
        print("  {:<8} {:6.2f}%".format(policy, deviation))
    # The paper's EWMA keeps the deviation tight...
    assert deviations["ewma"] < 10.0
    # ...and clearly beats assuming every request is generic.
    assert deviations["static"] > 2.0 * deviations["ewma"]
