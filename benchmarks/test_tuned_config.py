"""The committed tuned configs beat the defaults, and the warm pool
earns its keep.

``configs/tuned_{fig3,proxy}.json`` are produced by ``scripts/tune.py``
(trajectories archived next to them as ``trajectory_*.jsonl``).  These
benchmarks re-evaluate each committed winner against the default
configuration at the exact seed and duration it was tuned with — the
evaluation is deterministic, so the improvement is a reproducible fact,
not a recording — and pin the ISSUE's acceptance criteria:

- fig3: composite objective (deviation + p95 + underutilization)
  improves by ≥ 10%;
- proxy: p95 improves while guarantee deviation gets no worse;
- warm-pool ``ParallelSweep`` delivers ≥ 1.5× sweep throughput vs a
  fresh pool per sweep on a 100-point grid of short simulations.
"""

import json
import random
import time
from pathlib import Path

from repro.harness.parallel import ParallelSweep, WarmPool
from repro.harness.search import Evaluator

from .conftest import print_banner

BENCHSTORE_SUITE = "tuned"

CONFIG_DIR = Path(__file__).resolve().parents[1] / "configs"


def load_tuned(name):
    with open(CONFIG_DIR / name) as handle:
        payload = json.load(handle)
    assert payload["schema"] == "repro.tuned/1"
    return payload


def reevaluate(tuned):
    """(default metrics, tuned metrics) at the tuning seed/duration."""
    evaluator = Evaluator(
        tuned["suite"], tuned["duration_s"], base_seed=tuned["seed"], processes=0
    )
    return evaluator.evaluate([{}, tuned["params"]])


def composite(weights, metrics):
    w_dev, w_p95, w_under = weights
    return (
        w_dev * metrics["deviation_pct"]
        + w_p95 * metrics["p95_ms"]
        + w_under * metrics["underutil_pct"]
    )


def print_comparison(title, default, tuned_metrics):
    print_banner(title)
    print("  {:<18} {:>12} {:>12}".format("metric", "default", "tuned"))
    for key in ("deviation_pct", "p95_ms", "underutil_pct"):
        print(
            "  {:<18} {:>12.3f} {:>12.3f}".format(key, default[key], tuned_metrics[key])
        )


def test_fig3_tuned_beats_defaults(benchmark):
    tuned = load_tuned("tuned_fig3.json")
    default_metrics, tuned_metrics = benchmark.pedantic(
        lambda: reevaluate(tuned), rounds=1, iterations=1
    )
    print_comparison("Tuned fig3 config vs defaults", default_metrics, tuned_metrics)
    base = composite(tuned["weights"], default_metrics)
    best = composite(tuned["weights"], tuned_metrics)
    improvement = 100.0 * (1.0 - best / base)
    print(
        "  composite objective: {:.3f} -> {:.3f} ({:+.1f}%)".format(
            base, best, -improvement
        )
    )
    for name, value in sorted(tuned["params"].items()):
        print("    {} = {!r}".format(name, value))

    # The evaluation is deterministic: re-running reproduces what the
    # search recorded (the committed file is a checkable claim).
    assert best == composite(tuned["weights"], tuned["metrics"])
    # ISSUE acceptance: >= 10% composite improvement on the fig3 suite.
    assert improvement >= 10.0, (
        "tuned fig3 config improves the composite by only {:.1f}%".format(improvement)
    )
    benchmark.extra_info["objective_default"] = round(base, 3)
    benchmark.extra_info["objective_tuned"] = round(best, 3)
    benchmark.extra_info["improvement_pct"] = round(improvement, 1)


def test_proxy_tuned_tail(benchmark):
    tuned = load_tuned("tuned_proxy.json")
    default_metrics, tuned_metrics = benchmark.pedantic(
        lambda: reevaluate(tuned), rounds=1, iterations=1
    )
    print_comparison(
        "Tuned proxy config vs defaults (degraded-node chaos)",
        default_metrics,
        tuned_metrics,
    )
    for name, value in sorted(tuned["params"].items()):
        print("    {} = {!r}".format(name, value))

    assert composite(tuned["weights"], tuned_metrics) == composite(
        tuned["weights"], tuned["metrics"]
    )
    # ISSUE acceptance: p95 improves, guarantee deviation no worse.
    assert tuned_metrics["p95_ms"] < default_metrics["p95_ms"]
    assert tuned_metrics["deviation_pct"] <= default_metrics["deviation_pct"]
    benchmark.extra_info["p95_default_ms"] = round(default_metrics["p95_ms"], 2)
    benchmark.extra_info["p95_tuned_ms"] = round(tuned_metrics["p95_ms"], 2)
    benchmark.extra_info["dev_default_pct"] = round(
        default_metrics["deviation_pct"], 3
    )
    benchmark.extra_info["dev_tuned_pct"] = round(tuned_metrics["deviation_pct"], 3)


# -- warm pool vs fork-per-sweep -------------------------------------------


def short_sim(rate, seed):
    """A few milliseconds of real event-loop work (pool-picklable)."""
    from repro.sim import Environment

    env = Environment()
    rng = random.Random(seed)
    count = [0]

    def tick():
        count[0] += 1
        if count[0] < 2000:
            env.call_later(rng.expovariate(rate), tick)

    env.call_later(0.0, tick)
    env.run(until=1e9)
    return count[0]


SWEEPS = 25
RATES = [10.0, 20.0, 40.0, 80.0]  # 4 points x 25 sweeps = a 100-point grid


def run_fresh():
    for index in range(SWEEPS):
        ParallelSweep(short_sim, processes=1, base_seed=index, rate=RATES).run()


def run_warm(pool):
    for index in range(SWEEPS):
        ParallelSweep(short_sim, pool=pool, base_seed=index, rate=RATES).run()


def test_warm_pool_sweep_throughput(benchmark):
    # Fresh pool per sweep: fork + teardown 25 times.
    start = time.perf_counter()
    run_fresh()
    fresh_s = time.perf_counter() - start

    # Warm pool: fork once, reuse across all 25 sweeps.  The first run
    # inside the benchmark pays the single fork, as a real caller would.
    with WarmPool(processes=1) as pool:
        start = time.perf_counter()
        benchmark.pedantic(lambda: run_warm(pool), rounds=1, iterations=1)
        warm_s = time.perf_counter() - start

    speedup = fresh_s / warm_s
    print_banner("Warm-pool ParallelSweep vs fork-per-sweep")
    print(
        "  {} sweeps x {} points: fresh {:.3f}s, warm {:.3f}s -> {:.2f}x".format(
            SWEEPS, len(RATES), fresh_s, warm_s, speedup
        )
    )
    # ISSUE acceptance: >= 1.5x sweep throughput on the 100-point grid.
    assert speedup >= 1.5, "warm pool only {:.2f}x faster".format(speedup)
    benchmark.extra_info["perf_fresh_s"] = round(fresh_s, 3)
    benchmark.extra_info["perf_warm_s"] = round(warm_s, 3)
    benchmark.extra_info["perf_warm_speedup"] = round(speedup, 2)
