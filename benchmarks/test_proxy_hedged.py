"""BENCH_proxy_hedged — tail-latency hedging under heavy-tailed backends.

Two backends serve the same site, each adding a seeded Pareto-distributed
extra delay to every response — the heavy tail one slow replica
contributes in a real cluster.  The same closed-loop workload runs twice:
with ``hedge_policy="off"`` (the paper-fidelity default) and with the
fixed-delay hedging policy.  Hedging must cut p99 by at least
``MIN_P99_RATIO`` while the credit ledger stays exactly conserved —
tail-latency warfare cannot be paid for with broken guarantees.

The guarantee side is then checked in simulation: a fig3-style deviation
run with hedging firing thousands of clones must stay inside the paper's
8% deviation bound at the 4 s averaging interval.

Gating: the deviation figure and the constants are fixed-seed and gated
tight; the p99 numbers are machine-dependent and exported as ``perf_``
(gated at the forgiving timing tolerance).  The ≥``MIN_P99_RATIO``
acceptance itself is asserted in-benchmark.
"""

import asyncio
import random

from repro.core import GageConfig, Subscriber
from repro.harness import run_deviation_experiment
from repro.harness.loadgen import closed_loop
from repro.proxy import BackendServer, GageProxy

from .conftest import print_banner

#: Serialized as BENCH_proxy_hedged.json regardless of the filename.
BENCHSTORE_SUITE = "proxy_hedged"

SITE = "bench.example"
SITES = {SITE: {"/index.html": 2048}}

#: Closed-loop client population and per-round request budget.
CONCURRENCY = 8
REQUESTS = 600

#: Pareto tail of the per-request backend delay (seconds).
TAIL_SCALE_S = 0.002
TAIL_ALPHA = 1.05
TAIL_CAP_S = 0.6

#: Clone a request whose response head is this late.
HEDGE_DELAY_S = 0.02

#: Hedging must cut p99 at least this much (the ISSUE acceptance bar).
MIN_P99_RATIO = 2.0

#: The paper's Figure-3 bound at the 4 s averaging interval: hedging on
#: must not push deviation past what §4.1 allows for 100 ms cycles.
MAX_HEDGED_DEVIATION_PCT = 8.0


def pareto_delays(seed, count=211):
    """A fixed, seeded cycle of heavy-tailed delays (seconds)."""
    rng = random.Random(seed)
    return [
        min(TAIL_CAP_S, TAIL_SCALE_S * (rng.random() ** (-1.0 / TAIL_ALPHA) - 1.0))
        for _ in range(count)
    ]


def tail_fn(seed):
    """An ``extra_delay_fn`` cycling the seeded delay sequence, so both
    the hedged and unhedged rounds face the same offered tail."""
    delays = pareto_delays(seed)
    state = {"i": 0}

    def fn(host, path):
        delay = delays[state["i"] % len(delays)]
        state["i"] += 1
        return delay

    return fn


def _round(hedge_policy):
    """One closed-loop round against two heavy-tailed backends."""

    async def go():
        backends, addrs = [], {}
        for index, seed in enumerate((0xA1, 0xB2)):
            backend = BackendServer(SITES, time_scale=0.0, extra_delay_fn=tail_fn(seed))
            port = await backend.start()
            backends.append(backend)
            addrs["backend{}".format(index)] = ("127.0.0.1", port)
        config = GageConfig(
            hedge_policy=hedge_policy,
            hedge_delay_s=HEDGE_DELAY_S,
            scheduling_cycle_s=0.002,
            accounting_cycle_s=0.05,
            dispatch_window_s=60.0,
            proxy_failure_threshold=1000,
        )
        proxy = GageProxy(
            [Subscriber(SITE, 100_000.0, queue_capacity=4096)], addrs, config=config
        )
        port = await proxy.start()
        try:
            result = await closed_loop(
                "127.0.0.1",
                port,
                site=SITE,
                concurrency=CONCURRENCY,
                total_requests=REQUESTS,
                keep_alive=True,
            )
            await asyncio.sleep(0.3)  # let loser drains settle the books
            stats = proxy.stats
            delta = proxy.accounting.conservation_delta()
        finally:
            await proxy.stop()
            for backend in backends:
                await backend.stop()
        return result, stats, delta

    return asyncio.run(go())


def test_hedging_cuts_the_tail(benchmark):
    """600 keep-alive requests, heavy-tailed backends, hedging off vs on."""
    unhedged, stats_off, delta_off = _round("off")

    outcome = {}

    def one_round():
        outcome["round"] = _round("fixed")

    benchmark.pedantic(one_round, rounds=3, warmup_rounds=1)
    hedged, stats_on, delta_on = outcome["round"]

    p99_off = unhedged.latency_s(0.99)
    p99_on = hedged.latency_s(0.99)
    p999_off = unhedged.latency_s(0.999)
    p999_on = hedged.latency_s(0.999)
    ratio = p99_off / p99_on if p99_on > 0 else 0.0

    print_banner("BENCH_proxy_hedged: Pareto tail, hedge delay {:.0f} ms".format(
        HEDGE_DELAY_S * 1e3
    ))
    print(
        "  p99 {:.1f} ms -> {:.1f} ms ({:.1f}x)   p999 {:.1f} ms -> {:.1f} ms   "
        "hedges fired {} won {}".format(
            p99_off * 1e3,
            p99_on * 1e3,
            ratio,
            p999_off * 1e3,
            p999_on * 1e3,
            stats_on.hedges_fired,
            stats_on.hedges_won,
        )
    )

    # Every request answered exactly once, in both modes.
    for result, stats in ((unhedged, stats_off), (hedged, stats_on)):
        assert result.errors == 0
        assert result.completed == REQUESTS
        assert len(result.latencies_s) == REQUESTS
        assert stats.completed == REQUESTS
    assert stats_off.hedges_fired == 0
    assert stats_on.hedges_fired > 0
    assert stats_on.hedges_cancelled == stats_on.hedges_fired
    # Conservation: cancellations refund, so the ledger balances exactly.
    for delta in (delta_off, delta_on):
        assert abs(delta.cpu_s) < 1e-9
        assert abs(delta.disk_s) < 1e-9
        assert abs(delta.net_bytes) < 1e-3
    assert ratio >= MIN_P99_RATIO, (
        "hedging cut p99 only {:.2f}x ({:.1f} ms -> {:.1f} ms), "
        "need >= {}x".format(ratio, p99_off * 1e3, p99_on * 1e3, MIN_P99_RATIO)
    )

    # Gated constants (exact-seed workload shape) and machine-dependent
    # perf figures (gated at the forgiving timing tolerance).
    benchmark.extra_info["requests"] = REQUESTS
    benchmark.extra_info["concurrency"] = CONCURRENCY
    benchmark.extra_info["hedge_delay_ms"] = HEDGE_DELAY_S * 1e3
    benchmark.extra_info["perf_p99_unhedged_ms"] = round(p99_off * 1e3, 3)
    benchmark.extra_info["perf_p99_hedged_ms"] = round(p99_on * 1e3, 3)
    benchmark.extra_info["perf_p99_ratio"] = round(ratio, 2)
    benchmark.extra_info["info_p999_unhedged_ms"] = "{:.3f}".format(p999_off * 1e3)
    benchmark.extra_info["info_p999_hedged_ms"] = "{:.3f}".format(p999_on * 1e3)
    benchmark.extra_info["info_hedges_fired"] = str(stats_on.hedges_fired)
    benchmark.extra_info["info_hedges_won"] = str(stats_on.hedges_won)


def test_hedged_deviation_stays_in_tolerance(benchmark):
    """Fig3-style guarantee check with hedging firing under saturation.

    A 5 ms hedge delay against saturated queues makes the cloning path
    fire thousands of times (verified via the registry counter), yet the
    deviation from reservation at the 4 s averaging interval must stay
    inside the paper's 8% bound for 100 ms accounting cycles.
    """
    from repro.telemetry.registry import get_registry

    fired_counter = get_registry().counter("repro.core.hedge.fired")
    fired_before = fired_counter.value

    curve = benchmark.pedantic(
        lambda: run_deviation_experiment(
            0.1,
            intervals_s=[4.0, 10.0],
            duration_s=42.0,
            hedge_policy="fixed",
            hedge_delay_s=0.005,
        ),
        rounds=1,
        iterations=1,
    )
    fired = fired_counter.value - fired_before

    print_banner("BENCH_proxy_hedged: fig3 deviation with hedging on")
    for interval, deviation in curve.series():
        print("  interval {:>4.0f}s: {:6.2f}%".format(interval, deviation))
    print("  hedge clones fired: {:.0f}".format(fired))

    assert fired > 1000  # the hedging path was really exercised
    assert curve.by_interval[4.0] < MAX_HEDGED_DEVIATION_PCT
    assert curve.by_interval[10.0] < MAX_HEDGED_DEVIATION_PCT
    benchmark.extra_info["dev_4s_hedged_percent"] = round(curve.by_interval[4.0], 2)
    benchmark.extra_info["dev_10s_hedged_percent"] = round(curve.by_interval[10.0], 2)
