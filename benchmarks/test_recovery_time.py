"""Recovery dynamics — how fast the cluster reacts to a node death.

The paper argues (§3.7) that the accounting stream doubles as a failure
detector: a node that misses K accounting cycles is declared dead and
its share is redistributed through the spare pool.  This benchmark
measures the two latencies that story promises:

* **time-to-detect** — crash until the RDN records the death, bounded
  by (K+1) accounting cycles plus one scheduler cycle of slack;
* **time-to-restore-isolation** — crash until the reserved subscribers
  are again served at their offered rates out of the surviving
  capacity (the spare subscriber absorbs the entire capacity loss).

Measured with the harness :class:`Recorder` sampling per-subscriber
completions and the dead node's dispatch counter every 100 ms.
"""

from repro.core import GageCluster, GageConfig, Subscriber
from repro.faults import FaultSchedule
from repro.harness import Recorder, format_table
from repro.sim import Environment
from repro.workload import SyntheticWorkload

from .conftest import print_banner

CRASH_AT = 4.0
RESTART_AT = 8.0
K = 3
CYCLE = 0.100
#: Sliding window for the restored-rate criterion.
WINDOW_S = 1.0
RATES = {"a": 115.0, "b": 85.0, "c": 200.0}


class _HostCompletions:
    """Gauge: cumulative completions of one subscriber's site."""

    def __init__(self, cluster, host):
        self.cluster = cluster
        self.host = host
        self._index = 0
        self._count = 0

    def __call__(self):
        completions = self.cluster.completions
        while self._index < len(completions):
            if completions[self._index][1] == self.host:
                self._count += 1
            self._index += 1
        return float(self._count)


def run_recovery():
    env = Environment()
    subs = [
        Subscriber("a", reservation_grps=120, queue_capacity=256),
        Subscriber("b", reservation_grps=90, queue_capacity=256),
        Subscriber("c", reservation_grps=60, queue_capacity=256),
    ]
    workload = SyntheticWorkload(rates=RATES, duration_s=12.0, file_bytes=2000)
    cluster = GageCluster(
        env,
        subs,
        {name: workload.site_files(name) for name in RATES},
        num_rpns=4,
        fidelity="flow",
        config=GageConfig(heartbeat_miss_limit=K, accounting_cycle_s=CYCLE),
    )
    cluster.load_trace(workload.generate())
    cluster.install_faults(FaultSchedule.crash_restart("rpn3", CRASH_AT, RESTART_AT - CRASH_AT))

    recorder = Recorder(env, period_s=0.1)
    recorder.add_gauge("rpn3_up", lambda: 1.0 if cluster.rdn.node_scheduler.node("rpn3").up else 0.0)
    recorder.add_gauge("rpn3_dispatched", lambda: float(cluster.rdn.node_scheduler.node("rpn3").dispatched))
    for host in ("a", "b"):
        recorder.add_gauge("completed_{}".format(host), _HostCompletions(cluster, host))
    cluster.run(12.0)
    return cluster, recorder


def _windowed_rate(series, t, window_s):
    """Completions per second over (t - window_s, t] of a cumulative series."""
    before = [v for s, v in series if s <= t - window_s]
    at = [v for s, v in series if s <= t]
    if not before or not at:
        return 0.0
    return (at[-1] - before[-1]) / window_s


def time_to_restore_isolation(recorder):
    """First post-crash instant when a and b are back at offered rate."""
    samples = [t for t, _v in recorder.series("completed_a")]
    for t in samples:
        if t < CRASH_AT + WINDOW_S:
            continue
        rate_a = _windowed_rate(recorder.series("completed_a"), t, WINDOW_S)
        rate_b = _windowed_rate(recorder.series("completed_b"), t, WINDOW_S)
        if rate_a >= 0.85 * RATES["a"] and rate_b >= 0.85 * RATES["b"]:
            return t - CRASH_AT
    return None


def test_recovery_time(benchmark):
    cluster, recorder = benchmark.pedantic(run_recovery, rounds=1, iterations=1)

    detect_s = cluster.rdn.failures.detection_latency_s(CRASH_AT, "rpn3")
    restore_s = time_to_restore_isolation(recorder)

    print_banner("Recovery time: node death detection and isolation restore")
    print(format_table(
        ["Metric", "Seconds", "Bound"],
        [
            ("time-to-detect", round(detect_s, 3), "(K+1) cycles = {:.1f}".format((K + 1) * CYCLE)),
            ("time-to-restore-isolation", round(restore_s, 3), "<= 2.0"),
        ],
        "Measured (K={}, cycle={} ms):".format(K, int(CYCLE * 1000)),
    ))

    # Detection within K+1 accounting cycles (+1 scheduler cycle slack).
    assert detect_s is not None
    assert detect_s <= (K + 1) * CYCLE + CYCLE
    # Reserved subscribers are whole again within two seconds of the crash.
    assert restore_s is not None
    assert restore_s <= 2.0
    # Isolation held: not one dispatch to the dead node between detection
    # and restart.
    dispatched = recorder.series("rpn3_dispatched")
    detect_at = CRASH_AT + detect_s
    frozen = [v for t, v in dispatched if detect_at < t < RESTART_AT]
    assert frozen and len(set(frozen)) == 1
    # And the node really was marked down for that whole stretch.
    down_flags = [v for t, v in recorder.series("rpn3_up") if detect_at + 0.1 < t < RESTART_AT]
    assert down_flags and set(down_flags) == {0.0}

    benchmark.extra_info["time_to_detect_ms"] = round(detect_s * 1000.0, 1)
    benchmark.extra_info["time_to_restore_isolation_s"] = round(restore_s, 3)
