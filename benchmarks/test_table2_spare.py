"""Table 2 — spare resource allocation proportional to reservations.

Paper (ICDCS'03, Table 2):

    Subscriber  Reservation  Input   Served  Spare
    site1       250          424.6   422.2   172.2
    site2       200          364.5   342.4   142.1

Both subscribers are overloaded; the residual cluster capacity is split
between them roughly in proportion to their reservations
(172.2/142.1 ≈ 1.21 ≈ 250/200) — "higher reservation gets larger share
of spare resource", not "higher input load gets larger share".

Our cluster delivers ≈800 GRPS where the paper's delivered ≈765, so the
offered loads are scaled so both sites' excess demand exceeds their
proportional spare share (otherwise the split is invisible).
"""

from repro.harness import format_table, run_spare_allocation

from .conftest import print_banner

PAPER_ROWS = [
    ("site1", 250, 424.6, 422.2, 172.2),
    ("site2", 200, 364.5, 342.4, 142.1),
]


def test_table2_spare_allocation(benchmark):
    reports = benchmark.pedantic(
        lambda: run_spare_allocation(duration_s=12.0), rounds=1, iterations=1
    )
    print_banner("Table 2: spare resource allocation (policy: by reservation)")
    print(format_table(
        ["Subscriber", "Reservation", "Input", "Served", "Spare"],
        PAPER_ROWS,
        "Paper:",
    ))
    print()
    rows = [
        (r.subscriber, r.reservation_grps, r.input_rate, r.served_rate, r.spare_rate)
        for r in reports
    ]
    print(format_table(
        ["Subscriber", "Reservation", "Input", "Served", "Spare"], rows, "Measured:"
    ))

    by_name = {r.subscriber: r for r in reports}
    hi, lo = by_name["site1"], by_name["site2"]
    # Both overloaded sites get their reservation plus spare...
    assert hi.served_rate > hi.reservation_grps
    assert lo.served_rate > lo.reservation_grps
    # ...neither is fully served...
    assert hi.served_rate < hi.input_rate
    assert lo.served_rate < lo.input_rate
    # ...and the spare split tracks the reservation ratio (1.25), not the
    # input-load ratio.
    ratio = hi.spare_rate / lo.spare_rate
    print("\nspare ratio measured: {:.3f} (reservation ratio 1.25, paper 1.21)".format(ratio))
    assert 1.05 < ratio < 1.45
    benchmark.extra_info["spare_ratio"] = round(ratio, 3)
