"""Ablation A5 — accounting-message phase alignment.

Figure 3's worst case (deviation >100% at a 2 s cycle / 1 s interval)
exists because every RPN's usage report lands in the same instant: the
RDN observes usage "either 0 or around twice the reservation".  If the
agents instead tick out of phase (staggered across the cycle), the same
total information arrives smeared over time and the observed deviation
collapses — an implementation detail the paper leaves implicit, surfaced
here as an ablation.
"""

from repro.core import GageConfig, GageCluster, Subscriber
from repro.core.metrics import deviation_from_reservation_vectors
from repro.sim import Environment
from repro.workload import SyntheticWorkload

from .conftest import print_banner


def run(stagger, duration=30.0):
    env = Environment()
    names = ["site1", "site2", "site3", "site4"]
    reservation = 150.0
    subs = [Subscriber(n, reservation, queue_capacity=2048) for n in names]
    config = GageConfig(accounting_cycle_s=2.0, spare_policy="none")
    workload = SyntheticWorkload(
        rates={n: reservation / 3.07 * 1.5 for n in names},
        duration_s=duration,
        file_bytes=6 * 1024,
    )
    cluster = GageCluster(
        env,
        subs,
        {n: workload.site_files(n) for n in names},
        num_rpns=8,
        config=config,
        fidelity="flow",
        stagger_accounting=stagger,
    )
    cluster.prewarm_caches()
    cluster.load_trace(workload.generate())
    cluster.run(duration)
    events = {n: [] for n in names}
    for at, name, usage in cluster.rdn.accounting.usage_log:
        events[name].append((at, usage))
    return deviation_from_reservation_vectors(
        events, {n: reservation for n in names}, 2.0, duration, 1.0
    )


def test_stagger_ablation(benchmark):
    deviations = benchmark.pedantic(
        lambda: {"synchronized": run(False), "staggered": run(True)},
        rounds=1,
        iterations=1,
    )
    print_banner("Ablation A5: accounting phase (2s cycle, 1s interval)")
    for mode, deviation in deviations.items():
        print("  {:<13} {:7.1f}%".format(mode, deviation))
    # Synchronized reporting reproduces the paper's >100% blow-up...
    assert deviations["synchronized"] > 80.0
    # ...staggering the same messages collapses the observed deviation.
    assert deviations["staggered"] < 0.5 * deviations["synchronized"]
