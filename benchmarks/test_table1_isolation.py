"""Table 1 — QoS guarantee under excessive input loads.

Paper (ICDCS'03, Table 1):

    Subscriber  Reservation  Input   Served  Dropped
    site1       250          259.4   259.4   0.0
    site2       150          161.1   161.1   0.0
    site3       50           390.3   365.4   24.9

site1 and site2 are offered roughly their reservations and must be fully
served; site3 is offered ~8x its reservation, absorbs the cluster's spare
capacity, and drops the remainder.
"""

from repro.harness import format_table, run_isolation

from .conftest import print_banner

PAPER_ROWS = [
    ("site1", 250, 259.4, 259.4, 0.0),
    ("site2", 150, 161.1, 161.1, 0.0),
    ("site3", 50, 390.3, 365.4, 24.9),
]


def test_table1_isolation(benchmark):
    reports = benchmark.pedantic(
        lambda: run_isolation(duration_s=12.0), rounds=1, iterations=1
    )
    print_banner("Table 1: performance isolation under excessive input load")
    print(format_table(
        ["Subscriber", "Reservation", "Input", "Served", "Dropped"],
        PAPER_ROWS,
        "Paper:",
    ))
    print()
    print(format_table(
        ["Subscriber", "Reservation", "Input", "Served", "Dropped"],
        [r.row() for r in reports],
        "Measured:",
    ))

    by_name = {r.subscriber: r for r in reports}
    # Shape assertions: reserved sites are fully served...
    assert by_name["site1"].served_rate > 0.97 * by_name["site1"].input_rate
    assert by_name["site2"].served_rate > 0.97 * by_name["site2"].input_rate
    assert by_name["site1"].dropped_rate < 1.0
    assert by_name["site2"].dropped_rate < 1.0
    # ...site3 is served far beyond its reservation (it gets the spare)...
    assert by_name["site3"].served_rate > 4 * 50.0
    # ...but not everything: the excess is dropped.
    assert by_name["site3"].dropped_rate > 5.0
    assert by_name["site3"].served_rate < by_name["site3"].input_rate

    benchmark.extra_info["site3_served_rps"] = round(by_name["site3"].served_rate, 1)
    benchmark.extra_info["site3_dropped_rps"] = round(by_name["site3"].dropped_rate, 1)
