"""Table 3 — per-connection and per-packet Gage overheads.

Paper (ICDCS'03, Table 3), measured on a 450 MHz P-III / 600 MHz Celeron:

    Connection setup (us): RDN 29.3, RPN 27.2
    Packet classification (us): 3.0
    Packet forwarding (us): 7.0
    Remapping (us): incoming 1.3, outgoing 4.6

Here the same six code paths are microbenchmarked in this implementation
(pure Python, so absolute numbers differ); the shape assertion is the
cost ordering the paper's architecture relies on: per-packet operations
(classification, forwarding, remapping) are an order of magnitude
cheaper than per-connection setup.
"""

import itertools

import pytest

from repro.core import GageCluster, Subscriber
from repro.core.control import DispatchOrder
from repro.net import IPAddress, MACAddress, Packet, TCPFlags
from repro.net.conn import Quadruple
from repro.sim import Environment
from repro.workload import WebRequest

from .conftest import print_banner

PAPER_US = {
    "rdn_connection_setup": 29.3,
    "rpn_connection_setup": 27.2,
    "classification": 3.0,
    "forwarding": 7.0,
    "remap_incoming": 1.3,
    "remap_outgoing": 4.6,
}

#: Collected (name -> measured microseconds) across the module's benches,
#: printed and shape-checked by the final test.
MEASURED_US = {}


def small_cluster():
    env = Environment()
    subs = [Subscriber("site1", 100)]
    cluster = GageCluster(
        env, subs, {"site1": {"index.html": 2000}}, num_rpns=1, fidelity="packet"
    )
    env.run(until=0.001)  # let construction-time processes settle
    return cluster


def client_packet(port, flags=TCPFlags.SYN, payload=None, payload_len=0, seq=1000):
    return Packet(
        src_mac=MACAddress("02:00:00:00:00:01"),
        dst_mac=MACAddress("02:00:00:00:00:64"),
        src_ip=IPAddress("10.0.0.1"),
        dst_ip=IPAddress("10.0.0.100"),
        src_port=port,
        dst_port=80,
        seq=seq,
        flags=flags,
        payload=payload,
        payload_len=payload_len,
    )


def record(benchmark, name):
    MEASURED_US[name] = benchmark.stats["mean"] * 1e6
    benchmark.extra_info["paper_us"] = PAPER_US[name]


def test_rdn_connection_setup(benchmark):
    """RDN side: classify SYN + emulate the first-leg handshake."""
    cluster = small_cluster()
    ports = itertools.count(2000)

    def setup_one():
        cluster.rdn.handle_packet(client_packet(next(ports) % 60000 + 1024))

    benchmark(setup_one)
    record(benchmark, "rdn_connection_setup")


def test_rpn_connection_setup(benchmark):
    """RPN side: dispatch order -> local SYN/SYN-ACK/ACK + URL replay."""
    cluster = small_cluster()
    lsm = cluster.lsms[0]
    ports = itertools.count(2000)

    def setup_one():
        port = next(ports) % 60000 + 1024
        order = DispatchOrder(
            subscriber="site1",
            request=WebRequest("site1", "/index.html", 2000),
            request_bytes=200,
            quad=Quadruple(IPAddress("10.0.0.1"), port, IPAddress("10.0.0.100"), 80),
            client_isn=1000,
            rdn_isn=90000,
            client_mac=MACAddress("02:00:00:00:00:01"),
        )
        lsm._start_second_leg(order)

    benchmark(setup_one)
    record(benchmark, "rpn_connection_setup")


def test_packet_classification(benchmark):
    cluster = small_cluster()
    packet = client_packet(
        3000,
        flags=TCPFlags.ACK | TCPFlags.PSH,
        payload=WebRequest("site1", "/index.html", 2000),
        payload_len=200,
    )
    benchmark(cluster.rdn.classifier.classify, packet)
    record(benchmark, "classification")


def test_packet_forwarding(benchmark):
    """Connection-table lookup + MAC rewrite + transmit queueing."""
    cluster = small_cluster()
    rpn_mac = cluster.lsms[0].rpn_mac
    quad = Quadruple(IPAddress("10.0.0.1"), 4000, IPAddress("10.0.0.100"), 80)
    cluster.rdn.conntable.insert(quad, "rpn0", rpn_mac)
    packet = client_packet(4000, flags=TCPFlags.ACK, seq=1177)

    benchmark(cluster.rdn.handle_packet, packet)
    record(benchmark, "forwarding")


def _spliced_rule():
    """Drive one request far enough to have a live splice rule."""
    from repro.workload import SyntheticWorkload

    env = Environment()
    subs = [Subscriber("site1", 100)]
    workload = SyntheticWorkload(rates={"site1": 5.0}, duration_s=0.5, file_bytes=2000)
    cluster = GageCluster(
        env, subs, {"site1": workload.site_files("site1")},
        num_rpns=1, fidelity="packet",
    )
    cluster.load_trace(workload.generate())
    cluster.run(1.0)
    lsm = cluster.lsms[0]
    assert lsm._rules_in, "no splice established"
    return next(iter(lsm._rules_in.values()))


def test_remap_incoming(benchmark):
    rule = _spliced_rule()
    packet = client_packet(
        rule.client_quad.src_port, flags=TCPFlags.ACK, seq=1200
    )
    benchmark(rule.remap_incoming, packet)
    record(benchmark, "remap_incoming")


def test_remap_outgoing(benchmark):
    rule = _spliced_rule()
    packet = Packet(
        src_mac=rule.rpn_mac,
        dst_mac=rule.client_mac,
        src_ip=rule.rpn_ip,
        dst_ip=rule.client_quad.src_ip,
        src_port=80,
        dst_port=rule.client_quad.src_port,
        seq=5000,
        ack=1200,
        flags=TCPFlags.ACK,
        payload_len=1460,
    )
    benchmark(rule.remap_outgoing, packet)
    record(benchmark, "remap_outgoing")


def test_table3_summary(benchmark):
    """Print the paper-vs-measured table and assert the cost ordering."""
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    if len(MEASURED_US) < 6:
        pytest.skip("run the whole module to collect all six measurements")
    print_banner("Table 3: per-connection and per-packet overheads (us)")
    print("{:<24} {:>10} {:>12}".format("operation", "paper", "measured"))
    for name, paper in PAPER_US.items():
        print("{:<24} {:>10.1f} {:>12.2f}".format(name, paper, MEASURED_US[name]))
    # Shape: remapping is the cheapest path, connection setup the dearest.
    assert MEASURED_US["remap_incoming"] < MEASURED_US["rpn_connection_setup"]
    assert MEASURED_US["remap_outgoing"] < MEASURED_US["rpn_connection_setup"]
    assert MEASURED_US["classification"] < MEASURED_US["rdn_connection_setup"]
