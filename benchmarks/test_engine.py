"""BENCH_engine — microbenchmarks of the refactored hot paths.

Unlike the table/figure suites, this one has no paper row to reproduce:
it pins the three per-event costs the hot-path rearchitecture targets —
raw event dispatch, per-packet forwarding, and one credit-scheduler
cycle — so a future change that regresses the engine shows up directly
rather than smeared across a 40-second figure run.

The suite document depends on the build: a pure-Python run writes
``BENCH_engine.json``, a run with the mypyc extensions active writes
``BENCH_engine_compiled.json``.  CI runs both on the same runner and
gates the compiled/pure speedup with ``scripts/bench_speedup.py``.
"""

from repro import _compiled
from repro.core.accounting import RDNAccounting
from repro.core.config import GageConfig
from repro.core.grps import ResourceVector, grps
from repro.core.node_scheduler import NodeScheduler
from repro.core.queues import SubscriberQueues
from repro.core.scheduler import RequestScheduler
from repro.core.subscriber import Subscriber
from repro.net import IPAddress, TCPFlags
from repro.net.conn import Quadruple
from repro.sim import Environment

from .test_table3_overhead import client_packet, small_cluster

#: Events per dispatch-loop benchmark round; large enough that the
#: per-round Environment setup is noise.
DISPATCH_CHAIN = 10_000

#: Which suite document this module writes (see module docstring).
BENCHSTORE_SUITE = "engine_compiled" if _compiled.is_active() else "engine"

#: Timing drift on runners below this core count is advisory, not
#: gating (``bench_compare`` CONFIG semantics): a busy 1-core box
#: time-slices the benchmark against the harness itself.
MIN_CORES = 2


def _stamp(benchmark):
    benchmark.extra_info["build"] = _compiled.build_kind()
    benchmark.extra_info["min_cores"] = MIN_CORES


def test_event_dispatch(benchmark):
    """A chain of scheduled callbacks: pop + invoke is the whole cost."""

    def drain_chain():
        env = Environment()
        remaining = [DISPATCH_CHAIN]

        def tick():
            remaining[0] -= 1
            if remaining[0]:
                env.call_later(0.001, tick)

        env.call_later(0.0, tick)
        env.run()
        return remaining[0]

    assert benchmark(drain_chain) == 0
    _stamp(benchmark)


def test_packet_forward(benchmark):
    """RDN fast path: conntable hit -> header rewrite -> transmit."""
    cluster = small_cluster()
    rpn_mac = cluster.lsms[0].rpn_mac
    quad = Quadruple(IPAddress("10.0.0.1"), 4500, IPAddress("10.0.0.100"), 80)
    cluster.rdn.conntable.insert(quad, "rpn0", rpn_mac)
    packet = client_packet(4500, flags=TCPFlags.ACK, seq=4242)

    benchmark(cluster.rdn.handle_packet, packet)
    assert cluster.rdn.ops.forwards > 0
    _stamp(benchmark)


def test_scheduler_cycle(benchmark):
    """One §3.4 credit cycle over two backlogged subscriber queues."""
    config = GageConfig()
    queues = SubscriberQueues()
    accounting = RDNAccounting()
    nodes = NodeScheduler(window_s=0.25)
    subscribers = [Subscriber("gold", 100), Subscriber("bronze", 50)]
    for subscriber in subscribers:
        queues.register(subscriber)
        accounting.register(subscriber)
    nodes.add_node("rpn0", grps(400))
    scheduler = RequestScheduler(
        config, queues, accounting, nodes, lambda request, rpn, name, predicted: None
    )
    gold = queues.get("gold")
    bronze = queues.get("bronze")
    status = nodes.node("rpn0")

    def one_cycle():
        # Keep both queues backlogged and the node unloaded so every
        # cycle does the same amount of refill + drain work.
        for _ in range(4):
            gold.offer(object())
            bronze.offer(object())
        decisions = scheduler.run_cycle()
        status.outstanding = ResourceVector.ZERO
        return decisions

    decisions = benchmark(one_cycle)
    assert decisions, "a cycle over backlogged queues must dispatch"
    _stamp(benchmark)
