"""Ablation A9 — why multi-resource accounting matters (§2, §3.5).

The paper dismisses user-level schedulers because they "cannot have an
accurate system resource usage information".  This ablation quantifies
that: the same WRR queueing runs twice, once metering *measured resource
usage* (Gage) and once metering *request counts* (the count-fair
baseline).  Two subscribers pay for equal shares; one requests 1 KB
pages, the other 16 KB pages (16x the network, ~1.6x the CPU).

Under count-fairness the heavy-page subscriber receives equal *counts* —
i.e. several times its paid-for resources — and the cluster's spare
evaporates into its oversized responses.  Under Gage both receive equal
*resources*: the heavy subscriber gets proportionally fewer requests.
"""

from repro.baselines.countfair import CountFairDispatcher
from repro.cluster import Machine, WebServer
from repro.core import GageCluster, Subscriber
from repro.sim import Environment
from repro.workload import SyntheticWorkload

from .conftest import print_banner

LIGHT_BYTES = 1024
HEAVY_BYTES = 16 * 1024
OFFERED = 160.0  # per subscriber, well past what one RPN serves
DURATION = 10.0
WINDOW = (2.0, 10.0)


def make_workloads():
    light = SyntheticWorkload(rates={"light": OFFERED}, duration_s=DURATION,
                              file_bytes=LIGHT_BYTES, seed=1)
    heavy = SyntheticWorkload(rates={"heavy": OFFERED}, duration_s=DURATION,
                              file_bytes=HEAVY_BYTES, seed=2)
    records = light.generate() + heavy.generate()
    records.sort(key=lambda r: r.at_s)
    site_files = {"light": light.site_files("light"), "heavy": heavy.site_files("heavy")}
    return records, site_files


def usage_rate(completions, sizes, start, end):
    """Network bytes per second delivered to each host."""
    rates = {}
    for host, size in sizes.items():
        count = sum(1 for at, h in completions if h == host and start <= at < end)
        rates[host] = count * size / (end - start)
    return rates


def run_gage():
    env = Environment()
    records, site_files = make_workloads()
    # Equal paid shares: 40 GRPS each on a ~100-GRPS single-node cluster.
    subs = [
        Subscriber("light", 40.0, queue_capacity=512),
        Subscriber("heavy", 40.0, queue_capacity=512),
    ]
    cluster = GageCluster(env, subs, site_files, num_rpns=1, fidelity="flow")
    cluster.prewarm_caches()
    cluster.load_trace(records)
    cluster.run(DURATION)
    return {
        r.subscriber: r.served_rate for r in cluster.all_reports(*WINDOW)
    }


def run_count_fair():
    env = Environment()
    records, site_files = make_workloads()
    machine = Machine(env, "rpn0")
    server = WebServer(machine)
    for host, files in site_files.items():
        server.host_site(host, files=files)
    for path, size in machine.fs.walk():
        machine.cache.insert(path, size)
    dispatcher = CountFairDispatcher(env, [server])
    dispatcher.add_subscriber("light", 40.0, queue_capacity=512)
    dispatcher.add_subscriber("heavy", 40.0, queue_capacity=512)
    dispatcher.load_trace(records)
    env.run(until=DURATION)
    return {
        host: dispatcher.completed_rate(host, *WINDOW)
        for host in ("light", "heavy")
    }


def test_count_fairness_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {"gage": run_gage(), "count_fair": run_count_fair()},
        rounds=1,
        iterations=1,
    )
    print_banner("Ablation A9: resource accounting vs request counting")
    print("  equal paid shares; light=1KB pages, heavy=16KB pages")
    print()
    print("  {:<12} {:>11} {:>11} {:>22}".format(
        "scheduler", "light r/s", "heavy r/s", "heavy net advantage"))
    for name, served in results.items():
        advantage = (served["heavy"] * HEAVY_BYTES) / max(
            served["light"] * LIGHT_BYTES, 1.0
        )
        print("  {:<12} {:>11.1f} {:>11.1f} {:>21.1f}x".format(
            name, served["light"], served["heavy"], advantage))

    gage = results["gage"]
    count = results["count_fair"]
    # Count-fairness lets the heavy subscriber absorb many times the
    # network bytes of its equal-paying peer (the back-end's own CPU
    # time-sharing trims the count gap a little, but the resource gap
    # stays near the 16x page-size ratio).
    count_advantage = (count["heavy"] * HEAVY_BYTES) / (count["light"] * LIGHT_BYTES)
    assert count_advantage > 8.0
    # Gage meters measured usage: the heavy subscriber is granted
    # proportionally fewer requests, cutting the resource imbalance by
    # more than half.
    gage_advantage = (gage["heavy"] * HEAVY_BYTES) / (gage["light"] * LIGHT_BYTES)
    assert gage_advantage < 0.5 * count_advantage
    # Under count metering the heavy subscriber completes several times
    # more requests than its measured usage entitles it to under Gage.
    assert count["heavy"] > 2.0 * gage["heavy"]
