"""BENCH_subscriber_scale — the million-subscriber control plane.

Two records:

* ``cycle_cost_100k`` — per-cycle scheduling/accounting cost with 10⁵
  registered subscribers of which ~512 are active.  The lazy O(active)
  walk must make the cycle cost a function of the *active* population:
  the benchmark measures the same 512-active steady state over a 10⁵
  and a 4×10³ registration base and asserts the cost ratio stays near
  1× (an O(registered) walk would show ~25×).
* ``churn_admission_100k`` — replays a seeded join/leave stream of ~10⁵
  subscriber offers through the placement engine (utilization
  objective, k=1 backup), recording the acceptance ratio, the p95
  admission-decision latency, and — after killing the most-loaded node
  — the guarantee-violation counter, which must be **zero**: every
  accepted reservation has a fully-reserved backup.

Figures from fixed seeds (acceptance ratio, violation counts) gate at
the tight figure tolerance; timing-derived numbers are ``perf_`` keys.
"""

import statistics
import time

from repro.core import (
    GageConfig,
    NodeScheduler,
    PlacementEngine,
    RDNAccounting,
    RequestScheduler,
    Subscriber,
    SubscriberQueues,
)
from repro.core.grps import ResourceVector
from repro.workload import ChurnWorkload
from repro.workload.churn import JOIN

from .conftest import print_banner

#: Serialized as BENCH_subscriber_scale.json regardless of the filename.
BENCHSTORE_SUITE = "subscriber_scale"

#: Registered populations: the headline scale and the control base.
TOTAL = 100_000
CONTROL = 4_000

#: Subscribers with traffic in the steady-state cycle measurements.
ACTIVE = 512

#: The O(active) acceptance bound: 25× more registered subscribers may
#: not make the steady-state cycle more than this much slower.
MAX_COST_RATIO = 3.0

#: Placement cluster for the churn record: 32 nodes of 3750 GRPS.
PLACEMENT_NODES = 32
PLACEMENT_NODE_CAPACITY = ResourceVector(37.5, 37.5, 7_500_000.0)


def _build_plane(total):
    """A scheduler over ``total`` registered subscribers, shared table."""
    config = GageConfig(spare_policy="none", dispatch_window_s=3600.0)
    queues = SubscriberQueues()
    accounting = RDNAccounting(table=queues.table)
    nodes = NodeScheduler(
        policy=config.node_policy, window_s=config.dispatch_window_s
    )
    for index in range(total):
        sub = Subscriber(
            "sub{:06d}".format(index),
            reservation_grps=100.0,
            queue_capacity=8,
        )
        queues.register(sub)
        accounting.register(sub)
    for index in range(8):
        nodes.add_node(
            "rpn{}".format(index), ResourceVector(1000.0, 1000.0, 1.25e10)
        )
    scheduler = RequestScheduler(
        config,
        queues,
        accounting,
        nodes,
        dispatch_fn=lambda req, rpn, name, predicted: None,
    )
    return scheduler, queues


def _settle(scheduler):
    """Run cycles until the idle population drops out of the walk."""
    for _ in range(20):
        scheduler.run_cycle()
        if scheduler.active_count() == 0:
            return
    raise AssertionError(
        "population never settled: {} still active".format(
            scheduler.active_count()
        )
    )


def _steady_state_cycle_s(scheduler, queues, names, rounds):
    """Median wall time of one cycle with exactly ``names`` active."""
    times = []
    for _ in range(rounds):
        for name in names:
            queues.get(name).offer("req")
        start = time.perf_counter()
        scheduler.run_cycle()
        times.append(time.perf_counter() - start)
    return statistics.median(times)


def test_cycle_cost_100k(benchmark):
    """Steady-state cycle cost is O(active), not O(registered)."""
    active_names = ["sub{:06d}".format(i * (TOTAL // ACTIVE)) for i in range(ACTIVE)]

    scheduler, queues = _build_plane(TOTAL)
    _settle(scheduler)

    control_names = [
        "sub{:06d}".format(i * (CONTROL // ACTIVE)) for i in range(ACTIVE)
    ]
    control_sched, control_queues = _build_plane(CONTROL)
    _settle(control_sched)
    control_s = _steady_state_cycle_s(
        control_sched, control_queues, control_names, rounds=30
    )

    # Warm the 100k plane, then measure (pedantic owns the official
    # median; the manual sample feeds the machine-local cost ratio).
    _steady_state_cycle_s(scheduler, queues, active_names, rounds=5)
    scale_s = _steady_state_cycle_s(scheduler, queues, active_names, rounds=30)

    def one_cycle():
        for name in active_names:
            queues.get(name).offer("req")
        scheduler.run_cycle()

    benchmark.pedantic(one_cycle, rounds=30, warmup_rounds=5)

    ratio = scale_s / control_s if control_s > 0 else float("inf")
    active_after = scheduler.active_count()

    print_banner("BENCH_subscriber_scale: cycle cost at 100k subscribers")
    print(
        "  registered {}   active {}   cycle {:.0f} us "
        "(control@{}: {:.0f} us, ratio {:.2f}x, bound {:.1f}x)".format(
            TOTAL,
            ACTIVE,
            scale_s * 1e6,
            CONTROL,
            control_s * 1e6,
            ratio,
            MAX_COST_RATIO,
        )
    )

    # The walk really was O(active): only offered queues were visited.
    assert active_after <= ACTIVE
    assert ratio < MAX_COST_RATIO, (
        "cycle cost grew {:.2f}x going from {} to {} registered "
        "subscribers with a fixed {}-subscriber active set".format(
            ratio, CONTROL, TOTAL, ACTIVE
        )
    )

    benchmark.extra_info["registered"] = TOTAL
    benchmark.extra_info["active"] = ACTIVE
    benchmark.extra_info["min_cores"] = 2
    benchmark.extra_info["perf_cycle_cost_ratio"] = round(ratio, 2)
    benchmark.extra_info["info_cycle_us_100k"] = "{:.0f}".format(scale_s * 1e6)
    benchmark.extra_info["info_cycle_us_4k"] = "{:.0f}".format(control_s * 1e6)


def _replay_churn():
    """Replay the seeded churn stream through a fresh placement engine."""
    workload = ChurnWorkload(
        initial=0,
        joins_per_s=2500.0,
        leaves_per_s=500.0,
        duration_s=40.0,
        reservation_grps=1.0,
        seed=17,
    )
    events = workload.generate()
    engine = PlacementEngine(k_backup=1, objective="utilization")
    for index in range(PLACEMENT_NODES):
        engine.add_node("rpn{:02d}".format(index), PLACEMENT_NODE_CAPACITY)
    placed = set()
    latencies = []
    for event in events:
        if event.kind == JOIN:
            start = time.perf_counter()
            accepted = engine.place(event.subscriber)
            latencies.append(time.perf_counter() - start)
            if accepted:
                placed.add(event.name)
        elif event.name in placed:
            engine.release(event.name)
            placed.discard(event.name)
    return engine, events, latencies


def test_churn_admission_100k(benchmark):
    """~10⁵ join/leave offers: acceptance, latency, and failover."""
    outcome = {}

    def replay():
        outcome["result"] = _replay_churn()

    benchmark.pedantic(replay, rounds=1, warmup_rounds=0)
    engine, events, latencies = outcome["result"]

    joins = sum(1 for e in events if e.kind == JOIN)
    stats = engine.stats
    acceptance_pct = 100.0 * stats.acceptance_ratio()
    latencies.sort()
    p50_us = latencies[len(latencies) // 2] * 1e6
    p95_us = latencies[int(len(latencies) * 0.95)] * 1e6

    # Kill the most committed node: with k=1 every accepted reservation
    # must fail over onto reserved backup capacity — zero violations.
    busiest = max(
        ("rpn{:02d}".format(i) for i in range(PLACEMENT_NODES)),
        key=lambda rpn: engine.node_view(rpn).utilization(),
    )
    report = engine.on_node_death(busiest)

    print_banner("BENCH_subscriber_scale: churn admission at 100k offers")
    print(
        "  offers {} (joins {})   accepted {}   rejected {}   "
        "acceptance {:.1f}%".format(
            len(events), joins, stats.accepted, stats.rejected, acceptance_pct
        )
    )
    print(
        "  place() p50 {:.1f} us   p95 {:.1f} us   death of {}: "
        "promoted {}   violations {}".format(
            p50_us, p95_us, busiest, len(report.promoted), stats.violations
        )
    )

    assert joins > 90_000  # the stream really offered ~10⁵ subscribers
    assert stats.accepted > 0 and stats.rejected > 0  # admission exercised
    assert report.promoted  # the dead node carried primaries
    assert stats.violations == 0, (
        "node death violated {} guarantees despite k=1 backup "
        "reservations".format(stats.violations)
    )

    benchmark.extra_info["nodes"] = PLACEMENT_NODES
    benchmark.extra_info["min_cores"] = 2
    benchmark.extra_info["offers"] = joins
    benchmark.extra_info["acceptance_pct"] = round(acceptance_pct, 1)
    benchmark.extra_info["violations_after_death"] = stats.violations
    benchmark.extra_info["promoted_after_death"] = len(report.promoted)
    benchmark.extra_info["perf_place_p95_us"] = round(p95_us, 1)
    benchmark.extra_info["info_place_p50_us"] = "{:.1f}".format(p50_us)
