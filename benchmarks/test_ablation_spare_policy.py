"""Ablation A1 — spare allocation policy: by reservation vs by input load.

The paper argues (§4.1) that splitting spare capacity in proportion to
reservations "is more fair to the subscribers with higher reservation"
than splitting by input load.  This ablation runs Table 2's scenario with
inverted demand (the low-reservation site offers *more* load) under both
policies: under ``input_load`` the heavier-offered site wins spare it did
not pay for; under ``reservation`` the paying site keeps the larger share.
"""

from repro.core import GageConfig
from repro.harness import format_table, run_isolation

from .conftest import print_banner

RESERVATIONS = {"premium": 250.0, "basic": 100.0}
# The low-reservation site offers much more traffic.
INPUTS = {"premium": 500.0, "basic": 700.0}


def run(policy):
    return run_isolation(
        reservations=RESERVATIONS,
        input_rates=INPUTS,
        duration_s=12.0,
        config=GageConfig(spare_policy=policy),
    )


def test_spare_policy_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {policy: run(policy) for policy in ("reservation", "input_load")},
        rounds=1,
        iterations=1,
    )
    print_banner("Ablation A1: spare policy (reservation vs input load)")
    for policy, reports in results.items():
        rows = [
            (r.subscriber, r.reservation_grps, r.input_rate, r.served_rate, r.spare_rate)
            for r in reports
        ]
        print(format_table(
            ["Subscriber", "Reservation", "Input", "Served", "Spare"],
            rows,
            "policy = {}:".format(policy),
        ))
        print()

    by_res = {r.subscriber: r for r in results["reservation"]}
    by_load = {r.subscriber: r for r in results["input_load"]}

    # Reservations are honoured under both policies.
    for reports in results.values():
        for report in reports:
            assert report.served_rate >= 0.95 * min(
                report.reservation_grps, report.input_rate
            )

    # Under the paper's policy the premium site takes the larger spare
    # share despite offering less traffic...
    assert by_res["premium"].spare_rate > by_res["basic"].spare_rate
    # ...under input-load weighting the basic site's flood wins instead.
    assert by_load["basic"].spare_rate > by_load["premium"].spare_rate
    # And premium is strictly better off under the paper's policy.
    assert by_res["premium"].served_rate > by_load["premium"].served_rate
