"""BENCH_proxy — throughput of the real-socket proxy data plane.

Unlike the table/figure suites, this one measures *this machine's*
serving stack: a full in-process deployment (two back ends behind one
:class:`~repro.proxy.frontend.GageProxy`) driven by the closed- and
open-loop load generator from :mod:`repro.harness.loadgen`.  The
exported figures (RPS, latency quantiles, pool hit rate) carry the
``perf_`` prefix so the CI gate applies the forgiving timing tolerance,
not the fixed-seed figure tolerance.

The closed-loop keep-alive workload is the data-plane acceptance
workload: the pool and client keep-alive should hold TCP connects to
roughly the client population while RPS at least doubles the
pre-rework (connection-per-request) baseline.
"""

import asyncio

from repro.harness.loadgen import ProxyRig, closed_loop, open_loop
from repro.proxy import loop_policy
from repro.proxy.splice import splice_stats

from .conftest import print_banner

#: Serialized as BENCH_proxy.json regardless of this module's filename.
BENCHSTORE_SUITE = "proxy"

#: Closed-loop client population and per-round request budget.
CONCURRENCY = 16
REQUESTS = 600

#: Open-loop offered rate (requests/s) and window.
OPEN_RATE = 200.0
OPEN_DURATION_S = 1.0


def _closed_round(keep_alive: bool):
    async def go():
        rig = ProxyRig()
        port = await rig.start()
        try:
            await closed_loop(
                "127.0.0.1",
                port,
                site=rig.site,
                concurrency=4,
                total_requests=50,
                keep_alive=keep_alive,
            )
            splice_stats.reset()
            result = await closed_loop(
                "127.0.0.1",
                port,
                site=rig.site,
                concurrency=CONCURRENCY,
                total_requests=REQUESTS,
                keep_alive=keep_alive,
            )
            zero_copy = dict(splice_stats.snapshot())
            zero_copy["sendfile_served"] = sum(
                backend.sendfile_served for backend in rig.backends
            )
            zero_copy["loop"] = loop_policy.running_loop_kind()
            return result, rig.proxy.pool.hit_rate, zero_copy
        finally:
            await rig.stop()

    return asyncio.run(go())


def _open_round():
    async def go():
        rig = ProxyRig()
        port = await rig.start()
        try:
            return await open_loop(
                "127.0.0.1",
                port,
                site=rig.site,
                rate=OPEN_RATE,
                duration_s=OPEN_DURATION_S,
            )
        finally:
            await rig.stop()

    return asyncio.run(go())


def test_closed_loop_keepalive(benchmark):
    """16 keep-alive clients, back-to-back requests through the proxy."""
    outcome = {}

    def one_round():
        (
            outcome["result"],
            outcome["hit_rate"],
            outcome["zero_copy"],
        ) = _closed_round(keep_alive=True)

    benchmark.pedantic(one_round, rounds=3, warmup_rounds=1)
    result, hit_rate = outcome["result"], outcome["hit_rate"]
    zero_copy = outcome["zero_copy"]

    print_banner("BENCH_proxy: closed-loop keep-alive")
    print(
        "  rps {:.1f}   p50 {:.2f} ms   p95 {:.2f} ms   "
        "connects {}   pool hit rate {:.3f}".format(
            result.rps,
            result.latency_s(0.5) * 1e3,
            result.latency_s(0.95) * 1e3,
            result.connects,
            hit_rate,
        )
    )
    print(
        "  loop {}   sendmsg {} writes/{} B   sendfile {} bodies/{} B".format(
            zero_copy["loop"],
            zero_copy["sendmsg_writes"],
            zero_copy["sendmsg_bytes"],
            zero_copy["sendfile_served"],
            zero_copy["sendfile_bytes"],
        )
    )

    assert result.errors == 0
    assert result.completed == REQUESTS
    # Keep-alive + pooling: connections stay bound to the client
    # population instead of scaling with the request count.
    assert result.connects <= CONCURRENCY * 2
    assert hit_rate > 0.8
    # The zero-copy paths must actually engage: warm bodies leave via
    # sendfile and at least some head+body writes go out vectored.
    assert zero_copy["sendfile_served"] > 0
    assert zero_copy["sendmsg_writes"] > 0

    benchmark.extra_info["perf_rps"] = round(result.rps, 1)
    benchmark.extra_info["perf_p50_ms"] = round(result.latency_s(0.5) * 1e3, 3)
    benchmark.extra_info["perf_p95_ms"] = round(result.latency_s(0.95) * 1e3, 3)
    benchmark.extra_info["perf_pool_hit_rate"] = round(hit_rate, 4)
    benchmark.extra_info["perf_sendmsg_writes"] = zero_copy["sendmsg_writes"]
    benchmark.extra_info["perf_sendfile_bodies"] = zero_copy["sendfile_served"]
    benchmark.extra_info["event_loop"] = zero_copy["loop"] or "asyncio"
    benchmark.extra_info["requests"] = REQUESTS
    benchmark.extra_info["concurrency"] = CONCURRENCY


def test_open_loop(benchmark):
    """A fixed 200 req/s offered load on fresh connections per request."""
    outcome = {}

    def one_round():
        outcome["result"] = _open_round()

    benchmark.pedantic(one_round, rounds=2, warmup_rounds=1)
    result = outcome["result"]

    print_banner("BENCH_proxy: open-loop {} req/s".format(int(OPEN_RATE)))
    print(
        "  completed {}   errors {}   p50 {:.2f} ms   p95 {:.2f} ms".format(
            result.completed,
            result.errors,
            result.latency_s(0.5) * 1e3,
            result.latency_s(0.95) * 1e3,
        )
    )

    assert result.errors == 0
    # The proxy must keep up with the offered rate (all fired requests
    # answered within the drain window).
    assert result.completed >= int(OPEN_RATE * OPEN_DURATION_S * 0.95)

    benchmark.extra_info["perf_open_p50_ms"] = round(result.latency_s(0.5) * 1e3, 3)
    benchmark.extra_info["perf_open_p95_ms"] = round(result.latency_s(0.95) * 1e3, 3)
    benchmark.extra_info["offered_rps"] = OPEN_RATE
