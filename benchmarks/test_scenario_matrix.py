"""Scenario matrix — isolation holds on heterogeneous clusters.

The paper measures Figure 3 on a uniform cluster.  This suite stresses
the same bound where it is hardest to keep: a two-tier mixed-capacity
cluster (3 fast nodes behind the root switch, 5 slow nodes behind a
leaf) with one subscriber deliberately offering 4x its reservation.
The claim under test is the paper's isolation guarantee: the
misbehaver cannot push any *conforming* subscriber's deviation from
reservation past the Figure-3 bound (8% at averaging intervals >= 4s).

A second benchmark pins the seeded topology generator: the same seed
must reproduce the serialized topology byte for byte, and the drawn
cluster's shape (node mix, capacity) is a fixed-seed figure gated by
the bench comparison.
"""

from repro.harness.scenarios import (
    FIG3_BOUND_PCT,
    generated_topology,
    mixed_2tier_topology,
    run_scenario,
)

from .conftest import print_banner

SEED = 0
DURATION_S = 20.0


def test_misbehaver_on_mixed_2tier(benchmark):
    def run_cells():
        return {
            fault: run_scenario(
                topology="mixed_2tier",
                workload="misbehave",
                fault=fault,
                seed=SEED,
                duration_s=DURATION_S,
            )
            for fault in ("none", "crash")
        }

    cells = benchmark.pedantic(run_cells, rounds=1, iterations=1)
    print_banner("Scenario matrix: misbehaver on the 2-tier mixed cluster")
    for fault, result in cells.items():
        print(
            "  fault={:<6} max conforming deviation {:5.2f}%  (bound {:.0f}%)".format(
                fault, result["max_conforming_deviation_pct"], result["bound_pct"]
            )
        )
        for host, deviation in sorted(result["deviation_pct_by_host"].items()):
            print("    {:<8} {:5.2f}%".format(host, deviation))

    for fault, result in cells.items():
        # The enforced claim: conforming subscribers stay inside the
        # Figure-3 bound no matter what the misbehaver (or a node crash
        # on top of it) does.
        assert result["within_bound"], fault
        assert result["max_conforming_deviation_pct"] < FIG3_BOUND_PCT, fault
        # The misbehaver is excluded from the conforming set.
        assert result["misbehavers"]
        for host in result["misbehavers"]:
            assert host not in result["deviation_pct_by_host"]

    calm = cells["none"]
    assert calm["num_rpns"] == 8
    assert calm["total_capacity_grps"] == 600.0
    benchmark.extra_info["dev_misbehave_pct"] = round(
        calm["max_conforming_deviation_pct"], 2
    )
    benchmark.extra_info["dev_misbehave_crash_pct"] = round(
        cells["crash"]["max_conforming_deviation_pct"], 2
    )
    benchmark.extra_info["mixed_capacity_grps"] = calm["total_capacity_grps"]


def test_generated_topology_is_seed_stable(benchmark, tmp_path):
    def draw_twice():
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        topo_a = generated_topology()
        topo_a.save(first)
        topo_b = generated_topology()
        topo_b.save(second)
        return first.read_bytes(), second.read_bytes(), topo_a

    bytes_a, bytes_b, topo = benchmark.pedantic(draw_twice, rounds=1, iterations=1)
    assert bytes_a == bytes_b, "seeded generation is not byte-for-byte stable"

    kinds = {}
    for node in topo.nodes:
        kinds[node.kind] = kinds.get(node.kind, 0) + 1
    print_banner("Scenario matrix: seeded generator draw (seed 7)")
    print("  nodes={} mix={} capacity={:.1f} GRPS".format(
        topo.num_rpns, sorted(kinds.items()), topo.total_capacity_grps()
    ))
    benchmark.extra_info["gen_num_rpns"] = topo.num_rpns
    benchmark.extra_info["gen_capacity_grps"] = round(topo.total_capacity_grps(), 2)
    benchmark.extra_info["gen_fast_nodes"] = kinds.get("fast", 0)


def test_mixed_topology_round_trips(benchmark):
    topo = benchmark.pedantic(mixed_2tier_topology, rounds=1, iterations=1)
    clone = type(topo).from_json(topo.to_json())
    assert clone == topo
    assert clone.to_json() == topo.to_json()
