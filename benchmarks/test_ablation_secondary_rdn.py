"""Ablation A4 — asymmetric RDN cluster: secondary handshake offload.

§3.2: the front end "may become the system bottleneck ... One possible
solution is to use an asymmetric RDN cluster", where secondary RDNs
perform "the time-consuming task in front-end processing such as TCP
three-way hand-shaking".

This ablation runs the packet-mode cluster with 0, 1, and 2 secondaries,
verifies service is unaffected, and accounts the handshake CPU that
leaves the primary: with offload the primary spends a delegation forward
(≈2 x 7.0 us of Table 3's forwarding cost) instead of a full handshake
emulation (29.3 us) per connection.
"""

from repro.core import GageCluster, Subscriber
from repro.sim import Environment
from repro.workload import SyntheticWorkload

from .conftest import print_banner

RDN_SETUP_US = 29.3
FORWARD_US = 7.0


def run(num_secondaries, duration=4.0):
    env = Environment()
    subs = [Subscriber("site1", 100)]
    workload = SyntheticWorkload(
        rates={"site1": 40.0}, duration_s=duration, file_bytes=2000
    )
    cluster = GageCluster(
        env,
        subs,
        {"site1": workload.site_files("site1")},
        num_rpns=2,
        fidelity="packet",
        num_secondaries=num_secondaries,
    )
    cluster.load_trace(workload.generate())
    cluster.run(duration + 2.0)
    stats = cluster.fleet.stats
    offloaded = sum(s.handshakes_completed for s in cluster.secondaries)
    local = stats.issued - offloaded
    primary_handshake_us = local * RDN_SETUP_US + offloaded * 2 * FORWARD_US
    return {
        "issued": stats.issued,
        "completed": stats.completed,
        "offloaded": offloaded,
        "primary_handshake_us": primary_handshake_us,
        "mean_latency_ms": 1000 * stats.mean_latency_s,
    }


def test_secondary_rdn_offload(benchmark):
    results = benchmark.pedantic(
        lambda: {n: run(n) for n in (0, 1, 2)}, rounds=1, iterations=1
    )
    print_banner("Ablation A4: secondary-RDN handshake offload")
    print("  {:>11} {:>8} {:>9} {:>10} {:>18} {:>10}".format(
        "secondaries", "issued", "complete", "offloaded", "primary hs (us)", "lat (ms)"
    ))
    for n, r in results.items():
        print("  {:>11} {:>8} {:>9} {:>10} {:>18.0f} {:>10.1f}".format(
            n, r["issued"], r["completed"], r["offloaded"],
            r["primary_handshake_us"], r["mean_latency_ms"],
        ))

    # Service is unaffected by offloading.
    for r in results.values():
        assert r["completed"] == r["issued"]
    # Without secondaries nothing is offloaded; with them, everything is.
    assert results[0]["offloaded"] == 0
    assert results[1]["offloaded"] == results[1]["issued"]
    assert results[2]["offloaded"] == results[2]["issued"]
    # The primary's handshake CPU budget shrinks by roughly the ratio of
    # a delegation forward to a full emulation (14/29.3 ≈ 0.48).
    assert results[1]["primary_handshake_us"] < 0.55 * results[0]["primary_handshake_us"]
    # Latency stays in the same regime (one extra switch hop).
    assert results[2]["mean_latency_ms"] < 3 * results[0]["mean_latency_ms"]
