"""§4.2 — the total QoS overhead as a fraction of one RPN's CPU.

Paper: "It takes 56.7 us for connection setup and address-sequence number
remapping, assuming each request consists of 5 data-ACK packet pairs.
Under a load of 540 GRPS that one RPN can sustain, the total overhead
imposed on a RPN is less than 56.7 x 540 = 30,618 us, or only under
3.06% of a RPN's CPU capacity."

This benchmark recomputes the same arithmetic twice: once from the
paper's Table 3 constants (reproducing 3.06% exactly) and once from this
implementation's microbenchmarked costs normalized to the paper's RPN
setup cost (so the Python/C constant-factor cancels and the *structural*
fraction is comparable).
"""

from repro.core import GageCluster, Subscriber
from repro.core.control import DispatchOrder
from repro.net import IPAddress, MACAddress
from repro.net.conn import Quadruple
from repro.sim import Environment
from repro.workload import WebRequest

from .conftest import print_banner

PAPER_RPN_SETUP_US = 27.2
PAPER_REMAP_IN_US = 1.3
PAPER_REMAP_OUT_US = 4.6
DATA_ACK_PAIRS = 5
RPN_SUSTAINED_GRPS = 540


def paper_overhead_fraction():
    per_request_us = PAPER_RPN_SETUP_US + DATA_ACK_PAIRS * (
        PAPER_REMAP_IN_US + PAPER_REMAP_OUT_US
    )
    return per_request_us, per_request_us * RPN_SUSTAINED_GRPS / 1e6


def test_overhead_fraction(benchmark):
    per_request_us, fraction = benchmark.pedantic(
        paper_overhead_fraction, rounds=1, iterations=1
    )
    print_banner("§4.2: QoS overhead as a fraction of one RPN's CPU")
    print("per-request overhead: {:.1f} us (paper: 56.7 us)".format(per_request_us))
    print(
        "fraction at {} GRPS: {:.2f}% (paper: 3.06%)".format(
            RPN_SUSTAINED_GRPS, 100 * fraction
        )
    )
    assert per_request_us == 27.2 + 5 * (1.3 + 4.6)  # = 56.7
    assert abs(100 * fraction - 3.06) < 0.01
    benchmark.extra_info["overhead_percent"] = round(100 * fraction, 2)


def test_measured_structural_fraction(benchmark):
    """The same ratio from this implementation's own measured costs.

    Python's constant factor is normalized out by scaling every measured
    cost by (paper RPN setup / measured RPN setup); what remains checks
    that the remap:setup cost *structure* keeps total overhead in the
    low single-digit percent range.
    """
    import itertools
    import time

    env = Environment()
    cluster = GageCluster(
        env,
        [Subscriber("site1", 100)],
        {"site1": {"index.html": 2000}},
        num_rpns=1,
        fidelity="packet",
    )
    env.run(until=0.001)
    lsm = cluster.lsms[0]
    ports = itertools.count(2000)

    def one_setup():
        port = next(ports) % 60000 + 1024
        lsm._start_second_leg(
            DispatchOrder(
                subscriber="site1",
                request=WebRequest("site1", "/index.html", 2000),
                request_bytes=200,
                quad=Quadruple(
                    IPAddress("10.0.0.1"), port, IPAddress("10.0.0.100"), 80
                ),
                client_isn=1000,
                rdn_isn=90000,
                client_mac=MACAddress("02:00:00:00:00:01"),
            )
        )

    def measure(fn, n=2000):
        start = time.perf_counter()
        for _ in range(n):
            fn()
        return (time.perf_counter() - start) / n * 1e6

    setup_us = measure(one_setup)
    rule = next(iter(lsm._rules_in.values()))
    from repro.net import Packet, TCPFlags

    inbound = Packet(
        src_mac=rule.client_mac,
        dst_mac=MACAddress("02:00:00:00:00:64"),
        src_ip=rule.client_quad.src_ip,
        dst_ip=rule.client_quad.dst_ip,
        src_port=rule.client_quad.src_port,
        dst_port=80,
        seq=1200,
        ack=95000,
        flags=TCPFlags.ACK,
    )
    outbound = Packet(
        src_mac=rule.rpn_mac,
        dst_mac=rule.client_mac,
        src_ip=rule.rpn_ip,
        dst_ip=rule.client_quad.src_ip,
        src_port=80,
        dst_port=rule.client_quad.src_port,
        seq=5000,
        ack=1200,
        flags=TCPFlags.ACK,
        payload_len=1460,
    )
    remap_in_us = measure(lambda: rule.remap_incoming(inbound))
    remap_out_us = measure(lambda: rule.remap_outgoing(outbound))

    scale = PAPER_RPN_SETUP_US / setup_us
    scaled_per_request = PAPER_RPN_SETUP_US + DATA_ACK_PAIRS * scale * (
        remap_in_us + remap_out_us
    )
    fraction = scaled_per_request * RPN_SUSTAINED_GRPS / 1e6

    def report():
        return fraction

    benchmark.pedantic(report, rounds=1, iterations=1)
    print_banner("§4.2: structural overhead fraction from our measured costs")
    print("measured: setup {:.1f} us, remap in {:.2f} us, out {:.2f} us".format(
        setup_us, remap_in_us, remap_out_us
    ))
    print("normalized per-request overhead: {:.1f} us -> {:.2f}% of RPN CPU "
          "(paper: 56.7 us -> 3.06%)".format(scaled_per_request, 100 * fraction))
    # Shape: total overhead stays in the low single digits.
    assert 100 * fraction < 10.0
    benchmark.extra_info["normalized_percent"] = round(100 * fraction, 2)
