"""Ablation A7 — content-aware (locality) dispatching, §3.6.

"Content-aware request dispatching is based on the assumption that URL
pages in the same proximity should be serviced by the same RPN to exploit
access locality ... [it] can improve the effective processing capacity of
a web server cluster by avoiding unnecessary I/Os."

Setup: a document tree (~15 MB across 30 directories) several times
larger than one node's 4 MB buffer cache.  Under least-load dispatch
every node sees the whole tree and thrashes its cache; under locality
dispatch each node serves a stable subset of directories that *fits*,
so the aggregate hit rate jumps and disk I/O collapses.  The measured
trade-off is also visible: hashing hot directories onto fixed nodes
creates mild queueing hotspots (higher mean latency at equal
throughput) — the reason Gage's locality mode still falls back to
least-load whenever the preferred node lacks headroom.
"""

import pytest

from repro.core import GageConfig, GageCluster, Subscriber
from repro.sim import Environment
from repro.workload.specweb import SpecWeb99Config, SpecWeb99Workload

from .conftest import print_banner

CACHE_BYTES = 4 * 1024 * 1024
DURATION = 12.0


def run(node_policy):
    env = Environment()
    spec = SpecWeb99Config(directories=30, class_probabilities=(0.35, 0.50, 0.15, 0.0))
    generator = SpecWeb99Workload(spec, seed=1)
    site_files = generator.site_files()
    records = generator.generate("site1", rate=120.0, duration_s=DURATION)
    subs = [Subscriber("site1", 450.0, queue_capacity=2048)]
    config = GageConfig(node_policy=node_policy)
    cluster = GageCluster(
        env,
        subs,
        {"site1": site_files},
        num_rpns=4,
        config=config,
        fidelity="flow",
        rpn_cache_bytes=CACHE_BYTES,
    )
    cluster.load_trace(records)
    cluster.run(DURATION)
    hits = sum(m.cache.hits for m in cluster.machines)
    misses = sum(m.cache.misses for m in cluster.machines)
    ios = sum(m.disk.io_count for m in cluster.machines)
    served = sum(1 for at, _h in cluster.completions if at >= 2.0)
    latencies = sorted(l for at, _h, l in cluster.latencies if at >= 2.0)
    mean_latency = sum(latencies) / len(latencies)
    return {
        "hit_rate": hits / (hits + misses) if hits + misses else 0.0,
        "disk_ios": ios,
        "served": served,
        "mean_latency_ms": 1000 * mean_latency,
    }


def test_locality_dispatch_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {policy: run(policy) for policy in ("least_load", "locality")},
        rounds=1,
        iterations=1,
    )
    print_banner("Ablation A7: content-aware dispatching (§3.6)")
    print("  working set ~15MB over 30 dirs; per-node cache 4MB; 4 RPNs")
    print()
    print("  {:<12} {:>9} {:>10} {:>8} {:>10}".format(
        "policy", "hit rate", "disk I/Os", "served", "mean lat"))
    for policy, r in results.items():
        print("  {:<12} {:>8.1%} {:>10} {:>8} {:>8.1f}ms".format(
            policy, r["hit_rate"], r["disk_ios"], r["served"], r["mean_latency_ms"]))

    blind = results["least_load"]
    aware = results["locality"]
    # Locality lifts the aggregate cache hit rate substantially...
    assert aware["hit_rate"] > blind["hit_rate"] + 0.10
    # ...and avoids a large fraction of the disk I/Os (§3.6's
    # "avoiding unnecessary I/Os").
    assert aware["disk_ios"] < 0.7 * blind["disk_ios"]
    # Same offered load is served either way (capacity is not the limit).
    assert aware["served"] == pytest.approx(blind["served"], rel=0.05)
