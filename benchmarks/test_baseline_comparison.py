"""Related-work comparison (§2): guaranteed vs priority vs best-effort.

The paper's §2 argues that prior systems are "priority-based, i.e., they
do not provide guaranteed QoS": one class gets *qualitatively* better
service, but there is no *quantitative* bound.  This benchmark runs one
scenario — a premium subscriber flooding the cluster while a basic
subscriber stays inside its reservation — under three dispatchers:

- **Gage** (this paper): both subscribers get their reservations; the
  flood absorbs only the spare;
- **strict priority** (related work): the premium flood starves basic
  entirely — qualitative differentiation, no guarantee;
- **best effort**: the flood crowds out basic in proportion to load.
"""

import pytest

from repro.baselines import BestEffortDispatcher, PriorityDispatcher
from repro.cluster import Machine, WebServer
from repro.core import GageCluster, Subscriber
from repro.sim import Environment
from repro.workload import SyntheticWorkload

from .conftest import print_banner

RATES = {"premium": 250.0, "basic": 45.0}
RESERVATIONS = {"premium": 50.0, "basic": 50.0}
DURATION = 8.0
WINDOW = (2.0, 8.0)


def make_workload():
    return SyntheticWorkload(rates=RATES, duration_s=DURATION, file_bytes=2000)


def run_gage():
    env = Environment()
    subs = [
        Subscriber(name, grps, queue_capacity=128)
        for name, grps in RESERVATIONS.items()
    ]
    workload = make_workload()
    cluster = GageCluster(
        env, subs, {n: workload.site_files(n) for n in RATES}, num_rpns=1
    )
    cluster.prewarm_caches()
    cluster.load_trace(workload.generate())
    cluster.run(DURATION)
    return {
        r.subscriber: r.served_rate for r in cluster.all_reports(*WINDOW)
    }


def _one_server(env, workload):
    machine = Machine(env, "rpn0")
    server = WebServer(machine)
    for name in RATES:
        server.host_site(name, files=workload.site_files(name))
    for path, size in machine.fs.walk():
        machine.cache.insert(path, size)
    return server


def run_priority():
    env = Environment()
    workload = make_workload()
    dispatcher = PriorityDispatcher(env, [_one_server(env, workload)])
    dispatcher.add_class("premium", level=0, hosts=["premium"], queue_capacity=128)
    dispatcher.add_class("basic", level=1, hosts=["basic"], queue_capacity=128)
    dispatcher.load_trace(workload.generate())
    env.run(until=DURATION)
    return {
        name: dispatcher.completed_rate(name, *WINDOW) for name in RATES
    }


def run_besteffort():
    env = Environment()
    workload = make_workload()
    dispatcher = BestEffortDispatcher(
        env, [_one_server(env, workload)], max_in_flight_per_server=64
    )
    dispatcher.load_trace(workload.generate())
    env.run(until=DURATION)
    return {
        name: dispatcher.completed_rate(*WINDOW, host=name) for name in RATES
    }


def test_guaranteed_vs_priority_vs_besteffort(benchmark):
    results = benchmark.pedantic(
        lambda: {
            "gage": run_gage(),
            "priority": run_priority(),
            "besteffort": run_besteffort(),
        },
        rounds=1,
        iterations=1,
    )
    print_banner("§2: quantitative guarantee vs qualitative priority")
    print("  offered: premium {:.0f}/s (reserved 50), basic {:.0f}/s (reserved 50)".format(
        RATES["premium"], RATES["basic"]))
    print()
    print("  {:<12} {:>14} {:>12}".format("dispatcher", "premium (r/s)", "basic (r/s)"))
    for name, served in results.items():
        print("  {:<12} {:>14.1f} {:>12.1f}".format(
            name, served["premium"], served["basic"]))

    gage = results["gage"]
    priority = results["priority"]
    best = results["besteffort"]
    # Gage: basic's guarantee holds despite the premium flood.
    assert gage["basic"] == pytest.approx(45.0, rel=0.1)
    # Priority: basic is starved — no quantitative bound at all.
    assert priority["basic"] < 10.0
    # Best effort: basic gets squeezed well below its offered load.
    assert best["basic"] < 0.75 * 45.0
    # In every system the cluster itself is busy; the difference is who
    # receives the service.
    for served in results.values():
        assert sum(served.values()) > 80.0
