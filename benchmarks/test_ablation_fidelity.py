"""Ablation A6 — transport fidelity cross-validation.

DESIGN.md's central modeling decision is that the long QoS experiments
may run on the flow transport because the Gage core's behaviour is
transport-independent.  This benchmark validates that: the same
two-subscriber scenario (one inside its reservation, one overloaded) runs
under both fidelities, and the served rates must agree within 10%.
"""

import pytest

from repro.core import GageCluster, Subscriber
from repro.sim import Environment
from repro.workload import SyntheticWorkload

from .conftest import print_banner

RATES = {"good": 60.0, "greedy": 200.0}
RESERVATIONS = {"good": 60.0, "greedy": 25.0}
DURATION = 6.0


def run(fidelity):
    env = Environment()
    subs = [
        Subscriber(name, grps, queue_capacity=128)
        for name, grps in RESERVATIONS.items()
    ]
    workload = SyntheticWorkload(rates=RATES, duration_s=DURATION, file_bytes=2000)
    cluster = GageCluster(
        env,
        subs,
        {name: workload.site_files(name) for name in RATES},
        num_rpns=2,
        fidelity=fidelity,
    )
    cluster.load_trace(workload.generate())
    cluster.run(DURATION + 2.0)
    return {
        report.subscriber: report.served_rate
        for report in cluster.all_reports(2.0, DURATION)
    }


def test_fidelity_cross_validation(benchmark):
    results = benchmark.pedantic(
        lambda: {fidelity: run(fidelity) for fidelity in ("flow", "packet")},
        rounds=1,
        iterations=1,
    )
    print_banner("Ablation A6: flow vs packet transport, same scenario")
    print("  {:<10} {:>12} {:>12}".format("fidelity", "good (r/s)", "greedy (r/s)"))
    for fidelity, served in results.items():
        print("  {:<10} {:>12.1f} {:>12.1f}".format(
            fidelity, served["good"], served["greedy"]
        ))
    flow, packet = results["flow"], results["packet"]
    for name in RATES:
        assert packet[name] == pytest.approx(flow[name], rel=0.10), name
    # And the QoS shape holds under both.
    for served in results.values():
        assert served["good"] == pytest.approx(60.0, rel=0.1)
        assert served["greedy"] < 200.0 * 0.8
