"""Ablation A3 — the "which RPN" decision: least-load vs alternatives.

§3.4: "Gage attempts to maximize the system utilization efficiency by
balancing the load on the RPNs, in other words, dispatching a request to
the RPN with the least load."  This ablation compares least-load against
round-robin and random selection on a cluster with one *half-speed* node
at moderate load: throughput is the same (capacity suffices) but blind
policies keep queueing work on the slow node, inflating request latency,
while least-load's outstanding-load signal routes around it.
"""

import statistics

from repro.core import GageConfig, GageCluster, Subscriber
from repro.sim import Environment
from repro.workload import SyntheticWorkload

from .conftest import print_banner


def run(node_policy, duration=10.0):
    env = Environment()
    names = ["site1", "site2"]
    subs = [Subscriber(n, 160.0, queue_capacity=1024) for n in names]
    config = GageConfig(node_policy=node_policy)
    workload = SyntheticWorkload(
        rates={n: 140.0 for n in names}, duration_s=duration, file_bytes=2000
    )
    cluster = GageCluster(
        env,
        subs,
        {n: workload.site_files(n) for n in names},
        num_rpns=4,
        config=config,
        fidelity="flow",
    )
    # Make one node half-speed.
    cluster.machines[0].cpu.speed = 0.5
    cluster.prewarm_caches()
    cluster.load_trace(workload.generate())
    cluster.run(duration)
    served = [
        (at, lat) for at, _h, lat in cluster.latencies if 2.0 <= at < duration
    ]
    rate = len(served) / (duration - 2.0)
    mean_latency = statistics.mean(lat for _at, lat in served)
    p99 = sorted(lat for _at, lat in served)[int(0.99 * len(served))]
    return rate, mean_latency, p99


def test_node_scheduling_ablation(benchmark):
    results = benchmark.pedantic(
        lambda: {p: run(p) for p in ("least_load", "round_robin", "random")},
        rounds=1,
        iterations=1,
    )
    print_banner("Ablation A3: node selection with one half-speed RPN")
    print("  {:<12} {:>10} {:>12} {:>12}".format("policy", "served/s", "mean lat", "p99 lat"))
    for policy, (rate, mean_latency, p99) in results.items():
        print("  {:<12} {:>10.1f} {:>11.1f}ms {:>11.1f}ms".format(
            policy, rate, 1000 * mean_latency, 1000 * p99
        ))

    ll_rate, ll_mean, _ = results["least_load"]
    rr_rate, rr_mean, _ = results["round_robin"]
    rnd_rate, rnd_mean, _ = results["random"]
    # Capacity suffices, so everyone serves the offered load...
    assert ll_rate > 0.93 * 280.0
    assert rr_rate > 0.9 * 280.0
    # ...but least-load's latency is clearly better than both blind
    # policies, which keep feeding the slow node.
    assert ll_mean < 0.8 * rr_mean
    assert ll_mean < 0.8 * rnd_mean
    benchmark.extra_info["least_load_mean_ms"] = round(1000 * ll_mean, 1)
    benchmark.extra_info["round_robin_mean_ms"] = round(1000 * rr_mean, 1)
