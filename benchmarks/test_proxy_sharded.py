"""BENCH_proxy_sharded — throughput of the multi-worker proxy deployment.

The same closed-loop keep-alive workload as ``BENCH_proxy``, but served
by a :class:`~repro.proxy.workers.WorkerSupervisor` running
``WORKERS`` ``SO_REUSEPORT`` worker processes behind one shared port,
with the hierarchical credit channel active.

Gating: the committed baseline pins the round timing (``median_s``),
the constants, and the ``workers`` configuration key — which
``scripts/bench_compare.py`` requires to match *exactly*, so a baseline
recorded at a different worker count fails loudly instead of being
silently compared.  The RPS/latency figures are exported as **strings**
(informational, ungated): unlike the single-proxy suite they scale with
the runner's core count, which a committed baseline cannot pin across
machines.  The scaling acceptance itself — ≥2.5× the single-process
RPS at 4 workers — is asserted in-benchmark, and only on machines with
at least ``WORKERS`` cores; an oversubscribed single-core box cannot
physically exhibit process-level speedup.
"""

import asyncio
import os

from repro.harness.loadgen import ProxyRig, closed_loop

from .conftest import print_banner

#: Serialized as BENCH_proxy_sharded.json regardless of the filename.
BENCHSTORE_SUITE = "proxy_sharded"

#: Worker processes behind the shared port (fixed — part of the gate).
WORKERS = 4

#: Closed-loop client population and per-round request budget.
CONCURRENCY = 16
REQUESTS = 600

#: Minimum speedup over the single-process proxy, asserted only when
#: the machine has at least WORKERS cores.
MIN_SPEEDUP = 2.5


def _closed_round(workers: int):
    async def go():
        rig = ProxyRig(workers=workers)
        port = await rig.start()
        supervisor = rig.supervisor
        try:
            await closed_loop(
                "127.0.0.1",
                port,
                site=rig.site,
                concurrency=4,
                total_requests=50,
                keep_alive=True,
            )
            result = await closed_loop(
                "127.0.0.1",
                port,
                site=rig.site,
                concurrency=CONCURRENCY,
                total_requests=REQUESTS,
                keep_alive=True,
            )
            alive = supervisor.alive_workers() if supervisor else 1
            restarts = supervisor.restarts if supervisor else 0
            rebalances = supervisor.allocator.rebalances if supervisor else 0
            accepts = {}
            if supervisor is not None:
                # Accept counters ride the periodic worker reports; give
                # the last report one beat to land before sampling.
                deadline = asyncio.get_event_loop().time() + 5.0
                while asyncio.get_event_loop().time() < deadline:
                    accepts = supervisor.accept_counts()
                    if sum(accepts.values()) >= CONCURRENCY:
                        break
                    await asyncio.sleep(0.1)
            return result, alive, restarts, rebalances, accepts
        finally:
            await rig.stop()

    return asyncio.run(go())


def test_closed_loop_keepalive_sharded(benchmark):
    """16 keep-alive clients against 4 SO_REUSEPORT worker processes."""
    cores = os.cpu_count() or 1
    single, _, _, _, _ = _closed_round(workers=1)

    outcome = {}

    def one_round():
        outcome["round"] = _closed_round(workers=WORKERS)

    benchmark.pedantic(one_round, rounds=3, warmup_rounds=1)
    result, alive, restarts, rebalances, accepts = outcome["round"]
    speedup = result.rps / single.rps if single.rps > 0 else 0.0
    accept_total = sum(accepts.values())
    accepting_workers = sum(1 for count in accepts.values() if count > 0)
    min_share = min(accepts.values()) / accept_total if accept_total else 0.0

    print_banner("BENCH_proxy_sharded: {} workers".format(WORKERS))
    print(
        "  rps {:.1f} ({}x single {:.1f})   p50 {:.2f} ms   p95 {:.2f} ms   "
        "rebalances {}   cores {}".format(
            result.rps,
            round(speedup, 2),
            single.rps,
            result.latency_s(0.5) * 1e3,
            result.latency_s(0.95) * 1e3,
            rebalances,
            cores,
        )
    )

    assert result.errors == 0
    assert result.completed == REQUESTS
    assert alive == WORKERS
    assert restarts == 0
    assert rebalances > 0  # the credit channel was exercised
    # SO_REUSEPORT accept balance: every worker's listening socket took
    # a share of the kernel's connection hash.
    assert accepting_workers == WORKERS, accepts
    if cores >= WORKERS:
        # Process-level scaling needs real cores; a 1-core box merely
        # time-slices the workers and proves nothing either way.
        assert speedup >= MIN_SPEEDUP, (
            "workers={} rps {:.1f} is only {:.2f}x the single-process "
            "{:.1f} rps (need >= {}x)".format(
                WORKERS, result.rps, speedup, single.rps, MIN_SPEEDUP
            )
        )

    # Gated numerics: the configuration must match the baseline exactly
    # (workers) or within the tight figure tolerance (constants).
    benchmark.extra_info["workers"] = WORKERS
    benchmark.extra_info["requests"] = REQUESTS
    benchmark.extra_info["concurrency"] = CONCURRENCY
    # Real process-level parallelism needs this many cores; on smaller
    # runners bench_compare demotes this record's timing/perf gates to
    # advisory instead of committing a time-sliced number as truth.
    benchmark.extra_info["min_cores"] = WORKERS
    # Accept-balance counters (perf_: gated with the wide perf
    # tolerance — the kernel's reuseport hash is not deterministic, but
    # every worker taking a share is pinned by the assert above).
    benchmark.extra_info["perf_accepting_workers"] = accepting_workers
    benchmark.extra_info["perf_accept_min_share_pct"] = round(
        100.0 * min_share, 1
    )
    # Informational strings (ungated): these scale with the runner's
    # core count, which a committed baseline cannot pin.
    benchmark.extra_info["info_rps"] = "{:.1f}".format(result.rps)
    benchmark.extra_info["info_single_rps"] = "{:.1f}".format(single.rps)
    benchmark.extra_info["info_speedup"] = "{:.2f}".format(speedup)
    benchmark.extra_info["info_p50_ms"] = "{:.3f}".format(
        result.latency_s(0.5) * 1e3
    )
    benchmark.extra_info["info_p95_ms"] = "{:.3f}".format(
        result.latency_s(0.95) * 1e3
    )
    benchmark.extra_info["info_cpu_count"] = str(cores)
