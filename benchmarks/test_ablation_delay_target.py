"""Ablation A8 — delay-bounded admission (the response-time extension).

§3.1 names response time as a QoS metric the framework leaves open.
This extension bounds queueing delay by Little's law: capping a queue at
``reservation × target`` bounds the wait of every *admitted* request.
The sweep drives one overloaded subscriber with a range of delay targets
and checks that the measured p95 latency tracks the target while
throughput stays at the sustainable rate (what changes is *which*
requests are refused, not how many are served).
"""

from repro.core import GageCluster, Subscriber
from repro.harness import Sweep
from repro.sim import Environment
from repro.workload import SyntheticWorkload

from .conftest import print_banner

DURATION = 8.0


def run(delay_target_s):
    env = Environment()
    subs = [
        Subscriber("a", 50, queue_capacity=4096, delay_target_s=delay_target_s)
    ]
    workload = SyntheticWorkload(rates={"a": 150.0}, duration_s=DURATION, file_bytes=2000)
    cluster = GageCluster(env, subs, {"a": workload.site_files("a")}, num_rpns=1)
    cluster.prewarm_caches()
    cluster.load_trace(workload.generate())
    cluster.run(DURATION)
    latencies = sorted(l for at, _h, l in cluster.latencies if at >= DURATION / 2)
    report = cluster.service_report("a", DURATION / 2, DURATION)
    return {
        "p95_s": latencies[int(0.95 * len(latencies))],
        "served_rps": report.served_rate,
        "dropped_rps": report.dropped_rate,
    }


def test_delay_target_sweep(benchmark):
    sweep = benchmark.pedantic(
        lambda: Sweep(run, delay_target_s=[0.2, 0.5, 1.0, None]).run(),
        rounds=1,
        iterations=1,
    )
    print_banner("Ablation A8: delay-bounded admission (response-time QoS)")
    print("  one subscriber, 50 GRPS reserved, offered 150/s on one RPN")
    print()
    print("  {:>10} {:>10} {:>10} {:>10}".format(
        "target", "p95 lat", "served/s", "dropped/s"))
    for target in (0.2, 0.5, 1.0, None):
        r = sweep.result(delay_target_s=target)
        print("  {:>10} {:>9.2f}s {:>10.1f} {:>10.1f}".format(
            "none" if target is None else "{:.1f}s".format(target),
            r["p95_s"], r["served_rps"], r["dropped_rps"],
        ))

    # p95 latency is monotone in the target and respects it (with slack
    # for in-service time; the queue drains faster than the reservation
    # because spare capacity also serves it).
    p95 = {t: sweep.result(delay_target_s=t)["p95_s"] for t in (0.2, 0.5, 1.0, None)}
    assert p95[0.2] < p95[0.5] < p95[1.0] < p95[None]
    for target in (0.2, 0.5, 1.0):
        assert p95[target] <= target * 1.3
    # Unbounded queueing blows far past any of the targets.
    assert p95[None] > 1.5
    # Throughput is the same everywhere — the bound changes who waits,
    # not how much is served.
    rates = [sweep.result(delay_target_s=t)["served_rps"] for t in (0.2, 0.5, 1.0, None)]
    assert max(rates) - min(rates) < 0.1 * max(rates)
