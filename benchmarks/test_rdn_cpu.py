"""§4.3 — RDN CPU utilization vs throughput, and the capacity projection.

Paper: "the CPU utilization on the RDN increases close to linearly as
the throughput grows from around 500 requests/sec to 4400 requests/sec
and then increases exponentially as the throughput advances to around
4800 requests/sec.  The utilization leap is due to the overloaded
network subsystem ... With such intelligent interfaces in place,
conservatively with one PIII 450MHz RDN the throughput Gage can support
is around 14,000 to 15,000 requests/sec; alternatively it can support up
to 24 RPNs without being a performance bottleneck."
"""

from repro.harness import RDNCostModel

from .conftest import print_banner

RATES = [500, 1000, 2000, 3000, 4000, 4400, 4600, 4800]


def test_rdn_cpu_utilization_curve(benchmark):
    model = RDNCostModel()
    curve = benchmark.pedantic(
        lambda: model.curve([float(r) for r in RATES]), rounds=1, iterations=1
    )
    print_banner("§4.3: RDN CPU utilization vs throughput")
    print("{:>10} {:>12}".format("req/s", "utilization"))
    for rate, utilization in curve:
        print("{:>10.0f} {:>11.1f}%".format(rate, 100 * utilization))
    from repro.harness import line_chart

    print()
    print(line_chart(
        {
            "with interrupts": curve,
            "intelligent NIC": model.curve([float(r) for r in RATES], intelligent_nic=True),
        },
        title="RDN CPU utilization (measured model)",
        x_label="req/s",
        y_label="utilization",
        height=12,
    ))

    util = dict(curve)
    # Linear regime: utilization at 4000 is ~8x utilization at 500.
    linear_ratio = util[4000] / util[500]
    assert 7.0 < linear_ratio < 9.0
    # The exponential leap: the marginal cost per extra request beyond
    # 4400 is much larger than in the linear regime.
    linear_slope = (util[4000] - util[500]) / 3500
    tail_slope = (util[4800] - util[4400]) / 400
    print("\nslope x{:.1f} beyond 4400 req/s (interrupt livelock)".format(
        tail_slope / linear_slope
    ))
    assert tail_slope > 3.0 * linear_slope
    # The RDN saturates somewhere near the paper's ~4800 req/s regime.
    saturation = model.saturation_rate_rps()
    assert 4300 < saturation < 5300
    benchmark.extra_info["saturation_rps"] = round(saturation)


def test_rdn_intelligent_nic_projection(benchmark):
    model = RDNCostModel()
    saturation = benchmark.pedantic(
        lambda: model.saturation_rate_rps(intelligent_nic=True), rounds=1, iterations=1
    )
    per_rpn = 540.0
    max_rpns = saturation / per_rpn
    print_banner("§4.3: projection with an intelligent NIC")
    print("saturation: {:.0f} req/s (paper: 14,000-15,000)".format(saturation))
    print("supported RPNs at 540 r/s each: {:.1f} (paper: ~24)".format(max_rpns))
    assert 13_000 < saturation < 16_000
    assert 22 < max_rpns < 28
    benchmark.extra_info["saturation_rps"] = round(saturation)
    benchmark.extra_info["max_rpns"] = round(max_rpns, 1)
